//! Offline stand-in for `parking_lot`, implementing the subset this
//! workspace uses — [`Mutex`] (non-poisoning `lock()`), [`Condvar`]
//! with [`Condvar::wait_until`], and [`RwLock`] — as thin wrappers over
//! the std primitives. Lock poisoning is swallowed (parking_lot
//! semantics): a panic while holding a lock does not wedge later
//! acquisitions. Swap for the real crate via `[workspace.dependencies]`
//! in the root manifest.

use std::sync;
use std::time::{Duration, Instant};

/// Mutual exclusion, `lock()` returning the guard directly (no
/// poisoning `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.0.lock().unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard(Some(inner))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar`] waits can move it
/// out and back through `&mut self` without unsafe code; the slot is
/// `None` only transiently inside those waits.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard vacated during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard vacated during condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically release the lock and block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard vacated during condvar wait");
        let inner = self
            .0
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or until `timeout` (an absolute deadline);
    /// spurious wakeups are possible, as with std.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Instant,
    ) -> WaitTimeoutResult {
        let dur = timeout.saturating_duration_since(Instant::now());
        self.wait_for(guard, dur)
    }

    /// Block until notified or for at most `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard vacated during condvar wait");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

/// Reader–writer lock with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
        drop(g);
        assert!(m.try_lock().is_some(), "lock must be reacquired after wait");
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock();
                while !*g {
                    let r = cv.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
                    assert!(!r.timed_out());
                }
            });
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                *m.lock() = true;
                cv.notify_all();
            });
        });
    }

    #[test]
    fn poison_is_swallowed() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0, "poisoned lock must still be usable");
    }
}
