//! Offline stand-in for the `rand` crate, exposing the subset of the
//! 0.8 API this workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`], and the [`rngs::StdRng`] /
//! [`rngs::SmallRng`] generators.
//!
//! Both generators are xoshiro256++ seeded through SplitMix64, so
//! streams are deterministic in the seed and of good statistical
//! quality, but this crate makes no cryptographic claims whatsoever.
//! Swap it for the real `rand` by editing `[workspace.dependencies]`
//! in the root manifest (seeded streams will differ; all uses in this
//! workspace tolerate that).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from their full domain (the `Standard`
/// distribution in real `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly samplable from a half-open or inclusive interval.
///
/// Mirrors real `rand`'s structure — a single blanket [`SampleRange`]
/// impl per range type over this trait — because that is what lets the
/// compiler infer the value type in `rng.gen_range(32..=256).min(x)`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(inclusive as u64);
                if span == 0 {
                    // Full-domain inclusive range.
                    return rng.next_u64() as $t;
                }
                // Modulo draw: bias < 2^-32 for every span used here.
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges a value can be drawn from uniformly (the `SampleRange` of
/// real `rand`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    fn gen_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ core shared by both generator types.
    #[derive(Debug, Clone)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_u64(state: u64) -> Self {
            // SplitMix64 seed expansion, per the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Xoshiro256 {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Deterministic general-purpose generator (the shim makes no
    /// cryptographic claim, unlike real `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast generator; identical core to [`StdRng`] here.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(32u64..=256);
            assert!((32..=256).contains(&y));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_domain() {
        let mut r = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
