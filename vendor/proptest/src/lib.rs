//! Offline stand-in for `proptest`: the [`proptest!`] macro, the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, and [`collection::vec`].
//!
//! Differences from real proptest, acceptable for this workspace's
//! tests:
//!
//! * **no shrinking** — a failing case reports its seed and case
//!   number instead of a minimized input;
//! * **deterministic seeding** — each test's case stream is a fixed
//!   function of its module path and name, so failures reproduce
//!   across runs without a persistence file;
//! * `prop_assert*` panic (like `assert*`) rather than returning
//!   `Err`, which under the missing shrinking is equivalent.
//!
//! Swap for the real crate via `[workspace.dependencies]` in the root
//! manifest; the test sources need no change.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The RNG handed to strategies by the [`proptest!`](crate::proptest) runner.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-case random source.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for case number `case` of the test uniquely named `name`.
        pub fn deterministic(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use rand::Rng;
use test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Keep only values satisfying `f`, re-drawing up to a retry
    /// budget.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }
}

/// Strategies are usable through references (the runner borrows them).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// A fixed value is the constant strategy (proptest's `Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Namespace mirror of real proptest's `prop::` path (so
/// `prop::collection::vec` works from the prelude).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Number of random cases each [`proptest!`] test runs. Real proptest
/// defaults to 256; this shim uses 64 because the workspace's
/// concurrency-heavy properties (spawning thread teams per case)
/// already take seconds per test at this count.
pub const DEFAULT_CASES: u64 = 64;

/// Prints which case a property died in. Created per case inside
/// [`proptest!`]; on an unwinding drop it reports the test name and
/// case number, which (with deterministic seeding) fully identifies
/// the failing input.
pub struct CaseReporter {
    /// Fully qualified test name.
    pub name: &'static str,
    /// Zero-based case index.
    pub case: u64,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {}/{} (deterministic; rerunning reproduces it)",
                self.name, self.case, DEFAULT_CASES
            );
        }
    }
}

/// Assert inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over [`DEFAULT_CASES`]
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let test_name = concat!(module_path!(), "::", stringify!($name));
            for case in 0..$crate::DEFAULT_CASES {
                let _reporter = $crate::CaseReporter { name: test_name, case };
                let mut rng = $crate::test_runner::TestRng::deterministic(test_name, case);
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut rng);)+
                let run = || $body;
                run();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("unit", 0);
        for _ in 0..1000 {
            let x = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&x));
            let (a, b) = (0u32..5, 10u32..=12).new_value(&mut rng);
            assert!(a < 5 && (10..=12).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic("unit", 1);
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..100, 2..7).new_value(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = TestRng::deterministic("unit", 2);
        let strat = (1usize..10).prop_flat_map(|n| {
            prop::collection::vec(0usize..n, n..n + 1).prop_map(move |v| (n, v))
        });
        for _ in 0..200 {
            let (n, v) = strat.new_value(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        /// The macro itself: attrs, multiple args, trailing comma.
        #[test]
        fn macro_smoke(x in 0usize..50, y in 1u64..=9,) {
            prop_assert!(x < 50);
            prop_assert_ne!(y, 0);
            prop_assert_eq!(y.min(9), y);
        }
    }
}
