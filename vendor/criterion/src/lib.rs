//! Offline stand-in for `criterion`: benchmark groups, `Bencher::iter`
//! timing, and the [`criterion_group!`] / [`criterion_main!`] harness
//! macros. Reports mean wall-clock per iteration on stdout — no
//! statistical analysis, outlier detection, or HTML reports. Swap for
//! the real crate via `[workspace.dependencies]` in the root manifest.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark context (configuration container).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    /// `cargo bench -- <filter>`: only benchmark ids containing the
    /// filter run.
    filter: Option<String>,
    /// `cargo test --benches` smoke mode: one iteration per benchmark.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Apply harness command-line arguments (`--bench` is ignored,
    /// `--test` enables smoke mode, a bare token filters by id).
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--quiet" | "-q" | "--noplot" => {}
                "--test" => self.test_mode = true,
                s if !s.starts_with('-') => self.filter = Some(s.to_string()),
                _ => {}
            }
        }
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// Run a standalone (group-less) benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let id = id.to_string();
        run_one(&id, self.sample_size, self.measurement_time, self, &mut f);
    }
}

/// Identifier `function_name/parameter` for one benchmark in a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.measurement_time
                .unwrap_or(self.criterion.measurement_time),
            self.criterion,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine` (the routine's return value is
    /// black-boxed so the work is not optimized away).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    criterion: &Criterion,
    f: &mut F,
) {
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    if criterion.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{id}: test ok");
        return;
    }
    // One warmup call, then samples until the time budget or sample
    // count is exhausted, whichever first.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let budget_start = Instant::now();
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..sample_size {
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
        if budget_start.elapsed() >= measurement_time {
            break;
        }
    }
    let mean = if iters > 0 {
        total / iters as u32
    } else {
        Duration::ZERO
    };
    println!("{id}: mean {mean:?} over {iters} iterations");
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate the `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("unit");
        let mut calls = 0u32;
        group.sample_size(3).bench_function("noop", |b| {
            calls += 1;
            b.iter(|| 1 + 1);
        });
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
        assert!(calls >= 2, "warmup + at least one sample, got {calls}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
