//! Social interaction stream: influence ranking over a temporal network.
//!
//! Scenario: a social platform tracks user influence (PageRank over the
//! interaction graph) as messages stream in — the wiki-talk /
//! sx-stackoverflow setting of the paper's Table 1. We generate a
//! timestamped preferential-attachment stream, preload 90% of it, and
//! replay the rest as insert-only batches (§5.1.4), watching how the
//! influence ranking shifts.
//!
//! Run with: `cargo run --release --example social_stream`

use lockfree_pagerank::core::reference::reference_default;
use lockfree_pagerank::graph::generators::temporal::{filter_new_edges, temporal_stream};
use lockfree_pagerank::{api, Algorithm, PagerankOptions};

fn main() {
    let stream = temporal_stream("social", 5_000, 100_000, 2.0, 11);
    println!(
        "interaction stream: {} users, {} interactions ({} distinct pairs)",
        stream.n,
        stream.temporal_edge_count(),
        stream.static_edge_count()
    );

    let (mut g, tail) = stream.preload(0.9);
    let mut prev = g.snapshot();
    let mut ranks = reference_default(&prev);
    let opts = PagerankOptions::default()
        .with_threads(4)
        .with_tolerance(1e-8);

    let batch_size = 1_000; // ~1e-2 of |ET| per refresh
    for (i, chunk) in stream.tail_batches(tail, batch_size).iter().enumerate() {
        let batch = filter_new_edges(&g, chunk);
        if batch.is_empty() {
            continue;
        }
        g.apply_batch(&batch).expect("filtered batch applies");
        let curr = g.snapshot();
        let res = api::run_dynamic(Algorithm::DfLF, &prev, &curr, &batch, &ranks, &opts);
        assert!(res.status.is_success());

        let mut idx: Vec<usize> = (0..res.ranks.len()).collect();
        idx.sort_by(|&a, &b| res.ranks[b].partial_cmp(&res.ranks[a]).unwrap());
        println!(
            "batch {i}: +{} new edges, updated in {:?} ({} iterations); top influencers: {:?}",
            batch.insertions.len(),
            res.runtime,
            res.iterations,
            &idx[..5]
        );
        ranks = res.ranks;
        prev = curr;
    }

    // Sanity: influence mass is conserved.
    let sum: f64 = ranks.iter().sum();
    println!("\nfinal rank mass: {sum:.6} (should be ~1)");
    assert!((sum - 1.0).abs() < 1e-4);
}
