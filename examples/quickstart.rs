//! Quickstart: compute PageRank on a small graph, apply a batch update,
//! and refresh the ranks incrementally with the lock-free Dynamic
//! Frontier algorithm (DFLF).
//!
//! Run with: `cargo run --release --example quickstart`

use lockfree_pagerank::graph::selfloops::add_self_loops;
use lockfree_pagerank::graph::GraphBuilder;
use lockfree_pagerank::{Algorithm, PagerankOptions, RankMaintainer};

fn main() {
    // A tiny web: page 0 links to 1 and 2; 1 and 2 link back to 0;
    // 2 also links to 3. Self-loops eliminate dead ends (paper §5.1.3).
    let mut g = GraphBuilder::new(4)
        .edges([(0, 1), (0, 2), (1, 0), (2, 0), (2, 3)])
        .build_dyn()
        .expect("valid edges");
    add_self_loops(&mut g);

    let opts = PagerankOptions::default().with_threads(4);
    let mut rm = RankMaintainer::new(g, Algorithm::DfLF, opts);

    println!("initial ranks:");
    for (v, r) in rm.ranks().iter().enumerate() {
        println!("  page {v}: {r:.4}");
    }

    // Page 3 gains a link from page 1 — its rank should rise.
    let before = rm.rank(3);
    let res = rm.update(|g| {
        g.insert_edge(1, 3).expect("edge is new");
    });
    println!(
        "\nafter inserting edge 1 -> 3 ({} iterations, {:?}, {} vertices touched):",
        res.iterations, res.runtime, res.vertices_processed
    );
    for (v, r) in rm.ranks().iter().enumerate() {
        println!("  page {v}: {r:.4}");
    }
    assert!(rm.rank(3) > before);
    println!("\npage 3 rank rose from {before:.4} to {:.4}", rm.rank(3));

    println!("\ntop pages: {:?}", rm.top_k(2));
}
