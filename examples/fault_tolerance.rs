//! Fault tolerance demo — the measurable content of Figures 2 and 3.
//!
//! Injects (a) random thread delays and (b) crash-stop failures into
//! both the barrier-based and lock-free Dynamic Frontier algorithms and
//! shows:
//!
//! * delays: DFBB's runtime absorbs every sleep × thread count (all
//!   threads wait at the barrier), DFLF's barely moves;
//! * crashes: DFBB deadlocks (detected and reported as `Stalled`),
//!   DFLF finishes with correct ranks even with most threads dead.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use lockfree_pagerank::core::norm::linf_diff;
use lockfree_pagerank::core::reference::reference_default;
use lockfree_pagerank::graph::generators::grid_road;
use lockfree_pagerank::graph::selfloops::add_self_loops;
use lockfree_pagerank::sched::fault::FaultPlan;
use lockfree_pagerank::{api, Algorithm, BatchSpec, PagerankOptions, RunStatus};
use std::time::Duration;

fn main() {
    let mut g = grid_road(30_000, 3);
    add_self_loops(&mut g);
    let prev = g.snapshot();
    let prev_ranks = reference_default(&prev);
    let batch = BatchSpec::mixed(1e-4, 4).generate(&g);
    g.apply_batch(&batch).expect("batch applies");
    let curr = g.snapshot();
    let reference = reference_default(&curr);
    let threads = 4;

    let base = PagerankOptions::default()
        .with_threads(threads)
        .with_tolerance(1e-7)
        .with_stall_timeout(Duration::from_millis(1500));

    println!("--- random thread delays (4 ms sleeps, ~2 per iteration) ---");
    let p = 2.0 / curr.num_vertices() as f64;
    for algo in [Algorithm::DfBB, Algorithm::DfLF] {
        for faulty in [false, true] {
            let opts = if faulty {
                base.clone()
                    .with_faults(FaultPlan::with_delays(p, Duration::from_millis(4), 9))
            } else {
                base.clone()
            };
            let res = api::run_dynamic(algo, &prev, &curr, &batch, &prev_ranks, &opts);
            println!(
                "{:<5} delays={:<5} time={:>10.4?} status={:?}",
                algo.name(),
                faulty,
                res.runtime,
                res.status
            );
        }
    }

    println!("\n--- crash-stop failures ---");
    for (algo, crashes) in [
        (Algorithm::DfBB, 1usize),
        (Algorithm::DfLF, 1),
        (Algorithm::DfLF, threads - 1),
    ] {
        // Crash within the first couple of claimed chunks so the fault
        // fires before the (warm-started) run converges.
        let opts = base
            .clone()
            .with_faults(FaultPlan::with_crashes(crashes, 200, 13));
        let res = api::run_dynamic(algo, &prev, &curr, &batch, &prev_ranks, &opts);
        let err = linf_diff(&res.ranks, &reference);
        println!(
            "{:<5} crashes={} status={:<14?} crashed={} error={err:.2e}",
            algo.name(),
            crashes,
            res.status,
            res.threads_crashed
        );
        match algo {
            Algorithm::DfBB => assert_eq!(
                res.status,
                RunStatus::Stalled,
                "barrier-based must deadlock on a crash"
            ),
            Algorithm::DfLF => {
                assert!(res.status.is_success(), "lock-free must survive crashes")
            }
            _ => unreachable!(),
        }
    }
    println!(
        "\nDFBB deadlocks on one crash; DFLF survives even {} of {} threads crashing.",
        threads - 1,
        threads
    );
}
