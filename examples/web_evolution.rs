//! Web-crawl evolution: maintain PageRank over a growing web graph.
//!
//! Scenario from the paper's introduction: a search engine re-ranks
//! pages as the crawler discovers new links. A full recompute per crawl
//! batch is wasteful; the Dynamic Frontier approach touches only the
//! region the new links actually perturb.
//!
//! This example generates an RMAT web-like graph, streams in crawl
//! batches (mixed link insertions/deletions), and compares the work
//! DFLF does against a full lock-free recompute (StaticLF).
//!
//! Run with: `cargo run --release --example web_evolution`

use lockfree_pagerank::graph::generators::{rmat, RmatParams};
use lockfree_pagerank::graph::selfloops::add_self_loops;
use lockfree_pagerank::{api, Algorithm, BatchSpec, PagerankOptions};

fn main() {
    let mut g = rmat(20_000, 400_000, RmatParams::web(), false, 7);
    add_self_loops(&mut g);
    println!(
        "web graph: {} pages, {} links",
        g.num_vertices(),
        g.num_edges()
    );

    // Fixpoint-quality initial ranks (see DESIGN.md on warm starts).
    let prev = g.snapshot();
    let mut ranks = lockfree_pagerank::core::reference::reference_default(&prev);
    let opts = PagerankOptions::default()
        .with_threads(4)
        .with_tolerance(1e-7);

    let mut prev_snap = prev;
    let mut total_df = std::time::Duration::ZERO;
    let mut total_static = std::time::Duration::ZERO;
    for crawl in 0..5 {
        // Each crawl batch rewires a handful of links (small relative to
        // |E|, the regime where the frontier stays local).
        let batch = BatchSpec::mixed(2e-6, 100 + crawl).generate(&g);
        g.apply_batch(&batch).expect("batch applies");
        let curr = g.snapshot();

        let df = api::run_dynamic(Algorithm::DfLF, &prev_snap, &curr, &batch, &ranks, &opts);
        let st = api::run_static(Algorithm::StaticLF, &curr, &opts);
        println!(
            "crawl {crawl}: {} updates | DFLF {:>9.3?} ({} vertices) | StaticLF {:>9.3?} ({} vertices)",
            batch.len(),
            df.runtime,
            df.vertices_processed,
            st.runtime,
            st.vertices_processed,
        );
        total_df += df.runtime;
        total_static += st.runtime;
        ranks = df.ranks;
        prev_snap = curr;
    }
    println!(
        "\ntotal: DFLF {total_df:.2?} vs full recompute {total_static:.2?} ({:.1}x speedup)",
        total_static.as_secs_f64() / total_df.as_secs_f64().max(1e-9)
    );
    let top: Vec<usize> = {
        let mut idx: Vec<usize> = (0..ranks.len()).collect();
        idx.sort_by(|&a, &b| ranks[b].partial_cmp(&ranks[a]).unwrap());
        idx.truncate(5);
        idx
    };
    println!("top-5 pages by final rank: {top:?}");
}
