//! Session durability: WAL appending, periodic checkpoints, and crash
//! recovery for `lfpr serve`.
//!
//! [`Durability`] sits between the serve layer's single mutation path
//! ([`crate::serve::apply_logged`]) and the on-disk primitives in
//! [`lfpr_graph::io::wal`]. The contract:
//!
//! * **apply → log → ack.** A mutation is applied to the session first,
//!   then appended to the WAL, and only then acknowledged to the
//!   client. A crash between apply and append loses only un-acked work;
//!   an acked commit is always recoverable (modulo the fsync policy).
//! * **Checkpoint = truncate.** Every `checkpoint_every` logged commits
//!   the full session state is serialized atomically and the WAL is
//!   restarted empty, bounding both recovery time and log growth.
//! * **Fail-stop on append errors.** If an append fails (disk full,
//!   volume gone), the committed state is *ahead* of the log. The
//!   manager wedges: the successful commit is still acked honestly,
//!   but every subsequent mutation is refused with a stable error
//!   until the operator restarts — never a silent durability gap.
//!
//! Recovery ([`Durability::recover`]) loads the checkpoint, rebuilds
//! the session via [`UpdateSession::restore`] (exact rank bits, no
//! recompute), replays the intact WAL tail through the ordinary
//! [`UpdateSession::step`] path, truncates whatever the scan flagged as
//! torn or corrupt, and reports what it did. At one thread the result
//! is bit-identical to a session that never crashed.

use lfpr_core::config::TeleportWeights;
use lfpr_core::session::{RankDelta, UpdateSession};
use lfpr_core::{Algorithm, PagerankOptions, Teleport};
use lfpr_graph::io::wal::{
    read_checkpoint, read_wal, write_checkpoint, Checkpoint, CheckpointView, FsyncPolicy,
    WalRecord, WalWriter,
};
use lfpr_graph::reorder::SharedReordering;
use lfpr_graph::{BatchUpdate, DynGraph, Reordering};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File names inside a durability directory.
pub const WAL_FILE: &str = "wal.log";
/// Checkpoint file name inside a durability directory.
pub const CKPT_FILE: &str = "state.ckpt";

/// Live WAL counters shared with serving workers, so `stats` can report
/// durability lag without consulting the writer thread.
#[derive(Debug, Default)]
pub struct WalStats {
    epoch: AtomicU64,
    bytes: AtomicU64,
}

impl WalStats {
    /// Last epoch durably appended to the WAL.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Current WAL file length in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Acquire)
    }

    fn set(&self, epoch: u64, bytes: u64) {
        self.epoch.store(epoch, Ordering::Release);
        self.bytes.store(bytes, Ordering::Release);
    }
}

/// Tunables for a durability manager.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// When appends reach the platter (default: `always`).
    pub fsync: FsyncPolicy,
    /// Checkpoint (and truncate the WAL) every this many logged
    /// commits; 0 disables periodic checkpoints.
    pub checkpoint_every: u64,
    /// Crash-injection hook for the CI recovery smoke: abort the whole
    /// process immediately after the N-th commit append reaches the
    /// kernel — after the state change, before the client ack.
    pub crash_after: Option<u64>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            fsync: FsyncPolicy::Always,
            checkpoint_every: 64,
            crash_after: None,
        }
    }
}

/// What a recovery run found and did. `Display` renders the one-line
/// operator summary the CLI prints on startup.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Epoch of the loaded checkpoint.
    pub checkpoint_epoch: u64,
    /// Epoch after WAL replay (== checkpoint epoch if the log was empty).
    pub final_epoch: u64,
    /// Commits replayed from the WAL.
    pub replayed_commits: u64,
    /// View add/drop records replayed from the WAL.
    pub replayed_view_ops: u64,
    /// Records skipped as stale (epoch at or below the session's —
    /// duplicated tails, pre-checkpoint leftovers).
    pub skipped_stale: u64,
    /// Bytes cut off the WAL tail (torn/corrupt frames plus any records
    /// abandoned after a replay fault).
    pub truncated_bytes: u64,
    /// Why the tail was cut, when it was.
    pub truncated_reason: Option<String>,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered epoch {} (checkpoint {}, {} commits + {} view ops replayed, {} stale skipped",
            self.final_epoch,
            self.checkpoint_epoch,
            self.replayed_commits,
            self.replayed_view_ops,
            self.skipped_stale
        )?;
        match &self.truncated_reason {
            Some(reason) => write!(f, ", truncated {} bytes: {reason})", self.truncated_bytes),
            None => write!(f, ", clean tail)"),
        }
    }
}

/// The WAL + checkpoint manager owned by a session's writer (thread or
/// stdin loop). All methods take the session by `&mut` alongside —
/// durability never outlives or outraces the single writer.
pub struct Durability {
    dir: PathBuf,
    writer: WalWriter,
    opts: DurabilityOptions,
    stats: Arc<WalStats>,
    /// Commits appended since the last checkpoint.
    since_checkpoint: u64,
    /// Total commits appended this process lifetime (crash injection).
    commits_logged: u64,
    /// Set on the first append failure; commits are refused from then on.
    wedged: Option<String>,
    /// Load-time vertex permutation, persisted in every checkpoint so
    /// `--recover` restores the renumbered session exactly.
    reorder: SharedReordering,
}

/// The WAL directory of shard `s` under a sharded server's `--wal`
/// root. Each shard logs and checkpoints independently in its own
/// subdirectory (`shard-00/`, `shard-01/`, …); this is the single
/// naming authority, shared by the [`crate::shard`] router and any
/// tooling that inspects a sharded log tree.
pub fn shard_dir(root: &Path, s: usize) -> PathBuf {
    root.join(format!("shard-{s:02}"))
}

impl Durability {
    /// Start durability fresh in `dir`: write a checkpoint of the
    /// session's current state, then open an empty WAL. Call before
    /// serving begins (the session must not change in between).
    pub fn create(
        dir: &Path,
        session: &mut UpdateSession,
        opts: DurabilityOptions,
    ) -> Result<Durability, String> {
        Self::create_reordered(dir, session, opts, None)
    }

    /// Like [`Durability::create`], for a session whose vertices were
    /// renumbered at load time: the permutation rides along in every
    /// checkpoint, so recovery rebuilds the same internal numbering and
    /// keeps serving the original external ids.
    pub fn create_reordered(
        dir: &Path,
        session: &mut UpdateSession,
        opts: DurabilityOptions,
        reorder: SharedReordering,
    ) -> Result<Durability, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create wal directory {}: {e}", dir.display()))?;
        write_checkpoint(dir.join(CKPT_FILE), &checkpoint_of(session, &reorder))
            .map_err(|e| format!("cannot write checkpoint: {e}"))?;
        let writer = WalWriter::create(dir.join(WAL_FILE), opts.fsync)
            .map_err(|e| format!("cannot create wal: {e}"))?;
        let stats = Arc::new(WalStats::default());
        stats.set(session.steps(), writer.bytes());
        Ok(Durability {
            dir: dir.to_path_buf(),
            writer,
            opts,
            stats,
            since_checkpoint: 0,
            commits_logged: 0,
            wedged: None,
            reorder,
        })
    }

    /// Rebuild a session from `dir`: load the checkpoint, restore the
    /// session (exact bits, delta tracking on), replay the WAL tail,
    /// truncate past the intact prefix, and reopen the log for
    /// appending. `runtime` carries the non-persisted knobs (threads,
    /// tolerance, executor); the algorithm and graph come from disk.
    pub fn recover(
        dir: &Path,
        runtime: PagerankOptions,
        opts: DurabilityOptions,
    ) -> Result<(UpdateSession, Durability, RecoveryReport), String> {
        let ckpt = read_checkpoint(dir.join(CKPT_FILE))?;
        let reorder: SharedReordering = match &ckpt.perm {
            Some(perm) => Some(Arc::new(
                Reordering::from_perm(perm.clone())
                    .map_err(|e| format!("checkpoint permutation invalid: {e}"))?,
            )),
            None => None,
        };
        let algorithm: Algorithm = ckpt
            .algo
            .parse()
            .map_err(|e| format!("checkpoint names unknown algorithm {}: {e}", ckpt.algo))?;
        let graph = DynGraph::from_edges(ckpt.n as usize, ckpt.edges)
            .map_err(|e| format!("checkpoint graph invalid: {e}"))?;
        let mut session =
            UpdateSession::restore(graph, algorithm, runtime, &ckpt.ranks, ckpt.epoch)?;
        session.enable_delta_tracking();
        session.restore_deltas(triples_to_deltas(&ckpt.deltas));
        for view in ckpt.views {
            let teleport = teleport_from_normalized(&view.sources)?;
            session.restore_view(
                &view.name,
                teleport,
                &view.ranks,
                triples_to_deltas(&view.deltas),
            )?;
        }

        let mut report = RecoveryReport {
            checkpoint_epoch: ckpt.epoch,
            ..RecoveryReport::default()
        };
        let wal_path = dir.join(WAL_FILE);
        let mut valid_len = 0u64;
        match read_wal(&wal_path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Crashed between checkpoint and WAL creation: the
                // checkpoint alone is the complete state.
            }
            Err(e) => return Err(format!("cannot read wal: {e}")),
            Ok(replay) => {
                valid_len = replay.valid_len;
                report.truncated_bytes = replay.truncated_bytes();
                report.truncated_reason = replay.truncated.clone();
                for (offset, rec) in replay.records {
                    match replay_record(&mut session, rec, &mut report) {
                        Ok(()) => {}
                        Err(reason) => {
                            // The log says this record committed, but the
                            // rebuilt state rejects it: the prefix we
                            // trusted diverged. Stop here and cut the
                            // rest — serving a partially-applied tail
                            // would be worse than losing it.
                            report.truncated_bytes = replay.total_len - offset;
                            report.truncated_reason = Some(reason);
                            valid_len = offset;
                            break;
                        }
                    }
                }
            }
        }
        report.final_epoch = session.steps();
        let writer = WalWriter::open_append(&wal_path, opts.fsync, valid_len)
            .map_err(|e| format!("cannot reopen wal: {e}"))?;
        let stats = Arc::new(WalStats::default());
        stats.set(session.steps(), writer.bytes());
        let durable = Durability {
            dir: dir.to_path_buf(),
            writer,
            opts,
            stats,
            since_checkpoint: report.replayed_commits,
            commits_logged: 0,
            wedged: None,
            reorder,
        };
        Ok((session, durable, report))
    }

    /// The shared live counters (`stats` verb).
    pub fn stats_handle(&self) -> Arc<WalStats> {
        Arc::clone(&self.stats)
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The vertex permutation persisted with this directory's
    /// checkpoints (`None` for an unreordered session).
    pub fn reordering(&self) -> &SharedReordering {
        &self.reorder
    }

    /// Why this manager refuses mutations, if it does.
    pub fn wedged_reason(&self) -> Option<&str> {
        self.wedged.as_deref()
    }

    /// Append a just-applied commit (the session is already at the new
    /// epoch). Runs the crash-injection hook, then checkpoints if the
    /// period elapsed. On error the manager wedges and the caller must
    /// surface the message — the commit itself already happened.
    pub fn log_commit(
        &mut self,
        session: &mut UpdateSession,
        batch: &BatchUpdate,
    ) -> Result<(), String> {
        self.append(
            session.steps(),
            &WalRecord::Commit {
                epoch: session.steps(),
                batch: batch.clone(),
            },
        )?;
        self.commits_logged += 1;
        self.since_checkpoint += 1;
        if self.opts.crash_after == Some(self.commits_logged) {
            // CI fault injection: die after the append reached the
            // kernel but before the ack or any checkpoint — the
            // worst-ordered crash recovery must handle.
            eprintln!(
                "# crash-after: aborting after commit {}",
                self.commits_logged
            );
            std::process::abort();
        }
        if self.opts.checkpoint_every > 0 && self.since_checkpoint >= self.opts.checkpoint_every {
            self.checkpoint(session)?;
        }
        Ok(())
    }

    /// Append a just-applied view creation.
    pub fn log_view_add(
        &mut self,
        session: &UpdateSession,
        name: &str,
        teleport: &Teleport,
    ) -> Result<(), String> {
        let sources = teleport
            .weights()
            .map(|w| w.sources().to_vec())
            .unwrap_or_default();
        self.append(
            session.steps(),
            &WalRecord::ViewAdd {
                epoch: session.steps(),
                name: name.to_string(),
                sources,
            },
        )
    }

    /// Append a just-applied view drop.
    pub fn log_view_drop(&mut self, session: &UpdateSession, name: &str) -> Result<(), String> {
        self.append(
            session.steps(),
            &WalRecord::ViewDrop {
                epoch: session.steps(),
                name: name.to_string(),
            },
        )
    }

    /// Serialize the session's full state and restart the WAL empty.
    pub fn checkpoint(&mut self, session: &mut UpdateSession) -> Result<(), String> {
        if let Some(msg) = &self.wedged {
            return Err(format!("wal unavailable: {msg}"));
        }
        write_checkpoint(
            self.dir.join(CKPT_FILE),
            &checkpoint_of(session, &self.reorder),
        )
        .map_err(|e| self.wedge(format!("checkpoint write failed: {e}")))?;
        self.writer = WalWriter::create(self.dir.join(WAL_FILE), self.opts.fsync)
            .map_err(|e| self.wedge(format!("wal restart failed: {e}")))?;
        self.since_checkpoint = 0;
        self.stats.set(session.steps(), self.writer.bytes());
        Ok(())
    }

    /// Flush every appended record to stable storage (graceful
    /// shutdown: TCP `stop()` and stdin EOF both end here).
    pub fn flush_sync(&mut self) -> Result<(), String> {
        self.writer
            .sync()
            .map_err(|e| format!("wal fsync failed: {e}"))
    }

    fn append(&mut self, epoch: u64, rec: &WalRecord) -> Result<(), String> {
        if let Some(msg) = &self.wedged {
            return Err(format!("wal unavailable: {msg}"));
        }
        match self.writer.append(rec) {
            Ok(bytes) => {
                self.stats.set(epoch, bytes);
                Ok(())
            }
            Err(e) => Err(self.wedge(format!("wal append failed: {e}"))),
        }
    }

    fn wedge(&mut self, msg: String) -> String {
        eprintln!("# durability wedged: {msg}");
        self.wedged = Some(msg.clone());
        msg
    }
}

/// Snapshot a session's full committed state into a checkpoint value.
fn checkpoint_of(session: &mut UpdateSession, reorder: &SharedReordering) -> Checkpoint {
    let snapshot = session.snapshot();
    let views = session
        .view_names()
        .into_iter()
        .map(|(name, _)| {
            let sources = session
                .view_teleport(&name)
                .and_then(|t| t.weights().map(|w| w.sources().to_vec()))
                .unwrap_or_default();
            CheckpointView {
                sources,
                ranks: session.view_ranks(&name).expect("view listed").to_vec(),
                deltas: deltas_to_triples(session.view_deltas(&name).expect("view listed")),
                name,
            }
        })
        .collect();
    Checkpoint {
        epoch: session.steps(),
        algo: session.algorithm().to_string(),
        n: snapshot.num_vertices() as u32,
        edges: snapshot.edges().collect(),
        ranks: session.ranks().to_vec(),
        deltas: deltas_to_triples(session.last_deltas()),
        views,
        perm: reorder.as_ref().map(|r| r.perm().to_vec()),
    }
}

/// Apply one intact WAL record to the rebuilding session. Stale records
/// (epoch at or below the session's) are skipped — they are duplicated
/// tails or pre-checkpoint leftovers from a crash inside the
/// checkpoint-then-truncate window. View ops are idempotent the same
/// way: re-adding an existing view or dropping a missing one is a skip,
/// not a fault. Only a commit the session itself rejects is an error.
fn replay_record(
    session: &mut UpdateSession,
    rec: WalRecord,
    report: &mut RecoveryReport,
) -> Result<(), String> {
    match rec {
        WalRecord::Commit { epoch, batch } => {
            if epoch <= session.steps() {
                report.skipped_stale += 1;
                return Ok(());
            }
            if epoch != session.steps() + 1 {
                return Err(format!(
                    "epoch gap in wal: have {}, next record is {epoch}",
                    session.steps()
                ));
            }
            session
                .step(&batch)
                .map_err(|e| format!("replay rejected commit {epoch}: {e}"))?;
            report.replayed_commits += 1;
            Ok(())
        }
        WalRecord::ViewAdd {
            epoch,
            name,
            sources,
        } => {
            if epoch < session.steps() || session.has_view(&name) {
                report.skipped_stale += 1;
                return Ok(());
            }
            let teleport = teleport_from_normalized(&sources)?;
            // Recomputed statically at the same graph state the leader
            // had — deterministic at one thread, hence bit-equal.
            session
                .add_view(&name, teleport)
                .map_err(|e| format!("replay rejected view {name}: {e}"))?;
            report.replayed_view_ops += 1;
            Ok(())
        }
        WalRecord::ViewDrop { epoch, name } => {
            if epoch < session.steps() || !session.has_view(&name) {
                report.skipped_stale += 1;
                return Ok(());
            }
            session
                .drop_view(&name)
                .map_err(|e| format!("replay rejected view drop {name}: {e}"))?;
            report.replayed_view_ops += 1;
            Ok(())
        }
    }
}

/// Rebuild a teleport from shipped normalized pairs without
/// re-normalizing (which would change the bits).
pub fn teleport_from_normalized(sources: &[(u32, f64)]) -> Result<Teleport, String> {
    if sources.is_empty() {
        return Ok(Teleport::Uniform);
    }
    Ok(Teleport::Personalized(Arc::new(
        TeleportWeights::from_normalized(sources.to_vec())?,
    )))
}

fn deltas_to_triples(deltas: &[RankDelta]) -> Vec<(u32, f64, f64)> {
    deltas.iter().map(|d| (d.vertex, d.old, d.new)).collect()
}

fn triples_to_deltas(triples: &[(u32, f64, f64)]) -> Vec<RankDelta> {
    triples
        .iter()
        .map(|&(vertex, old, new)| RankDelta { vertex, old, new })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_graph::generators::erdos_renyi;
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::BatchSpec;

    fn opts() -> PagerankOptions {
        PagerankOptions::default()
            .with_threads(1)
            .with_chunk_size(64)
    }

    fn fresh_session(seed: u64) -> UpdateSession {
        let mut g = erdos_renyi(80, 400, seed);
        add_self_loops(&mut g);
        let mut s = UpdateSession::new(g, Algorithm::DfLF, opts());
        s.enable_delta_tracking();
        s
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lfpr-dur-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_log_recover_is_bit_exact() {
        let dir = tmpdir("basic");
        let mut live = fresh_session(5);
        let mut d = Durability::create(
            &dir,
            &mut live,
            DurabilityOptions {
                fsync: FsyncPolicy::Never,
                checkpoint_every: 0,
                crash_after: None,
            },
        )
        .unwrap();
        for round in 0..4u64 {
            let batch = BatchSpec::mixed(0.02, round).generate(live.graph());
            live.step(&batch).unwrap();
            d.log_commit(&mut live, &batch).unwrap();
        }
        assert_eq!(d.stats_handle().epoch(), 4);
        // "Crash": drop everything, recover from disk.
        drop(d);
        let (rec, d2, report) =
            Durability::recover(&dir, opts(), DurabilityOptions::default()).unwrap();
        assert_eq!(report.checkpoint_epoch, 0);
        assert_eq!(report.final_epoch, 4);
        assert_eq!(report.replayed_commits, 4);
        assert!(report.truncated_reason.is_none());
        assert_eq!(rec.steps(), live.steps());
        for (a, b) in live.ranks().iter().zip(rec.ranks()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(rec.movers(5), live.movers(5));
        assert_eq!(d2.stats_handle().epoch(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn periodic_checkpoints_truncate_the_log() {
        let dir = tmpdir("ckpt");
        let mut live = fresh_session(6);
        let mut d = Durability::create(
            &dir,
            &mut live,
            DurabilityOptions {
                fsync: FsyncPolicy::Never,
                checkpoint_every: 2,
                crash_after: None,
            },
        )
        .unwrap();
        let mut wal_sizes = Vec::new();
        for round in 0..5u64 {
            let batch = BatchSpec::mixed(0.02, 50 + round).generate(live.graph());
            live.step(&batch).unwrap();
            d.log_commit(&mut live, &batch).unwrap();
            wal_sizes.push(d.stats_handle().bytes());
        }
        // After commits 2 and 4 the WAL restarted at just the magic.
        assert_eq!(wal_sizes[1], 8);
        assert_eq!(wal_sizes[3], 8);
        assert!(wal_sizes[4] > 8);
        drop(d);
        let (rec, _, report) =
            Durability::recover(&dir, opts(), DurabilityOptions::default()).unwrap();
        assert_eq!(report.checkpoint_epoch, 4);
        assert_eq!(report.replayed_commits, 1);
        assert_eq!(rec.steps(), 5);
        for (a, b) in live.ranks().iter().zip(rec.ranks()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn view_ops_replay_and_deduplicate() {
        let dir = tmpdir("views");
        let mut live = fresh_session(7);
        let mut d = Durability::create(
            &dir,
            &mut live,
            DurabilityOptions {
                fsync: FsyncPolicy::Never,
                checkpoint_every: 0,
                crash_after: None,
            },
        )
        .unwrap();
        let t = Teleport::personalized([(2, 1.0), (9, 3.0)]).unwrap();
        live.add_view("ego", t.clone()).unwrap();
        d.log_view_add(&live, "ego", &t).unwrap();
        let batch = BatchSpec::mixed(0.02, 70).generate(live.graph());
        live.step(&batch).unwrap();
        d.log_commit(&mut live, &batch).unwrap();
        live.drop_view("ego").unwrap();
        d.log_view_drop(&live, "ego").unwrap();
        let t2 = Teleport::personalized([(4, 1.0)]).unwrap();
        live.add_view("ego2", t2.clone()).unwrap();
        d.log_view_add(&live, "ego2", &t2).unwrap();
        drop(d);
        let (rec, _, report) =
            Durability::recover(&dir, opts(), DurabilityOptions::default()).unwrap();
        assert_eq!(report.replayed_view_ops, 3);
        assert!(!rec.has_view("ego"));
        assert!(rec.has_view("ego2"));
        for (a, b) in live
            .view_ranks("ego2")
            .unwrap()
            .iter()
            .zip(rec.view_ranks("ego2").unwrap())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reordered_checkpoints_persist_the_permutation() {
        let dir = tmpdir("perm");
        let mut g = erdos_renyi(80, 400, 9);
        add_self_loops(&mut g);
        let r = Reordering::compute(lfpr_graph::ReorderStrategy::Degree, &g).unwrap();
        let mut live = UpdateSession::new(r.apply(&g), Algorithm::DfLF, opts());
        live.enable_delta_tracking();
        let reorder: SharedReordering = Some(Arc::new(r));
        let mut d = Durability::create_reordered(
            &dir,
            &mut live,
            DurabilityOptions {
                fsync: FsyncPolicy::Never,
                checkpoint_every: 2,
                crash_after: None,
            },
            reorder.clone(),
        )
        .unwrap();
        for round in 0..3u64 {
            let batch = BatchSpec::mixed(0.02, 90 + round).generate(live.graph());
            live.step(&batch).unwrap();
            d.log_commit(&mut live, &batch).unwrap();
        }
        drop(d);
        // The last checkpoint (epoch 2) carried the permutation; the
        // recovered manager must hand back the same mapping and the
        // replayed session the same bits.
        let (rec, d2, report) =
            Durability::recover(&dir, opts(), DurabilityOptions::default()).unwrap();
        assert_eq!(report.checkpoint_epoch, 2);
        let restored = d2.reordering().as_ref().expect("permutation persisted");
        assert_eq!(restored.perm(), reorder.as_ref().unwrap().perm());
        for (a, b) in live.ranks().iter().zip(rec.ranks()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_recover_dir_reports_stably() {
        let err = Durability::recover(Path::new("/nonexistent/lfpr"), opts(), Default::default())
            .err()
            .unwrap();
        assert!(err.starts_with("cannot read checkpoint"), "{err}");
    }

    #[test]
    fn corrupt_wal_tail_is_truncated_and_reported() {
        let dir = tmpdir("tail");
        let mut live = fresh_session(8);
        let mut d = Durability::create(
            &dir,
            &mut live,
            DurabilityOptions {
                fsync: FsyncPolicy::Never,
                checkpoint_every: 0,
                crash_after: None,
            },
        )
        .unwrap();
        for round in 0..3u64 {
            let batch = BatchSpec::mixed(0.02, 80 + round).generate(live.graph());
            live.step(&batch).unwrap();
            d.log_commit(&mut live, &batch).unwrap();
        }
        drop(d);
        // Torn write: half a record of garbage at the tail.
        let wal = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&[0x11, 0x22, 0x33]);
        std::fs::write(&wal, &bytes).unwrap();
        let (rec, d2, report) =
            Durability::recover(&dir, opts(), DurabilityOptions::default()).unwrap();
        assert_eq!(rec.steps(), 3, "all intact commits replayed");
        assert_eq!(report.truncated_bytes, 3);
        assert!(report.truncated_reason.is_some());
        // The reopened WAL no longer carries the garbage.
        drop(d2);
        let replay = read_wal(&wal).unwrap();
        assert!(replay.truncated.is_none());
        assert_eq!(replay.records.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
