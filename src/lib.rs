//! # lockfree-pagerank
//!
//! Lock-free computation of PageRank in dynamic graphs — a from-scratch
//! Rust reproduction of Sahu, *"Lock-Free Computation of PageRank in
//! Dynamic Graphs"* (2024, arXiv:2407.19562).
//!
//! The workspace splits into three layers, re-exported here:
//!
//! * [`graph`] (`lfpr-graph`) — CSR snapshots, batch-dynamic graphs,
//!   generators, and I/O;
//! * [`sched`] (`lfpr-sched`) — wait-free chunk scheduling, instrumented
//!   barriers, and fault injection (random delays + crash-stop);
//! * [`core`] (`lfpr-core`) — the eight PageRank variants
//!   (Static/ND/DT/DF × barrier-based/lock-free) plus the reference
//!   implementation.
//!
//! This crate adds [`RankMaintainer`], a convenience layer that owns an
//! evolving graph and keeps its PageRank vector up to date across batch
//! updates — the API a downstream application would actually use. It is
//! a thin facade over [`UpdateSession`] (re-exported from `lfpr-core`),
//! which keeps the graph snapshot coherent incrementally and reuses one
//! rank/flag workspace across batches, so per-batch cost scales with
//! `|Δ|` instead of `n + m`. The [`serve`] module wraps a session in the
//! `lfpr serve` line protocol (insert/delete/batch/topk/rank over stdin
//! or TCP); the [`server`] module serves that protocol to many TCP
//! clients at once — reads answered from the session's epoch-published
//! [`RankView`] while one writer thread commits batches.
//!
//! ```
//! use lockfree_pagerank::{Algorithm, RankMaintainer, PagerankOptions};
//! use lockfree_pagerank::graph::{GraphBuilder, selfloops::add_self_loops};
//!
//! let mut g = GraphBuilder::new(4)
//!     .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
//!     .build_dyn()
//!     .unwrap();
//! add_self_loops(&mut g);
//!
//! let opts = PagerankOptions::default().with_threads(2);
//! let mut rm = RankMaintainer::new(g, Algorithm::DfLF, opts);
//! let before = rm.ranks().to_vec();
//!
//! // Stream an edge insertion; ranks update incrementally (lock-free).
//! rm.update(|g| {
//!     g.insert_edge(3, 1).unwrap();
//! });
//! assert_ne!(rm.ranks(), &before[..]);
//! ```

pub use lfpr_core as core;
pub use lfpr_graph as graph;
pub use lfpr_sched as sched;

pub use lfpr_core::{
    api, Algorithm, ConvergenceMode, PagerankOptions, PagerankResult, RankDelta, RankReader,
    RankView, RunStatus, StepStats, StorageLayout, Teleport, TeleportWeights, UpdateSession,
};
pub use lfpr_graph::{BatchSpec, BatchUpdate, DynGraph, ReorderStrategy, Reordering, Snapshot};

pub mod durable;
pub mod net;
pub mod protocol;
pub mod replica;
pub mod serve;
pub mod server;

use lfpr_graph::types::{Edge, GraphError};

/// Owns an evolving graph and keeps its PageRank vector current across
/// batch updates, using any of the paper's dynamic algorithms.
///
/// The maintainer records each mutation made through [`update`](Self::update) /
/// [`apply_batch`](Self::apply_batch) as the batch Δt and refreshes the
/// ranks through an [`UpdateSession`]: the pre/post snapshots of the
/// paper's read-only snapshot model (§3.4) are maintained incrementally
/// (CSR patching, not rebuilds) and the rank/flag workspace is reused
/// across batches, so a small batch costs `O(|Δ|)` plus bulk copies
/// instead of `O(n + m)`. [`ranks`](Self::ranks) borrows straight from
/// the session's in-place rank vector — there is no terminal clone.
pub struct RankMaintainer {
    session: UpdateSession,
}

impl RankMaintainer {
    /// Take ownership of `graph` and compute its initial ranks with the
    /// matching static variant (lock-free for DFLF/NDLF/DTLF/StaticLF,
    /// barrier-based otherwise).
    pub fn new(graph: DynGraph, algorithm: Algorithm, opts: PagerankOptions) -> Self {
        let session = UpdateSession::new(graph, algorithm, opts);
        RankMaintainer { session }
    }

    /// Current PageRank vector (borrowed from the session workspace).
    pub fn ranks(&self) -> &[f64] {
        self.session.ranks()
    }

    /// Rank of one vertex.
    pub fn rank(&self, v: u32) -> f64 {
        self.session.rank(v)
    }

    /// Read-only access to the current graph.
    pub fn graph(&self) -> &DynGraph {
        self.session.graph()
    }

    /// Stats of the most recent rank refresh (the initial static
    /// compute before any update ran).
    pub fn last_result(&self) -> Option<&StepStats> {
        self.session.last_stats()
    }

    /// The underlying update session.
    pub fn session(&self) -> &UpdateSession {
        &self.session
    }

    /// A handle for concurrent readers: threads may pull the latest
    /// committed [`RankView`] — `(snapshot, ranks,
    /// epoch)` — from it while this maintainer keeps applying updates.
    /// See [`UpdateSession::reader`].
    pub fn reader(&mut self) -> RankReader {
        self.session.reader()
    }

    /// Unwrap into the underlying update session.
    pub fn into_session(self) -> UpdateSession {
        self.session
    }

    /// The `k` highest-ranked vertices, descending (ties broken by
    /// vertex id). Uses an `O(n + k log k)` partial selection instead of
    /// sorting the whole rank vector.
    pub fn top_k(&self, k: usize) -> Vec<(u32, f64)> {
        self.session.top_k(k)
    }

    /// Mutate the graph through `f`, recording every insertion/deletion
    /// as the batch update, then refresh the ranks incrementally.
    /// Returns the step stats.
    ///
    /// Mutations must go through [`MutGuard`]'s methods so the batch is
    /// captured; the guard exposes the underlying graph for reads.
    pub fn update<F: FnOnce(&mut MutGuard<'_>)>(&mut self, f: F) -> &StepStats {
        self.session.step_mutated(|graph| {
            let mut guard = MutGuard {
                graph,
                batch: BatchUpdate::new(),
            };
            f(&mut guard);
            guard.batch
        });
        self.session.last_stats().expect("step just ran")
    }

    /// Apply a pre-built batch update and refresh the ranks.
    ///
    /// # Panics
    /// Panics if the batch is invalid for the current graph; use
    /// [`try_apply_batch`](Self::try_apply_batch) to handle that case.
    pub fn apply_batch(&mut self, batch: BatchUpdate) -> &StepStats {
        self.try_apply_batch(batch)
            .expect("batch must be valid for the current graph")
    }

    /// Apply a pre-built batch update and refresh the ranks. The batch
    /// is validated as a whole first; on error the graph and ranks are
    /// untouched.
    pub fn try_apply_batch(&mut self, batch: BatchUpdate) -> Result<&StepStats, GraphError> {
        self.session.step(&batch)?;
        Ok(self.session.last_stats().expect("step just ran"))
    }

    /// Record per-vertex rank deltas on every refresh, enabling
    /// [`movers`](Self::movers). Off by default — tracking costs one
    /// extra `O(n)` copy + diff per batch.
    pub fn track_deltas(&mut self) {
        self.session.enable_delta_tracking();
    }

    /// The `k` largest rank changes of the most recent refresh
    /// (requires [`track_deltas`](Self::track_deltas)).
    pub fn movers(&self, k: usize) -> Vec<RankDelta> {
        self.session.movers(k)
    }

    /// Add a personalized ranking view: a second rank vector over the
    /// same graph whose restart mass goes to `teleport`'s sources
    /// instead of being spread uniformly. The view updates on every
    /// subsequent batch, sharing the session's workspace. See
    /// [`UpdateSession::add_view`].
    pub fn add_view(&mut self, name: &str, teleport: Teleport) -> Result<(), String> {
        self.session.add_view(name, teleport)
    }

    /// Remove a personalized view.
    pub fn drop_view(&mut self, name: &str) -> Result<(), String> {
        self.session.drop_view(name)
    }

    /// Rank of `v` in the named view, if it exists.
    pub fn view_rank(&self, name: &str, v: u32) -> Option<f64> {
        self.session.view_rank(name, v)
    }

    /// The `k` highest-ranked vertices of the named view.
    pub fn view_top_k(&self, name: &str, k: usize) -> Option<Vec<(u32, f64)>> {
        self.session.view_top_k(name, k)
    }
}

/// Records mutations made during [`RankMaintainer::update`] as a batch.
///
/// The recorded batch is kept in normal form — deletions that existed
/// before the update, insertions that did not — so deleting an edge
/// inserted earlier in the same update (or re-inserting one deleted
/// earlier) cancels out instead of producing a contradictory Δt.
pub struct MutGuard<'a> {
    graph: &'a mut DynGraph,
    batch: BatchUpdate,
}

impl MutGuard<'_> {
    /// Insert an edge (errors if present).
    pub fn insert_edge(&mut self, u: u32, v: u32) -> lfpr_graph::types::Result<()> {
        self.graph.insert_edge(u, v)?;
        // Re-inserting an edge deleted earlier in this update nets out.
        if let Some(pos) = self.batch.deletions.iter().position(|&e| e == (u, v)) {
            self.batch.deletions.swap_remove(pos);
        } else {
            self.batch.insertions.push((u, v));
        }
        Ok(())
    }

    /// Delete an edge (errors if absent).
    pub fn delete_edge(&mut self, u: u32, v: u32) -> lfpr_graph::types::Result<()> {
        self.graph.delete_edge(u, v)?;
        // Deleting an edge inserted earlier in this update nets out.
        if let Some(pos) = self.batch.insertions.iter().position(|&e| e == (u, v)) {
            self.batch.insertions.swap_remove(pos);
        } else {
            self.batch.deletions.push((u, v));
        }
        Ok(())
    }

    /// Bulk-insert edges, skipping ones already present. Returns how
    /// many were actually inserted; errors other than
    /// [`GraphError::DuplicateEdge`] (e.g. a vertex id out of range)
    /// are surfaced instead of being swallowed.
    pub fn insert_edges<I: IntoIterator<Item = Edge>>(
        &mut self,
        it: I,
    ) -> lfpr_graph::types::Result<usize> {
        let mut inserted = 0usize;
        for (u, v) in it {
            match self.insert_edge(u, v) {
                Ok(()) => inserted += 1,
                Err(GraphError::DuplicateEdge(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(inserted)
    }

    /// Read access to the graph mid-update.
    pub fn graph(&self) -> &DynGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_graph::selfloops::add_self_loops;

    fn maintainer(algo: Algorithm) -> RankMaintainer {
        let mut g = lfpr_graph::generators::erdos_renyi(100, 600, 5);
        add_self_loops(&mut g);
        let opts = PagerankOptions::default()
            .with_threads(2)
            .with_chunk_size(16);
        RankMaintainer::new(g, algo, opts)
    }

    #[test]
    fn initial_ranks_sum_to_one() {
        let rm = maintainer(Algorithm::DfLF);
        let sum: f64 = rm.ranks().iter().sum();
        assert!((sum - 1.0).abs() < 1e-7, "sum = {sum}");
    }

    #[test]
    fn update_records_batch_and_refreshes() {
        let mut rm = maintainer(Algorithm::DfLF);
        let r0 = rm.rank(1);
        let res = rm.update(|g| {
            // Point several vertices at vertex 1.
            assert_eq!(g.insert_edges([(10, 1), (20, 1), (30, 1), (40, 1)]), Ok(4));
        });
        assert!(res.status.is_success());
        assert!(res.incremental, "facade updates must patch, not rebuild");
        assert!(rm.rank(1) > r0, "vertex 1 gained in-links, rank must rise");
    }

    #[test]
    fn top_k_sorted_descending() {
        let rm = maintainer(Algorithm::NdLF);
        let top = rm.top_k(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn works_with_every_algorithm() {
        for algo in Algorithm::ALL {
            let mut rm = maintainer(algo);
            let res = rm.update(|g| {
                g.insert_edges([(3, 7)]).unwrap();
            });
            assert!(res.status.is_success(), "{algo}");
        }
    }

    #[test]
    fn top_k_matches_full_sort() {
        let rm = maintainer(Algorithm::DfLF);
        let ranks = rm.ranks();
        let mut idx: Vec<u32> = (0..ranks.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            ranks[b as usize]
                .partial_cmp(&ranks[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        for k in [0, 1, 5, 99, 100, 1000] {
            let top = rm.top_k(k);
            let expect: Vec<(u32, f64)> = idx
                .iter()
                .take(k)
                .map(|&v| (v, ranks[v as usize]))
                .collect();
            assert_eq!(top, expect, "k = {k}");
        }
    }

    #[test]
    fn reader_views_track_maintainer_updates() {
        let mut rm = maintainer(Algorithm::DfLF);
        let reader = rm.reader();
        assert_eq!(reader.view().epoch(), 0);
        rm.update(|g| {
            g.insert_edges([(10, 1), (20, 1)]).unwrap();
        });
        let v = reader.view();
        assert_eq!(v.epoch(), 1);
        assert_eq!(v.ranks(), rm.ranks());
        assert_eq!(v.snapshot().num_edges(), rm.graph().num_edges());
    }

    #[test]
    fn insert_edges_surfaces_out_of_range() {
        let mut rm = maintainer(Algorithm::DfLF);
        rm.update(|g| {
            // Duplicates are skipped silently…
            assert_eq!(g.insert_edges([(0, 0), (5, 9)]), Ok(1));
            // …but a bad vertex id is a real error, not a no-op.
            assert!(matches!(
                g.insert_edges([(0, 1_000_000)]),
                Err(lfpr_graph::types::GraphError::VertexOutOfRange { .. })
            ));
        });
    }

    #[test]
    fn mutguard_normalizes_cancelling_ops() {
        let mut rm = maintainer(Algorithm::DfLF);
        let before = rm.ranks().to_vec();
        let res = rm.update(|g| {
            // Insert-then-delete and delete-then-reinsert both net out.
            g.insert_edge(5, 9).unwrap();
            g.delete_edge(5, 9).unwrap();
            g.delete_edge(0, 0).unwrap();
            g.insert_edge(0, 0).unwrap();
        });
        assert_eq!(res.batch_size, 0, "cancelling ops must leave Δt empty");
        assert_eq!(res.vertices_processed, 0);
        assert_eq!(rm.ranks(), &before[..]);
    }

    #[test]
    fn delete_then_reinsert_is_stable() {
        let mut rm = maintainer(Algorithm::DfLF);
        let before = rm.ranks().to_vec();
        rm.update(|g| {
            g.delete_edge(0, 0).ok();
        });
        rm.update(|g| {
            g.insert_edge(0, 0).ok();
        });
        let after = rm.ranks();
        let max_diff = before
            .iter()
            .zip(after)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-6, "stability violated: {max_diff}");
    }
}
