//! # lockfree-pagerank
//!
//! Lock-free computation of PageRank in dynamic graphs — a from-scratch
//! Rust reproduction of Sahu, *"Lock-Free Computation of PageRank in
//! Dynamic Graphs"* (2024, arXiv:2407.19562).
//!
//! The workspace splits into three layers, re-exported here:
//!
//! * [`graph`] (`lfpr-graph`) — CSR snapshots, batch-dynamic graphs,
//!   generators, and I/O;
//! * [`sched`] (`lfpr-sched`) — wait-free chunk scheduling, instrumented
//!   barriers, and fault injection (random delays + crash-stop);
//! * [`core`] (`lfpr-core`) — the eight PageRank variants
//!   (Static/ND/DT/DF × barrier-based/lock-free) plus the reference
//!   implementation.
//!
//! This crate adds [`RankMaintainer`], a convenience layer that owns an
//! evolving graph and keeps its PageRank vector up to date across batch
//! updates — the API a downstream application would actually use. It is
//! a thin facade over [`UpdateSession`] (re-exported from `lfpr-core`),
//! which keeps the graph snapshot coherent incrementally and reuses one
//! rank/flag workspace across batches, so per-batch cost scales with
//! `|Δ|` instead of `n + m`. The [`serve`] module wraps a session in the
//! `lfpr serve` line protocol (insert/delete/batch/topk/rank over stdin
//! or TCP); the [`server`] module serves that protocol to many TCP
//! clients at once — reads answered from the session's epoch-published
//! [`RankView`] while one writer thread commits batches.
//!
//! ```
//! use lockfree_pagerank::{Algorithm, RankMaintainer, PagerankOptions};
//! use lockfree_pagerank::graph::{GraphBuilder, selfloops::add_self_loops};
//!
//! let mut g = GraphBuilder::new(4)
//!     .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
//!     .build_dyn()
//!     .unwrap();
//! add_self_loops(&mut g);
//!
//! let opts = PagerankOptions::default().with_threads(2);
//! let mut rm = RankMaintainer::new(g, Algorithm::DfLF, opts);
//! let before = rm.ranks().to_vec();
//!
//! // Stream an edge insertion; ranks update incrementally (lock-free).
//! rm.update(|g| {
//!     g.insert_edge(3, 1).unwrap();
//! });
//! assert_ne!(rm.ranks(), &before[..]);
//! ```

pub use lfpr_core as core;
pub use lfpr_graph as graph;
pub use lfpr_sched as sched;

pub use lfpr_core::{
    api, Algorithm, ConvergenceMode, PagerankOptions, PagerankResult, RankDelta, RankReader,
    RankView, RunStatus, StepStats, StorageLayout, Teleport, TeleportWeights, UpdateSession,
};
pub use lfpr_graph::{BatchSpec, BatchUpdate, DynGraph, ReorderStrategy, Reordering, Snapshot};

pub mod durable;
pub mod net;
pub mod protocol;
pub mod replica;
pub mod serve;
pub mod server;
pub mod shard;

use lfpr_graph::types::{Edge, GraphError};

/// Where `lfpr serve` gets its graph from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSource {
    /// Load an edge-list / MatrixMarket file (`--graph`, `--format`).
    File {
        /// Path on disk.
        path: String,
        /// Explicit format; `None` detects by extension.
        format: Option<graph::GraphFormat>,
    },
    /// Erdős–Rényi generator (`--gen <n> <m> <seed>`).
    Generated {
        /// Vertex count.
        n: usize,
        /// Edge count.
        m: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Restore checkpoint + WAL tail from the `--wal` directory
    /// (`--recover`).
    Recovered,
}

/// The full `lfpr serve` configuration: every CLI flag as one typed
/// struct, with the flag interactions validated in **one place**
/// ([`validate`](Self::validate)) instead of scattered through the
/// argument loop. The CLI parses into it via
/// [`from_args`](Self::from_args); tests construct it directly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Graph source (`--graph` / `--gen` / `--recover`).
    pub source: GraphSource,
    /// Rank algorithm (`--algo`, default DF-LF).
    pub algo: Algorithm,
    /// Kernel threads (`--threads`, default 1 — deterministic).
    pub threads: usize,
    /// Iteration tolerance τ (`--tolerance`).
    pub tolerance: f64,
    /// Frontier tolerance τf (`--tauf`; defaults to τ — see the CLI
    /// docs for why serve does not use the paper's τ/1000).
    pub tauf: Option<f64>,
    /// TCP listen address (`--tcp`); `None` serves stdin/stdout.
    pub tcp: Option<String>,
    /// Event loops for the unsharded TCP server (`--workers`).
    pub workers: usize,
    /// Writer-side commit coalescing (`--no-coalesce` turns it off).
    pub coalesce: bool,
    /// Write-ahead-log directory (`--wal`); enables durability.
    pub wal_dir: Option<std::path::PathBuf>,
    /// WAL fsync policy (`--fsync`).
    pub fsync: graph::io::wal::FsyncPolicy,
    /// Checkpoint cadence in commits (`--checkpoint-every`, 0 = never).
    pub checkpoint_every: u64,
    /// Crash-injection hook for the CI recovery smoke
    /// (`--crash-after`).
    pub crash_after: Option<u64>,
    /// Session storage layout (`--layout packed|gapped`).
    pub layout: StorageLayout,
    /// Load-time vertex renumbering (`--reorder`). With `--shards` the
    /// partition is computed jointly with it
    /// ([`graph::Partition::compute_joint`]).
    pub reorder: ReorderStrategy,
    /// Session shards (`--shards`, default 1). Values ≥ 2 serve the
    /// sharded tier ([`shard::ShardRouter`]) and speak the v2
    /// handshake.
    pub shards: usize,
}

impl ServeConfig {
    /// A config with the CLI's historical defaults.
    pub fn new(source: GraphSource) -> Self {
        ServeConfig {
            source,
            algo: Algorithm::DfLF,
            threads: 1,
            tolerance: 1e-10,
            tauf: None,
            tcp: None,
            workers: 4,
            coalesce: true,
            wal_dir: None,
            fsync: graph::io::wal::FsyncPolicy::Always,
            checkpoint_every: 64,
            crash_after: None,
            layout: StorageLayout::Packed,
            reorder: ReorderStrategy::None,
            shards: 1,
        }
    }

    /// Parse the `lfpr serve` flag set into a validated config.
    pub fn from_args(args: &[String]) -> Result<ServeConfig, String> {
        let mut cfg = ServeConfig::new(GraphSource::Recovered);
        let mut graph_path: Option<String> = None;
        let mut format: Option<graph::GraphFormat> = None;
        let mut gen: Option<(usize, usize, u64)> = None;
        let mut recover = false;
        let value = |i: usize, usage: &str| -> Result<&String, String> {
            args.get(i).ok_or_else(|| format!("usage: {usage}"))
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--algo" => {
                    cfg.algo = value(i + 1, "--algo <name>")?.parse()?;
                    i += 2;
                }
                "--threads" => {
                    cfg.threads = value(i + 1, "--threads <n>")?
                        .parse()
                        .map_err(|_| "usage: --threads <n>".to_string())?;
                    i += 2;
                }
                "--tolerance" => {
                    cfg.tolerance = value(i + 1, "--tolerance <t>")?
                        .parse()
                        .map_err(|_| "usage: --tolerance <t>".to_string())?;
                    i += 2;
                }
                "--tauf" => {
                    cfg.tauf = Some(
                        value(i + 1, "--tauf <t>")?
                            .parse()
                            .map_err(|_| "usage: --tauf <t>".to_string())?,
                    );
                    i += 2;
                }
                "--format" => {
                    format = Some(value(i + 1, "--format <snap|mtx>")?.parse()?);
                    i += 2;
                }
                "--graph" => {
                    graph_path = Some(value(i + 1, "--graph <path>")?.clone());
                    i += 2;
                }
                "--gen" => {
                    let usage = "--gen <n> <m> <seed>";
                    let parse_at = |j: usize| -> Result<usize, String> {
                        value(j, usage)?
                            .parse()
                            .map_err(|_| format!("usage: {usage}"))
                    };
                    let seed: u64 = value(i + 3, usage)?
                        .parse()
                        .map_err(|_| format!("usage: {usage}"))?;
                    gen = Some((parse_at(i + 1)?, parse_at(i + 2)?, seed));
                    i += 4;
                }
                "--tcp" => {
                    cfg.tcp = Some(value(i + 1, "--tcp <addr:port>")?.clone());
                    i += 2;
                }
                "--workers" => {
                    cfg.workers = value(i + 1, "--workers <n>")?
                        .parse()
                        .map_err(|_| "usage: --workers <n>".to_string())?;
                    i += 2;
                }
                "--no-coalesce" => {
                    cfg.coalesce = false;
                    i += 1;
                }
                "--wal" => {
                    cfg.wal_dir = Some(value(i + 1, "--wal <dir>")?.into());
                    i += 2;
                }
                "--fsync" => {
                    cfg.fsync = value(i + 1, "--fsync <always|every-k|never>")?.parse()?;
                    i += 2;
                }
                "--checkpoint-every" => {
                    cfg.checkpoint_every = value(i + 1, "--checkpoint-every <n>")?
                        .parse()
                        .map_err(|_| "usage: --checkpoint-every <n> (0 disables)".to_string())?;
                    i += 2;
                }
                "--recover" => {
                    recover = true;
                    i += 1;
                }
                "--crash-after" => {
                    cfg.crash_after = Some(
                        value(i + 1, "--crash-after <n>")?
                            .parse()
                            .map_err(|_| "usage: --crash-after <n>".to_string())?,
                    );
                    i += 2;
                }
                "--layout" => {
                    cfg.layout = value(i + 1, "--layout <packed|gapped>")?.parse()?;
                    i += 2;
                }
                "--reorder" => {
                    cfg.reorder = value(i + 1, "--reorder <none|degree|bfs>")?.parse()?;
                    i += 2;
                }
                "--shards" => {
                    cfg.shards = value(i + 1, "--shards <n>")?
                        .parse()
                        .map_err(|_| "usage: --shards <n>".to_string())?;
                    i += 2;
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        cfg.source = match (graph_path, gen, recover) {
            (Some(path), None, false) => GraphSource::File { path, format },
            (None, Some((n, m, seed)), false) => GraphSource::Generated { n, m, seed },
            (None, None, true) => GraphSource::Recovered,
            (Some(_), _, true) | (_, Some(_), true) => {
                return Err(
                    "--recover restores the graph from the wal directory; drop --graph/--gen"
                        .into(),
                )
            }
            (Some(_), Some(_), false) => {
                return Err(
                    "serve needs exactly one of --graph <path> or --gen <n> <m> <seed>".into(),
                )
            }
            (None, None, false) => {
                return Err(
                    "serve needs exactly one of --graph <path> or --gen <n> <m> <seed>".into(),
                )
            }
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Every flag-interaction rule, in one place.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("--shards needs at least one shard".into());
        }
        if self.threads == 0 {
            return Err("--threads needs at least one thread".into());
        }
        if self.source == GraphSource::Recovered {
            if self.wal_dir.is_none() {
                return Err("--recover needs --wal <dir>".into());
            }
            if self.reorder != ReorderStrategy::None {
                return Err(
                    "--recover restores the vertex order from the checkpoint; drop --reorder"
                        .into(),
                );
            }
            if self.shards > 1 {
                return Err(
                    "--recover restores a single-session checkpoint; sharded recovery is not \
                     supported — drop --shards"
                        .into(),
                );
            }
        }
        if self.crash_after.is_some() && self.wal_dir.is_none() {
            return Err("--crash-after injects a crash after a WAL append; it needs --wal".into());
        }
        if self.shards > 1 && self.layout != StorageLayout::Packed {
            return Err(
                "--layout gapped applies to the single-session server; drop it with --shards"
                    .into(),
            );
        }
        Ok(())
    }

    /// The kernel options this config describes. τf defaults to τ, not
    /// the paper's τ/1000: each serve batch warm-starts from the
    /// previous τ-converged output, whose residuals would flood the
    /// frontier at τ/1000 (see `update_bench`).
    pub fn pagerank_options(&self) -> PagerankOptions {
        use lfpr_sched::{ChunkPolicy, ExecMode, Schedule};
        PagerankOptions::default()
            .with_threads(self.threads)
            .with_tolerance(self.tolerance)
            .with_frontier_tolerance(self.tauf.unwrap_or(self.tolerance))
            .with_schedule(Schedule {
                policy: ChunkPolicy::Fixed(2048),
                executor: ExecMode::Pool,
            })
    }

    /// The durability tunables this config describes (meaningful only
    /// with [`wal_dir`](Self::wal_dir) set).
    pub fn durability_options(&self) -> durable::DurabilityOptions {
        durable::DurabilityOptions {
            fsync: self.fsync,
            checkpoint_every: self.checkpoint_every,
            crash_after: self.crash_after,
        }
    }
}

/// Owns an evolving graph and keeps its PageRank vector current across
/// batch updates, using any of the paper's dynamic algorithms.
///
/// The maintainer records each mutation made through [`update`](Self::update) /
/// [`apply_batch`](Self::apply_batch) as the batch Δt and refreshes the
/// ranks through an [`UpdateSession`]: the pre/post snapshots of the
/// paper's read-only snapshot model (§3.4) are maintained incrementally
/// (CSR patching, not rebuilds) and the rank/flag workspace is reused
/// across batches, so a small batch costs `O(|Δ|)` plus bulk copies
/// instead of `O(n + m)`. [`ranks`](Self::ranks) borrows straight from
/// the session's in-place rank vector — there is no terminal clone.
pub struct RankMaintainer {
    session: UpdateSession,
}

impl RankMaintainer {
    /// Take ownership of `graph` and compute its initial ranks with the
    /// matching static variant (lock-free for DFLF/NDLF/DTLF/StaticLF,
    /// barrier-based otherwise).
    pub fn new(graph: DynGraph, algorithm: Algorithm, opts: PagerankOptions) -> Self {
        let session = UpdateSession::new(graph, algorithm, opts);
        RankMaintainer { session }
    }

    /// Current PageRank vector (borrowed from the session workspace).
    pub fn ranks(&self) -> &[f64] {
        self.session.ranks()
    }

    /// Rank of one vertex.
    pub fn rank(&self, v: u32) -> f64 {
        self.session.rank(v)
    }

    /// Read-only access to the current graph.
    pub fn graph(&self) -> &DynGraph {
        self.session.graph()
    }

    /// Stats of the most recent rank refresh (the initial static
    /// compute before any update ran).
    pub fn last_result(&self) -> Option<&StepStats> {
        self.session.last_stats()
    }

    /// The underlying update session.
    pub fn session(&self) -> &UpdateSession {
        &self.session
    }

    /// A handle for concurrent readers: threads may pull the latest
    /// committed [`RankView`] — `(snapshot, ranks,
    /// epoch)` — from it while this maintainer keeps applying updates.
    /// See [`UpdateSession::reader`].
    pub fn reader(&mut self) -> RankReader {
        self.session.reader()
    }

    /// Unwrap into the underlying update session.
    pub fn into_session(self) -> UpdateSession {
        self.session
    }

    /// The `k` highest-ranked vertices, descending (ties broken by
    /// vertex id). Uses an `O(n + k log k)` partial selection instead of
    /// sorting the whole rank vector.
    pub fn top_k(&self, k: usize) -> Vec<(u32, f64)> {
        self.session.top_k(k)
    }

    /// Mutate the graph through `f`, recording every insertion/deletion
    /// as the batch update, then refresh the ranks incrementally.
    /// Returns the step stats.
    ///
    /// Mutations must go through [`MutGuard`]'s methods so the batch is
    /// captured; the guard exposes the underlying graph for reads.
    pub fn update<F: FnOnce(&mut MutGuard<'_>)>(&mut self, f: F) -> &StepStats {
        self.session.step_mutated(|graph| {
            let mut guard = MutGuard {
                graph,
                batch: BatchUpdate::new(),
            };
            f(&mut guard);
            guard.batch
        });
        self.session.last_stats().expect("step just ran")
    }

    /// Apply a pre-built batch update and refresh the ranks.
    ///
    /// # Panics
    /// Panics if the batch is invalid for the current graph; use
    /// [`try_apply_batch`](Self::try_apply_batch) to handle that case.
    pub fn apply_batch(&mut self, batch: BatchUpdate) -> &StepStats {
        self.try_apply_batch(batch)
            .expect("batch must be valid for the current graph")
    }

    /// Apply a pre-built batch update and refresh the ranks. The batch
    /// is validated as a whole first; on error the graph and ranks are
    /// untouched.
    pub fn try_apply_batch(&mut self, batch: BatchUpdate) -> Result<&StepStats, GraphError> {
        self.session.step(&batch)?;
        Ok(self.session.last_stats().expect("step just ran"))
    }

    /// Record per-vertex rank deltas on every refresh, enabling
    /// [`movers`](Self::movers). Off by default — tracking costs one
    /// extra `O(n)` copy + diff per batch.
    pub fn track_deltas(&mut self) {
        self.session.enable_delta_tracking();
    }

    /// The `k` largest rank changes of the most recent refresh
    /// (requires [`track_deltas`](Self::track_deltas)).
    pub fn movers(&self, k: usize) -> Vec<RankDelta> {
        self.session.movers(k)
    }

    /// Add a personalized ranking view: a second rank vector over the
    /// same graph whose restart mass goes to `teleport`'s sources
    /// instead of being spread uniformly. The view updates on every
    /// subsequent batch, sharing the session's workspace. See
    /// [`UpdateSession::add_view`].
    pub fn add_view(&mut self, name: &str, teleport: Teleport) -> Result<(), String> {
        self.session.add_view(name, teleport)
    }

    /// Remove a personalized view.
    pub fn drop_view(&mut self, name: &str) -> Result<(), String> {
        self.session.drop_view(name)
    }

    /// Rank of `v` in the named view, if it exists.
    pub fn view_rank(&self, name: &str, v: u32) -> Option<f64> {
        self.session.view_rank(name, v)
    }

    /// The `k` highest-ranked vertices of the named view.
    pub fn view_top_k(&self, name: &str, k: usize) -> Option<Vec<(u32, f64)>> {
        self.session.view_top_k(name, k)
    }
}

/// Records mutations made during [`RankMaintainer::update`] as a batch.
///
/// The recorded batch is kept in normal form — deletions that existed
/// before the update, insertions that did not — so deleting an edge
/// inserted earlier in the same update (or re-inserting one deleted
/// earlier) cancels out instead of producing a contradictory Δt.
pub struct MutGuard<'a> {
    graph: &'a mut DynGraph,
    batch: BatchUpdate,
}

impl MutGuard<'_> {
    /// Insert an edge (errors if present).
    pub fn insert_edge(&mut self, u: u32, v: u32) -> lfpr_graph::types::Result<()> {
        self.graph.insert_edge(u, v)?;
        // Re-inserting an edge deleted earlier in this update nets out.
        if let Some(pos) = self.batch.deletions.iter().position(|&e| e == (u, v)) {
            self.batch.deletions.swap_remove(pos);
        } else {
            self.batch.insertions.push((u, v));
        }
        Ok(())
    }

    /// Delete an edge (errors if absent).
    pub fn delete_edge(&mut self, u: u32, v: u32) -> lfpr_graph::types::Result<()> {
        self.graph.delete_edge(u, v)?;
        // Deleting an edge inserted earlier in this update nets out.
        if let Some(pos) = self.batch.insertions.iter().position(|&e| e == (u, v)) {
            self.batch.insertions.swap_remove(pos);
        } else {
            self.batch.deletions.push((u, v));
        }
        Ok(())
    }

    /// Bulk-insert edges, skipping ones already present. Returns how
    /// many were actually inserted; errors other than
    /// [`GraphError::DuplicateEdge`] (e.g. a vertex id out of range)
    /// are surfaced instead of being swallowed.
    pub fn insert_edges<I: IntoIterator<Item = Edge>>(
        &mut self,
        it: I,
    ) -> lfpr_graph::types::Result<usize> {
        let mut inserted = 0usize;
        for (u, v) in it {
            match self.insert_edge(u, v) {
                Ok(()) => inserted += 1,
                Err(GraphError::DuplicateEdge(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(inserted)
    }

    /// Read access to the graph mid-update.
    pub fn graph(&self) -> &DynGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_graph::selfloops::add_self_loops;

    fn maintainer(algo: Algorithm) -> RankMaintainer {
        let mut g = lfpr_graph::generators::erdos_renyi(100, 600, 5);
        add_self_loops(&mut g);
        let opts = PagerankOptions::default()
            .with_threads(2)
            .with_chunk_size(16);
        RankMaintainer::new(g, algo, opts)
    }

    #[test]
    fn initial_ranks_sum_to_one() {
        let rm = maintainer(Algorithm::DfLF);
        let sum: f64 = rm.ranks().iter().sum();
        assert!((sum - 1.0).abs() < 1e-7, "sum = {sum}");
    }

    #[test]
    fn update_records_batch_and_refreshes() {
        let mut rm = maintainer(Algorithm::DfLF);
        let r0 = rm.rank(1);
        let res = rm.update(|g| {
            // Point several vertices at vertex 1.
            assert_eq!(g.insert_edges([(10, 1), (20, 1), (30, 1), (40, 1)]), Ok(4));
        });
        assert!(res.status.is_success());
        assert!(res.incremental, "facade updates must patch, not rebuild");
        assert!(rm.rank(1) > r0, "vertex 1 gained in-links, rank must rise");
    }

    #[test]
    fn top_k_sorted_descending() {
        let rm = maintainer(Algorithm::NdLF);
        let top = rm.top_k(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn works_with_every_algorithm() {
        for algo in Algorithm::ALL {
            let mut rm = maintainer(algo);
            let res = rm.update(|g| {
                g.insert_edges([(3, 7)]).unwrap();
            });
            assert!(res.status.is_success(), "{algo}");
        }
    }

    #[test]
    fn top_k_matches_full_sort() {
        let rm = maintainer(Algorithm::DfLF);
        let ranks = rm.ranks();
        let mut idx: Vec<u32> = (0..ranks.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            ranks[b as usize]
                .partial_cmp(&ranks[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        for k in [0, 1, 5, 99, 100, 1000] {
            let top = rm.top_k(k);
            let expect: Vec<(u32, f64)> = idx
                .iter()
                .take(k)
                .map(|&v| (v, ranks[v as usize]))
                .collect();
            assert_eq!(top, expect, "k = {k}");
        }
    }

    #[test]
    fn reader_views_track_maintainer_updates() {
        let mut rm = maintainer(Algorithm::DfLF);
        let reader = rm.reader();
        assert_eq!(reader.view().epoch(), 0);
        rm.update(|g| {
            g.insert_edges([(10, 1), (20, 1)]).unwrap();
        });
        let v = reader.view();
        assert_eq!(v.epoch(), 1);
        assert_eq!(v.ranks(), rm.ranks());
        assert_eq!(v.snapshot().num_edges(), rm.graph().num_edges());
    }

    #[test]
    fn insert_edges_surfaces_out_of_range() {
        let mut rm = maintainer(Algorithm::DfLF);
        rm.update(|g| {
            // Duplicates are skipped silently…
            assert_eq!(g.insert_edges([(0, 0), (5, 9)]), Ok(1));
            // …but a bad vertex id is a real error, not a no-op.
            assert!(matches!(
                g.insert_edges([(0, 1_000_000)]),
                Err(lfpr_graph::types::GraphError::VertexOutOfRange { .. })
            ));
        });
    }

    #[test]
    fn mutguard_normalizes_cancelling_ops() {
        let mut rm = maintainer(Algorithm::DfLF);
        let before = rm.ranks().to_vec();
        let res = rm.update(|g| {
            // Insert-then-delete and delete-then-reinsert both net out.
            g.insert_edge(5, 9).unwrap();
            g.delete_edge(5, 9).unwrap();
            g.delete_edge(0, 0).unwrap();
            g.insert_edge(0, 0).unwrap();
        });
        assert_eq!(res.batch_size, 0, "cancelling ops must leave Δt empty");
        assert_eq!(res.vertices_processed, 0);
        assert_eq!(rm.ranks(), &before[..]);
    }

    #[test]
    fn delete_then_reinsert_is_stable() {
        let mut rm = maintainer(Algorithm::DfLF);
        let before = rm.ranks().to_vec();
        rm.update(|g| {
            g.delete_edge(0, 0).ok();
        });
        rm.update(|g| {
            g.insert_edge(0, 0).ok();
        });
        let after = rm.ranks();
        let max_diff = before
            .iter()
            .zip(after)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-6, "stability violated: {max_diff}");
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn serve_config_parses_the_full_flag_set() {
        let cfg = ServeConfig::from_args(&argv(
            "--gen 100 400 7 --algo dflf --threads 2 --tolerance 1e-9 --tauf 1e-9 \
             --tcp 127.0.0.1:0 --workers 2 --no-coalesce --wal /tmp/w --fsync every-8 \
             --checkpoint-every 16 --shards 4",
        ))
        .unwrap();
        assert_eq!(
            cfg.source,
            GraphSource::Generated {
                n: 100,
                m: 400,
                seed: 7
            }
        );
        assert_eq!(cfg.threads, 2);
        assert!(!cfg.coalesce);
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.checkpoint_every, 16);
        assert_eq!(cfg.wal_dir.as_deref(), Some(std::path::Path::new("/tmp/w")));
    }

    #[test]
    fn serve_config_rejects_conflicting_flags_in_one_place() {
        // Every rule lives in validate(); from_args only adds the
        // graph-source arity checks.
        let recover_reorder = ServeConfig {
            reorder: ReorderStrategy::Degree,
            wal_dir: Some("/tmp/w".into()),
            ..ServeConfig::new(GraphSource::Recovered)
        };
        assert_eq!(
            recover_reorder.validate().unwrap_err(),
            "--recover restores the vertex order from the checkpoint; drop --reorder"
        );
        assert_eq!(
            ServeConfig::new(GraphSource::Recovered)
                .validate()
                .unwrap_err(),
            "--recover needs --wal <dir>"
        );
        let sharded_recover = ServeConfig {
            shards: 4,
            wal_dir: Some("/tmp/w".into()),
            ..ServeConfig::new(GraphSource::Recovered)
        };
        assert!(sharded_recover
            .validate()
            .unwrap_err()
            .contains("drop --shards"));
        let zero = ServeConfig {
            shards: 0,
            ..ServeConfig::new(GraphSource::Generated {
                n: 1,
                m: 0,
                seed: 0,
            })
        };
        assert_eq!(
            zero.validate().unwrap_err(),
            "--shards needs at least one shard"
        );
        assert!(
            ServeConfig::from_args(&argv("--recover --reorder degree --wal /tmp/w"))
                .unwrap_err()
                .contains("drop --reorder")
        );
        assert!(ServeConfig::from_args(&argv("--graph a.txt --gen 1 0 0"))
            .unwrap_err()
            .contains("exactly one of"));
        assert!(ServeConfig::from_args(&argv("--recover --graph a.txt"))
            .unwrap_err()
            .contains("drop --graph/--gen"));
    }

    #[test]
    fn serve_config_tauf_defaults_to_tolerance() {
        let cfg = ServeConfig::new(GraphSource::Generated {
            n: 10,
            m: 20,
            seed: 1,
        });
        let opts = cfg.pagerank_options();
        assert_eq!(opts.frontier_tolerance, opts.tolerance);
    }
}
