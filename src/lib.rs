//! # lockfree-pagerank
//!
//! Lock-free computation of PageRank in dynamic graphs — a from-scratch
//! Rust reproduction of Sahu, *"Lock-Free Computation of PageRank in
//! Dynamic Graphs"* (2024, arXiv:2407.19562).
//!
//! The workspace splits into three layers, re-exported here:
//!
//! * [`graph`] (`lfpr-graph`) — CSR snapshots, batch-dynamic graphs,
//!   generators, and I/O;
//! * [`sched`] (`lfpr-sched`) — wait-free chunk scheduling, instrumented
//!   barriers, and fault injection (random delays + crash-stop);
//! * [`core`] (`lfpr-core`) — the eight PageRank variants
//!   (Static/ND/DT/DF × barrier-based/lock-free) plus the reference
//!   implementation.
//!
//! This crate adds [`RankMaintainer`], a convenience layer that owns an
//! evolving graph and keeps its PageRank vector up to date across batch
//! updates — the API a downstream application would actually use.
//!
//! ```
//! use lockfree_pagerank::{Algorithm, RankMaintainer, PagerankOptions};
//! use lockfree_pagerank::graph::{GraphBuilder, selfloops::add_self_loops};
//!
//! let mut g = GraphBuilder::new(4)
//!     .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
//!     .build_dyn()
//!     .unwrap();
//! add_self_loops(&mut g);
//!
//! let opts = PagerankOptions::default().with_threads(2);
//! let mut rm = RankMaintainer::new(g, Algorithm::DfLF, opts);
//! let before = rm.ranks().to_vec();
//!
//! // Stream an edge insertion; ranks update incrementally (lock-free).
//! rm.update(|g| {
//!     g.insert_edge(3, 1).unwrap();
//! });
//! assert_ne!(rm.ranks(), &before[..]);
//! ```

pub use lfpr_core as core;
pub use lfpr_graph as graph;
pub use lfpr_sched as sched;

pub use lfpr_core::{api, Algorithm, ConvergenceMode, PagerankOptions, PagerankResult, RunStatus};
pub use lfpr_graph::{BatchSpec, BatchUpdate, DynGraph, Snapshot};

use lfpr_graph::types::Edge;

/// Owns an evolving graph and keeps its PageRank vector current across
/// batch updates, using any of the paper's dynamic algorithms.
///
/// The maintainer records each mutation made through [`update`] /
/// [`apply_batch`](Self::apply_batch) as the batch Δt, snapshots the
/// graph before and after (the paper's read-only snapshot model, §3.4),
/// and runs the configured algorithm to refresh the ranks.
pub struct RankMaintainer {
    graph: DynGraph,
    snapshot: Snapshot,
    ranks: Vec<f64>,
    algorithm: Algorithm,
    opts: PagerankOptions,
    last_result: Option<PagerankResult>,
}

impl RankMaintainer {
    /// Take ownership of `graph` and compute its initial ranks with the
    /// matching static variant (lock-free for DFLF/NDLF/DTLF/StaticLF,
    /// barrier-based otherwise).
    pub fn new(graph: DynGraph, algorithm: Algorithm, opts: PagerankOptions) -> Self {
        let snapshot = graph.snapshot();
        let static_algo = if algorithm.is_lock_free() {
            Algorithm::StaticLF
        } else {
            Algorithm::StaticBB
        };
        let initial = api::run_static(static_algo, &snapshot, &opts);
        RankMaintainer {
            graph,
            snapshot,
            ranks: initial.ranks.clone(),
            algorithm,
            opts,
            last_result: Some(initial),
        }
    }

    /// Current PageRank vector.
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }

    /// Rank of one vertex.
    pub fn rank(&self, v: u32) -> f64 {
        self.ranks[v as usize]
    }

    /// Read-only access to the current graph.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The result of the most recent rank computation.
    pub fn last_result(&self) -> Option<&PagerankResult> {
        self.last_result.as_ref()
    }

    /// The `k` highest-ranked vertices, descending.
    pub fn top_k(&self, k: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<u32> = (0..self.ranks.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            self.ranks[b as usize]
                .partial_cmp(&self.ranks[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx.into_iter()
            .map(|v| (v, self.ranks[v as usize]))
            .collect()
    }

    /// Mutate the graph through `f`, recording every insertion/deletion
    /// as the batch update, then refresh the ranks incrementally.
    /// Returns the run result.
    ///
    /// Mutations must go through [`MutGuard`]'s methods so the batch is
    /// captured; the guard derefs to the underlying graph for reads.
    pub fn update<F: FnOnce(&mut MutGuard<'_>)>(&mut self, f: F) -> &PagerankResult {
        let mut guard = MutGuard {
            graph: &mut self.graph,
            batch: BatchUpdate::new(),
        };
        f(&mut guard);
        let batch = guard.batch;
        self.refresh_after(batch)
    }

    /// Apply a pre-built batch update and refresh the ranks.
    pub fn apply_batch(&mut self, batch: BatchUpdate) -> &PagerankResult {
        self.graph
            .apply_batch(&batch)
            .expect("batch must be valid for the current graph");
        self.refresh_after(batch)
    }

    fn refresh_after(&mut self, batch: BatchUpdate) -> &PagerankResult {
        let prev = std::mem::replace(&mut self.snapshot, self.graph.snapshot());
        let res = api::run_dynamic(
            self.algorithm,
            &prev,
            &self.snapshot,
            &batch,
            &self.ranks,
            &self.opts,
        );
        self.ranks = res.ranks.clone();
        self.last_result = Some(res);
        self.last_result.as_ref().unwrap()
    }
}

/// Records mutations made during [`RankMaintainer::update`] as a batch.
pub struct MutGuard<'a> {
    graph: &'a mut DynGraph,
    batch: BatchUpdate,
}

impl MutGuard<'_> {
    /// Insert an edge (errors if present).
    pub fn insert_edge(&mut self, u: u32, v: u32) -> lfpr_graph::types::Result<()> {
        self.graph.insert_edge(u, v)?;
        self.batch.insertions.push((u, v));
        Ok(())
    }

    /// Delete an edge (errors if absent).
    pub fn delete_edge(&mut self, u: u32, v: u32) -> lfpr_graph::types::Result<()> {
        self.graph.delete_edge(u, v)?;
        self.batch.deletions.push((u, v));
        Ok(())
    }

    /// Bulk-insert edges, skipping ones already present.
    pub fn insert_edges<I: IntoIterator<Item = Edge>>(&mut self, it: I) {
        for (u, v) in it {
            let _ = self.insert_edge(u, v);
        }
    }

    /// Read access to the graph mid-update.
    pub fn graph(&self) -> &DynGraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_graph::selfloops::add_self_loops;

    fn maintainer(algo: Algorithm) -> RankMaintainer {
        let mut g = lfpr_graph::generators::erdos_renyi(100, 600, 5);
        add_self_loops(&mut g);
        let opts = PagerankOptions::default()
            .with_threads(2)
            .with_chunk_size(16);
        RankMaintainer::new(g, algo, opts)
    }

    #[test]
    fn initial_ranks_sum_to_one() {
        let rm = maintainer(Algorithm::DfLF);
        let sum: f64 = rm.ranks().iter().sum();
        assert!((sum - 1.0).abs() < 1e-7, "sum = {sum}");
    }

    #[test]
    fn update_records_batch_and_refreshes() {
        let mut rm = maintainer(Algorithm::DfLF);
        let r0 = rm.rank(1);
        let res = rm.update(|g| {
            // Point several vertices at vertex 1.
            g.insert_edges([(10, 1), (20, 1), (30, 1), (40, 1)]);
        });
        assert!(res.status.is_success());
        assert!(rm.rank(1) > r0, "vertex 1 gained in-links, rank must rise");
    }

    #[test]
    fn top_k_sorted_descending() {
        let rm = maintainer(Algorithm::NdLF);
        let top = rm.top_k(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn works_with_every_algorithm() {
        for algo in Algorithm::ALL {
            let mut rm = maintainer(algo);
            let res = rm.update(|g| {
                g.insert_edges([(3, 7)]);
            });
            assert!(res.status.is_success(), "{algo}");
        }
    }

    #[test]
    fn delete_then_reinsert_is_stable() {
        let mut rm = maintainer(Algorithm::DfLF);
        let before = rm.ranks().to_vec();
        rm.update(|g| {
            g.delete_edge(0, 0).ok();
        });
        rm.update(|g| {
            g.insert_edge(0, 0).ok();
        });
        let after = rm.ranks();
        let max_diff = before
            .iter()
            .zip(after)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-6, "stability violated: {max_diff}");
    }
}
