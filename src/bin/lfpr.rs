//! `lfpr` — command-line PageRank over edge-list / MatrixMarket graphs.
//!
//! ```text
//! lfpr rank   <graph> [--algo staticlf] [--threads N] [--top K] [--tolerance T]
//! lfpr update <graph> <batch-edge-list> [--algo dflf] [--threads N] [--top K]
//! lfpr stats  <graph>
//! lfpr serve  [--graph path | --gen n m seed] [--algo dflf] [--threads N]
//!             [--tolerance T] [--tauf T] [--tcp addr:port] [--workers N]
//! ```
//!
//! `serve` runs the streaming batch service: an incremental
//! `UpdateSession` driven by the line protocol documented in
//! [`lockfree_pagerank::serve`] over stdin/stdout (default) or a TCP
//! socket. TCP mode serves many clients concurrently
//! ([`lockfree_pagerank::server`]): `--workers` connection handlers
//! answer reads from the epoch-published rank view while one writer
//! thread commits batches. Protocol replies go to stdout (stdin mode)
//! or the socket; logs and per-batch timing go to stderr, so scripted
//! sessions are diffable.
//!
//! `<graph>` is a SNAP-style edge list (`u v` per line, `#` comments) or
//! a MatrixMarket `.mtx` file, chosen by extension unless `--format
//! <snap|mtx>` overrides it; files load through the streaming ingestion
//! subsystem (mmap + parallel chunk parse). `update` treats the second
//! file's edges as an insert-only batch (edges already present are
//! ignored), computes the base ranks, applies the batch, and refreshes
//! incrementally.

use lockfree_pagerank::core::reference::reference_default;
use lockfree_pagerank::graph::io::{read_edge_list, stream};
use lockfree_pagerank::graph::selfloops::add_self_loops;
use lockfree_pagerank::graph::{DynGraph, GraphFormat};
use lockfree_pagerank::{api, Algorithm, BatchUpdate, PagerankOptions};

fn load_graph(path: &str, format: Option<GraphFormat>) -> DynGraph {
    let format = format.unwrap_or_else(|| GraphFormat::detect(path));
    let mut g = stream::load_graph(path, format).unwrap_or_else(|e| {
        eprintln!("error loading {path}: {e}");
        std::process::exit(1);
    });
    add_self_loops(&mut g);
    g
}

struct Flags {
    algo: Algorithm,
    threads: usize,
    top: usize,
    tolerance: f64,
    format: Option<GraphFormat>,
}

fn parse_flags(args: &[String], default_algo: Algorithm) -> Flags {
    let mut f = Flags {
        algo: default_algo,
        threads: lockfree_pagerank::sched::executor::default_threads().max(4),
        top: 10,
        tolerance: 1e-10,
        format: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--algo" => {
                f.algo = args[i + 1].parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--format" => {
                f.format = Some(args[i + 1].parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--threads" => {
                f.threads = args[i + 1].parse().expect("--threads N");
                i += 2;
            }
            "--top" => {
                f.top = args[i + 1].parse().expect("--top K");
                i += 2;
            }
            "--tolerance" => {
                f.tolerance = args[i + 1].parse().expect("--tolerance T");
                i += 2;
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    f
}

fn print_top(ranks: &[f64], k: usize) {
    let mut idx: Vec<usize> = (0..ranks.len()).collect();
    idx.sort_by(|&a, &b| ranks[b].partial_cmp(&ranks[a]).unwrap());
    println!("{:<10} {:>14}", "vertex", "rank");
    for &v in idx.iter().take(k) {
        println!("{:<10} {:>14.6e}", v, ranks[v]);
    }
}

fn serve_main(args: &[String]) {
    use lockfree_pagerank::sched::{ChunkPolicy, ExecMode, Schedule};
    use lockfree_pagerank::serve::serve_connection;
    use lockfree_pagerank::UpdateSession;

    let mut algo = Algorithm::DfLF;
    let mut threads = 1usize;
    let mut tolerance = 1e-10f64;
    let mut tauf: Option<f64> = None;
    let mut format: Option<GraphFormat> = None;
    let mut graph_path: Option<String> = None;
    let mut gen: Option<(usize, usize, u64)> = None;
    let mut tcp: Option<String> = None;
    let mut workers = 4usize;
    let mut i = 0;
    let bad = |msg: &str| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    // Missing values exit with a usage message, not an index panic.
    let value = |i: usize, usage: &str| -> &String {
        args.get(i)
            .unwrap_or_else(|| bad(&format!("usage: {usage}")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--algo" => {
                algo = value(i + 1, "--algo <name>")
                    .parse()
                    .unwrap_or_else(|e: String| bad(&e));
                i += 2;
            }
            "--threads" => {
                threads = value(i + 1, "--threads <n>")
                    .parse()
                    .unwrap_or_else(|_| bad("usage: --threads <n>"));
                i += 2;
            }
            "--tolerance" => {
                tolerance = value(i + 1, "--tolerance <t>")
                    .parse()
                    .unwrap_or_else(|_| bad("usage: --tolerance <t>"));
                i += 2;
            }
            "--tauf" => {
                tauf = Some(
                    value(i + 1, "--tauf <t>")
                        .parse()
                        .unwrap_or_else(|_| bad("usage: --tauf <t>")),
                );
                i += 2;
            }
            "--format" => {
                format = Some(
                    value(i + 1, "--format <snap|mtx>")
                        .parse()
                        .unwrap_or_else(|e: String| bad(&e)),
                );
                i += 2;
            }
            "--graph" => {
                graph_path = Some(value(i + 1, "--graph <path>").clone());
                i += 2;
            }
            "--gen" => {
                let usage = "--gen <n> <m> <seed>";
                gen = Some((
                    value(i + 1, usage).parse().unwrap_or_else(|_| bad(usage)),
                    value(i + 2, usage).parse().unwrap_or_else(|_| bad(usage)),
                    value(i + 3, usage).parse().unwrap_or_else(|_| bad(usage)),
                ));
                i += 4;
            }
            "--tcp" => {
                tcp = Some(value(i + 1, "--tcp <addr:port>").clone());
                i += 2;
            }
            "--workers" => {
                workers = value(i + 1, "--workers <n>")
                    .parse()
                    .unwrap_or_else(|_| bad("usage: --workers <n>"));
                i += 2;
            }
            other => bad(&format!("unknown flag: {other}")),
        }
    }
    let g = match (&graph_path, gen) {
        (Some(path), None) => load_graph(path, format),
        (None, Some((n, m, seed))) => {
            let mut g = lockfree_pagerank::graph::generators::erdos_renyi(n, m, seed);
            add_self_loops(&mut g);
            g
        }
        _ => bad("serve needs exactly one of --graph <path> or --gen <n> <m> <seed>"),
    };
    // The persistent worker pool is the right executor for a process
    // that runs many updates (PR 2); stays deterministic at 1 thread.
    // τf defaults to τ, not the paper's τ/1000: each batch warm-starts
    // from the previous τ-converged output, whose residuals would flood
    // the frontier at τ/1000 (see update_bench); τf = τ bounds the
    // affected ball by genuine rank movement. `--tauf` overrides.
    let opts = PagerankOptions::default()
        .with_threads(threads)
        .with_tolerance(tolerance)
        .with_frontier_tolerance(tauf.unwrap_or(tolerance))
        .with_schedule(Schedule {
            policy: ChunkPolicy::Fixed(2048),
            executor: ExecMode::Pool,
        });
    eprintln!(
        "# serving {} vertices / {} edges with {} on {} thread(s)",
        g.num_vertices(),
        g.num_edges(),
        algo,
        threads
    );
    let mut session = UpdateSession::new(g, algo, opts);
    // `movers` and subscriptions need per-batch deltas.
    session.enable_delta_tracking();
    match tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let summary = serve_connection(&mut session, stdin.lock(), stdout.lock())
                .unwrap_or_else(|e| bad(&format!("serve failed: {e}")));
            eprintln!(
                "# session ended: {} commands, {} batches, {} edge updates, {} steps",
                summary.commands,
                summary.batches,
                summary.updates,
                session.steps()
            );
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .unwrap_or_else(|e| bad(&format!("cannot bind {addr}: {e}")));
            let server = lockfree_pagerank::server::spawn(session, listener, workers)
                .unwrap_or_else(|e| bad(&format!("cannot start server: {e}")));
            eprintln!(
                "# listening on {} ({} workers, single-writer commits, epoch-published reads)",
                server.addr(),
                workers
            );
            server.wait();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 2 && args[1] == "serve" {
        serve_main(&args[2..]);
        return;
    }
    if args.len() < 3 {
        eprintln!("usage: lfpr <rank|update|stats|serve> <graph> [batch] [flags]");
        std::process::exit(2);
    }
    match args[1].as_str() {
        "stats" => {
            let flags = parse_flags(&args[3..], Algorithm::StaticLF);
            let g = load_graph(&args[2], flags.format);
            let st = lockfree_pagerank::graph::analysis::stats(&g.snapshot());
            println!("{st:#?}");
        }
        "rank" => {
            let flags = parse_flags(&args[3..], Algorithm::StaticLF);
            let g = load_graph(&args[2], flags.format);
            let s = g.snapshot();
            let opts = PagerankOptions::default()
                .with_threads(flags.threads)
                .with_tolerance(flags.tolerance);
            // From-scratch ranking has no previous state, so a dynamic
            // variant degenerates to its static counterpart (same rule
            // as RankMaintainer::new).
            let algo = match flags.algo {
                a @ (Algorithm::StaticBB | Algorithm::StaticLF) => a,
                a if a.is_lock_free() => {
                    eprintln!("# {a} needs previous ranks; running StaticLF");
                    Algorithm::StaticLF
                }
                a => {
                    eprintln!("# {a} needs previous ranks; running StaticBB");
                    Algorithm::StaticBB
                }
            };
            let t0 = std::time::Instant::now();
            let res = api::run_static(algo, &s, &opts);
            println!(
                "# {} on {} vertices / {} edges: {:?} in {:?} ({} iterations)",
                algo,
                s.num_vertices(),
                s.num_edges(),
                res.status,
                t0.elapsed(),
                res.iterations
            );
            print_top(&res.ranks, flags.top);
        }
        "update" => {
            if args.len() < 4 {
                eprintln!("usage: lfpr update <graph> <batch-edge-list> [flags]");
                std::process::exit(2);
            }
            let flags = parse_flags(&args[4..], Algorithm::DfLF);
            let mut g = load_graph(&args[2], flags.format);
            let prev = g.snapshot();
            let prev_ranks = reference_default(&prev);
            let additions = read_edge_list(&args[3]).unwrap_or_else(|e| {
                eprintln!("error loading batch: {e}");
                std::process::exit(1);
            });
            let mut batch = BatchUpdate::new();
            for (u, v) in additions.edges() {
                if (u as usize) < g.num_vertices()
                    && (v as usize) < g.num_vertices()
                    && g.insert_edge_if_absent(u, v).unwrap_or(false)
                {
                    batch.insertions.push((u, v));
                }
            }
            let curr = g.snapshot();
            let opts = PagerankOptions::default()
                .with_threads(flags.threads)
                .with_tolerance(flags.tolerance);
            let t0 = std::time::Instant::now();
            let res = api::run_dynamic(flags.algo, &prev, &curr, &batch, &prev_ranks, &opts);
            println!(
                "# {} applied {} insertions: {:?} in {:?} ({} iterations, {} vertices touched)",
                flags.algo,
                batch.len(),
                res.status,
                t0.elapsed(),
                res.iterations,
                res.vertices_processed
            );
            print_top(&res.ranks, flags.top);
        }
        other => {
            eprintln!("unknown command: {other}");
            std::process::exit(2);
        }
    }
}
