//! `lfpr` — command-line PageRank over edge-list / MatrixMarket graphs.
//!
//! ```text
//! lfpr rank   <graph> [--algo staticlf] [--threads N] [--top K] [--tolerance T]
//! lfpr update <graph> <batch-edge-list> [--algo dflf] [--threads N] [--top K]
//! lfpr stats  <graph>
//! lfpr serve  [--graph path | --gen n m seed] [--algo dflf] [--threads N]
//!             [--tolerance T] [--tauf T] [--tcp addr:port] [--workers N]
//!             [--wal dir] [--fsync always|every-k|never] [--checkpoint-every N]
//!             [--recover] [--crash-after N] [--layout packed|gapped]
//!             [--reorder none|degree|bfs] [--shards N]
//! lfpr follow <leader-addr> [--tcp addr:port] [--threads N]
//!             [--max-attempts N] [--sync-timeout secs]
//! ```
//!
//! `serve` runs the streaming batch service: an incremental
//! `UpdateSession` driven by the line protocol documented in
//! [`lockfree_pagerank::serve`] over stdin/stdout (default) or a TCP
//! socket. TCP mode serves many clients concurrently
//! ([`lockfree_pagerank::server`]): `--workers` connection handlers
//! answer reads from the epoch-published rank view while one writer
//! thread commits batches. Protocol replies go to stdout (stdin mode)
//! or the socket; logs and per-batch timing go to stderr, so scripted
//! sessions are diffable.
//!
//! `--wal <dir>` makes the service durable ([`lockfree_pagerank::durable`]):
//! every committed batch and view change is appended to a write-ahead
//! log before it is acknowledged, and a checkpoint truncates the log
//! every `--checkpoint-every` commits. `--recover` restores the session
//! from that directory (checkpoint + intact WAL tail) instead of
//! loading a graph. `--crash-after N` is the fault-injection hook used
//! by the CI recovery smoke: the process aborts right after the N-th
//! commit hits the log. `follow` mirrors a `--tcp` leader over the
//! replica feed and serves the mirrored ranks read-only.
//!
//! `--shards N` (N ≥ 2) serves the sharded tier
//! ([`lockfree_pagerank::shard`]): vertices are block-partitioned
//! across N independent session shards, each with its own writer
//! thread, epoch counter, and (with `--wal`) its own log under
//! `dir/shard-NN/`; commits scatter into per-shard sub-batches and
//! replies carry per-shard epoch vectors (`epochs=a,b,…`). `--shards 1`
//! (the default) is the ordinary single-session server and keeps the
//! v1 wire format byte-for-byte.
//!
//! `<graph>` is a SNAP-style edge list (`u v` per line, `#` comments) or
//! a MatrixMarket `.mtx` file, chosen by extension unless `--format
//! <snap|mtx>` overrides it; files load through the streaming ingestion
//! subsystem (mmap + parallel chunk parse). `update` treats the second
//! file's edges as an insert-only batch (edges already present are
//! ignored), computes the base ranks, applies the batch, and refreshes
//! incrementally.

use lockfree_pagerank::core::reference::reference_default;
use lockfree_pagerank::graph::io::{read_edge_list, stream};
use lockfree_pagerank::graph::selfloops::add_self_loops;
use lockfree_pagerank::graph::{DynGraph, GraphFormat};
use lockfree_pagerank::{api, Algorithm, BatchUpdate, PagerankOptions};

fn load_graph(path: &str, format: Option<GraphFormat>) -> DynGraph {
    let format = format.unwrap_or_else(|| GraphFormat::detect(path));
    let mut g = stream::load_graph(path, format).unwrap_or_else(|e| {
        eprintln!("error loading {path}: {e}");
        std::process::exit(1);
    });
    add_self_loops(&mut g);
    g
}

struct Flags {
    algo: Algorithm,
    threads: usize,
    top: usize,
    tolerance: f64,
    format: Option<GraphFormat>,
}

fn parse_flags(args: &[String], default_algo: Algorithm) -> Flags {
    let mut f = Flags {
        algo: default_algo,
        threads: lockfree_pagerank::sched::executor::default_threads().max(4),
        top: 10,
        tolerance: 1e-10,
        format: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--algo" => {
                f.algo = args[i + 1].parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--format" => {
                f.format = Some(args[i + 1].parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--threads" => {
                f.threads = args[i + 1].parse().expect("--threads N");
                i += 2;
            }
            "--top" => {
                f.top = args[i + 1].parse().expect("--top K");
                i += 2;
            }
            "--tolerance" => {
                f.tolerance = args[i + 1].parse().expect("--tolerance T");
                i += 2;
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    f
}

fn print_top(ranks: &[f64], k: usize) {
    let mut idx: Vec<usize> = (0..ranks.len()).collect();
    idx.sort_by(|&a, &b| ranks[b].partial_cmp(&ranks[a]).unwrap());
    println!("{:<10} {:>14}", "vertex", "rank");
    for &v in idx.iter().take(k) {
        println!("{:<10} {:>14.6e}", v, ranks[v]);
    }
}

fn serve_main(args: &[String]) {
    use lockfree_pagerank::durable::Durability;
    use lockfree_pagerank::serve::{
        serve_connection_durable_reordered, serve_connection_reordered,
    };
    use lockfree_pagerank::{GraphSource, Reordering, ServeConfig, UpdateSession};
    use std::sync::Arc;

    let bad = |msg: &str| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    // One typed config carries the whole flag set; every flag
    // interaction (recover×reorder, recover×shards, …) is checked by
    // ServeConfig::validate in one place, not scattered through the
    // argument loop.
    let cfg = ServeConfig::from_args(args).unwrap_or_else(|e| bad(&e));
    let opts = cfg.pagerank_options();
    let dopts = cfg.durability_options();
    if cfg.shards > 1 {
        return serve_sharded(&cfg, opts);
    }
    let (mut session, durable, reorder) = match &cfg.source {
        GraphSource::Recovered => {
            let dir = cfg.wal_dir.as_deref().expect("validate: recover needs wal");
            // The algorithm and graph come from the checkpoint; --algo is
            // only the default for a fresh start. The vertex permutation
            // (if the original session was reordered) rides along too.
            match Durability::recover(dir, opts, dopts) {
                Ok((mut session, durable, report)) => {
                    eprintln!("# {report}");
                    session.set_storage_layout(cfg.layout);
                    let reorder = durable.reordering().clone();
                    (session, Some(durable), reorder)
                }
                // Stable text — the CI smoke greps for this prefix.
                Err(e) => bad(&format!("recover failed: {e}")),
            }
        }
        _ => {
            let g = load_source(&cfg.source);
            // Renumber for batch locality before the session computes its
            // initial ranks; the serve boundary keeps speaking external ids.
            let reorder = Reordering::compute(cfg.reorder, &g).map(Arc::new);
            let g = match &reorder {
                Some(r) => r.apply(&g),
                None => g,
            };
            let mut session = UpdateSession::new_with_layout(g, cfg.algo, opts, cfg.layout);
            // `movers` and subscriptions need per-batch deltas.
            session.enable_delta_tracking();
            let durable = cfg.wal_dir.as_deref().map(|dir| {
                Durability::create_reordered(dir, &mut session, dopts, reorder.clone())
                    .unwrap_or_else(|e| bad(&format!("cannot start wal: {e}")))
            });
            (session, durable, reorder)
        }
    };
    eprintln!(
        "# serving {} vertices / {} edges with {} on {} thread(s), {} layout{}{}",
        session.graph().num_vertices(),
        session.graph().num_edges(),
        session.algorithm(),
        cfg.threads,
        session.storage_layout(),
        match &reorder {
            Some(_) => " (reordered)",
            None => "",
        },
        match &durable {
            Some(d) => format!(" (wal: {})", d.dir().display()),
            None => String::new(),
        }
    );
    match &cfg.tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let summary = match durable {
                Some(mut d) => serve_connection_durable_reordered(
                    &mut session,
                    &mut d,
                    &reorder,
                    stdin.lock(),
                    stdout.lock(),
                ),
                None => {
                    serve_connection_reordered(&mut session, &reorder, stdin.lock(), stdout.lock())
                }
            }
            .unwrap_or_else(|e| bad(&format!("serve failed: {e}")));
            eprintln!(
                "# session ended: {} commands, {} batches, {} edge updates, {} steps",
                summary.commands,
                summary.batches,
                summary.updates,
                session.steps()
            );
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .unwrap_or_else(|e| bad(&format!("cannot bind {addr}: {e}")));
            let server = lockfree_pagerank::server::spawn_with(
                session,
                listener,
                lockfree_pagerank::server::ServerOptions {
                    workers: cfg.workers,
                    durable,
                    reorder,
                    coalesce: cfg.coalesce,
                },
            )
            .unwrap_or_else(|e| bad(&format!("cannot start server: {e}")));
            eprintln!(
                "# listening on {} ({} event loops, single-writer {} commits, epoch-published reads)",
                server.addr(),
                cfg.workers,
                if cfg.coalesce { "coalesced" } else { "sequential" }
            );
            server.wait();
        }
    }
}

/// Materialize a non-`Recovered` graph source.
fn load_source(source: &lockfree_pagerank::GraphSource) -> DynGraph {
    use lockfree_pagerank::GraphSource;
    match source {
        GraphSource::File { path, format } => load_graph(path, *format),
        GraphSource::Generated { n, m, seed } => {
            let mut g = lockfree_pagerank::graph::generators::erdos_renyi(*n, *m, *seed);
            add_self_loops(&mut g);
            g
        }
        GraphSource::Recovered => unreachable!("recover is handled before loading"),
    }
}

/// `lfpr serve --shards N` (N ≥ 2): the sharded serving tier. The
/// vertex partition is computed jointly with the load-time reordering,
/// then a [`lockfree_pagerank::shard::ShardRouter`] runs one session +
/// writer thread per shard; clients speak the v2 handshake and see
/// per-shard epoch vectors.
fn serve_sharded(cfg: &lockfree_pagerank::ServeConfig, opts: PagerankOptions) {
    use lockfree_pagerank::graph::Partition;
    use lockfree_pagerank::shard::{serve_shard_client_reordered, ShardRouter, ShardSpec};
    use std::sync::Arc;

    let bad = |msg: &str| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let g = load_source(&cfg.source);
    let (reorder, part) =
        Partition::compute_joint(cfg.reorder, cfg.shards, &g).unwrap_or_else(|e| bad(&e));
    let reorder = reorder.map(Arc::new);
    let g = match &reorder {
        Some(r) => r.apply(&g),
        None => g,
    };
    let spec = ShardSpec {
        wal_dir: cfg.wal_dir.clone(),
        durability: cfg.durability_options(),
        ..ShardSpec::new(cfg.shards)
    };
    let durable = spec.wal_dir.is_some();
    let router =
        ShardRouter::with_partition(g, part, cfg.algo, opts, spec).unwrap_or_else(|e| bad(&e));
    eprintln!(
        "# serving {} vertices / {} edges with {} on {} shard(s) ({} partition){}{}",
        router.num_vertices(),
        router.pin().num_edges(),
        router.algorithm(),
        router.shards(),
        router.partition().strategy(),
        match &reorder {
            Some(_) => " (reordered)",
            None => "",
        },
        match &cfg.wal_dir {
            Some(d) if durable => format!(" (wal: {})", d.display()),
            _ => String::new(),
        }
    );
    match &cfg.tcp {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let summary =
                serve_shard_client_reordered(&router, &reorder, stdin.lock(), stdout.lock())
                    .unwrap_or_else(|e| bad(&format!("serve failed: {e}")));
            let steps: u64 = router.pin().epochs().iter().sum();
            eprintln!(
                "# session ended: {} commands, {} batches, {} edge updates, {} steps",
                summary.commands, summary.batches, summary.updates, steps
            );
            router.shutdown();
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .unwrap_or_else(|e| bad(&format!("cannot bind {addr}: {e}")));
            let server = lockfree_pagerank::server::spawn_sharded(router, reorder, listener)
                .unwrap_or_else(|e| bad(&format!("cannot start server: {e}")));
            eprintln!(
                "# listening on {} ({} shards, scatter/gather commits, epoch-published reads)",
                server.addr(),
                cfg.shards,
            );
            server.wait();
        }
    }
}

/// `lfpr follow <leader>`: mirror a `--tcp` leader over the replica
/// feed and serve the mirrored ranks read-only — over TCP when `--tcp`
/// is given, over stdin/stdout otherwise. The follower reconnects with
/// exponential backoff when the leader drops and resyncs automatically
/// when it falls behind the leader's log.
fn follow_main(args: &[String]) {
    use lockfree_pagerank::replica::{Follower, FollowerOptions};
    use lockfree_pagerank::serve::{serve_client_reordered, Backend};
    use std::io::{BufReader, BufWriter};

    let bad = |msg: &str| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let value = |i: usize, usage: &str| -> &String {
        args.get(i)
            .unwrap_or_else(|| bad(&format!("usage: {usage}")))
    };
    let mut leader: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut threads = 1usize;
    let mut max_attempts = 30u32;
    let mut sync_timeout = 60u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tcp" => {
                tcp = Some(value(i + 1, "--tcp <addr:port>").clone());
                i += 2;
            }
            "--threads" => {
                threads = value(i + 1, "--threads <n>")
                    .parse()
                    .unwrap_or_else(|_| bad("usage: --threads <n>"));
                i += 2;
            }
            "--max-attempts" => {
                max_attempts = value(i + 1, "--max-attempts <n>")
                    .parse()
                    .unwrap_or_else(|_| bad("usage: --max-attempts <n>"));
                i += 2;
            }
            "--sync-timeout" => {
                sync_timeout = value(i + 1, "--sync-timeout <secs>")
                    .parse()
                    .unwrap_or_else(|_| bad("usage: --sync-timeout <secs>"));
                i += 2;
            }
            other if leader.is_none() && !other.starts_with('-') => {
                leader = Some(other.to_string());
                i += 1;
            }
            other => bad(&format!("unknown flag: {other}")),
        }
    }
    let leader = leader.unwrap_or_else(|| bad("usage: lfpr follow <leader-addr> [flags]"));
    let mut fopts = FollowerOptions::new(&leader);
    fopts.runtime = fopts.runtime.with_threads(threads);
    fopts.max_attempts = max_attempts;
    let follower = Follower::spawn(fopts);
    // The leader might still be coming up (the CI smoke starts both at
    // once): the follower retries with backoff; we wait here for the
    // first full sync before serving anything.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(sync_timeout);
    while follower.reader().is_none() {
        if std::time::Instant::now() > deadline {
            eprintln!("follow failed: no sync from {leader} within {sync_timeout}s");
            std::process::exit(1);
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("# following {leader} from epoch {}", follower.epoch());
    match tcp {
        None => {
            let (reader, algorithm, reorder) = follower.reader().expect("reader after sync");
            let mut backend = Backend::Replica { reader, algorithm };
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let summary =
                serve_client_reordered(&mut backend, &reorder, stdin.lock(), stdout.lock())
                    .unwrap_or_else(|e| bad(&format!("serve failed: {e}")));
            eprintln!(
                "# replica session ended: {} commands at epoch {}",
                summary.commands,
                follower.epoch()
            );
            match follower.stop() {
                Ok(stats) => eprintln!(
                    "# follower stopped: {} resyncs, {} deltas applied, {} reconnects",
                    stats.resyncs, stats.deltas_applied, stats.reconnects
                ),
                Err(e) => eprintln!("# follower failed: {e}"),
            }
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .unwrap_or_else(|e| bad(&format!("cannot bind {addr}: {e}")));
            eprintln!(
                "# replica listening on {} (read-only)",
                listener.local_addr().map(|a| a.to_string()).unwrap_or(addr)
            );
            loop {
                let (conn, peer) = match listener.accept() {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("# accept error: {e}");
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        continue;
                    }
                };
                // Re-fetch per connection: a resync after a leader
                // restart swaps in a fresh reader.
                let Some((reader, algorithm, reorder)) = follower.reader() else {
                    continue;
                };
                std::thread::spawn(move || {
                    eprintln!("# replica connection from {peer}");
                    let input = BufReader::new(conn.try_clone().expect("clone socket"));
                    let output = BufWriter::new(conn);
                    let mut backend = Backend::Replica { reader, algorithm };
                    match serve_client_reordered(&mut backend, &reorder, input, output) {
                        Ok(s) => eprintln!("# replica connection closed: {} commands", s.commands),
                        Err(e) => eprintln!("# replica client dropped: {e}"),
                    }
                });
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 2 && args[1] == "serve" {
        serve_main(&args[2..]);
        return;
    }
    if args.len() >= 2 && args[1] == "follow" {
        follow_main(&args[2..]);
        return;
    }
    if args.len() < 3 {
        eprintln!("usage: lfpr <rank|update|stats|serve|follow> <graph> [batch] [flags]");
        std::process::exit(2);
    }
    match args[1].as_str() {
        "stats" => {
            let flags = parse_flags(&args[3..], Algorithm::StaticLF);
            let g = load_graph(&args[2], flags.format);
            let st = lockfree_pagerank::graph::analysis::stats(&g.snapshot());
            println!("{st:#?}");
        }
        "rank" => {
            let flags = parse_flags(&args[3..], Algorithm::StaticLF);
            let g = load_graph(&args[2], flags.format);
            let s = g.snapshot();
            let opts = PagerankOptions::default()
                .with_threads(flags.threads)
                .with_tolerance(flags.tolerance);
            // From-scratch ranking has no previous state, so a dynamic
            // variant degenerates to its static counterpart (same rule
            // as RankMaintainer::new).
            let algo = match flags.algo {
                a @ (Algorithm::StaticBB | Algorithm::StaticLF) => a,
                a if a.is_lock_free() => {
                    eprintln!("# {a} needs previous ranks; running StaticLF");
                    Algorithm::StaticLF
                }
                a => {
                    eprintln!("# {a} needs previous ranks; running StaticBB");
                    Algorithm::StaticBB
                }
            };
            let t0 = std::time::Instant::now();
            let res = api::run_static(algo, &s, &opts);
            println!(
                "# {} on {} vertices / {} edges: {:?} in {:?} ({} iterations)",
                algo,
                s.num_vertices(),
                s.num_edges(),
                res.status,
                t0.elapsed(),
                res.iterations
            );
            print_top(&res.ranks, flags.top);
        }
        "update" => {
            if args.len() < 4 {
                eprintln!("usage: lfpr update <graph> <batch-edge-list> [flags]");
                std::process::exit(2);
            }
            let flags = parse_flags(&args[4..], Algorithm::DfLF);
            let mut g = load_graph(&args[2], flags.format);
            let prev = g.snapshot();
            let prev_ranks = reference_default(&prev);
            let additions = read_edge_list(&args[3]).unwrap_or_else(|e| {
                eprintln!("error loading batch: {e}");
                std::process::exit(1);
            });
            let mut batch = BatchUpdate::new();
            for (u, v) in additions.edges() {
                if (u as usize) < g.num_vertices()
                    && (v as usize) < g.num_vertices()
                    && g.insert_edge_if_absent(u, v).unwrap_or(false)
                {
                    batch.insertions.push((u, v));
                }
            }
            let curr = g.snapshot();
            let opts = PagerankOptions::default()
                .with_threads(flags.threads)
                .with_tolerance(flags.tolerance);
            let t0 = std::time::Instant::now();
            let res = api::run_dynamic(flags.algo, &prev, &curr, &batch, &prev_ranks, &opts);
            println!(
                "# {} applied {} insertions: {:?} in {:?} ({} iterations, {} vertices touched)",
                flags.algo,
                batch.len(),
                res.status,
                t0.elapsed(),
                res.iterations,
                res.vertices_processed
            );
            print_top(&res.ranks, flags.top);
        }
        other => {
            eprintln!("unknown command: {other}");
            std::process::exit(2);
        }
    }
}
