//! `lfpr` — command-line PageRank over edge-list / MatrixMarket graphs.
//!
//! ```text
//! lfpr rank   <graph> [--algo staticlf] [--threads N] [--top K] [--tolerance T]
//! lfpr update <graph> <batch-edge-list> [--algo dflf] [--threads N] [--top K]
//! lfpr stats  <graph>
//! ```
//!
//! `<graph>` is a SNAP-style edge list (`u v` per line, `#` comments) or
//! a MatrixMarket `.mtx` file, chosen by extension unless `--format
//! <snap|mtx>` overrides it; files load through the streaming ingestion
//! subsystem (mmap + parallel chunk parse). `update` treats the second
//! file's edges as an insert-only batch (edges already present are
//! ignored), computes the base ranks, applies the batch, and refreshes
//! incrementally.

use lockfree_pagerank::core::reference::reference_default;
use lockfree_pagerank::graph::io::{read_edge_list, stream};
use lockfree_pagerank::graph::selfloops::add_self_loops;
use lockfree_pagerank::graph::{DynGraph, GraphFormat};
use lockfree_pagerank::{api, Algorithm, BatchUpdate, PagerankOptions};

fn load_graph(path: &str, format: Option<GraphFormat>) -> DynGraph {
    let format = format.unwrap_or_else(|| GraphFormat::detect(path));
    let mut g = stream::load_graph(path, format).unwrap_or_else(|e| {
        eprintln!("error loading {path}: {e}");
        std::process::exit(1);
    });
    add_self_loops(&mut g);
    g
}

struct Flags {
    algo: Algorithm,
    threads: usize,
    top: usize,
    tolerance: f64,
    format: Option<GraphFormat>,
}

fn parse_flags(args: &[String], default_algo: Algorithm) -> Flags {
    let mut f = Flags {
        algo: default_algo,
        threads: lockfree_pagerank::sched::executor::default_threads().max(4),
        top: 10,
        tolerance: 1e-10,
        format: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--algo" => {
                f.algo = args[i + 1].parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--format" => {
                f.format = Some(args[i + 1].parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--threads" => {
                f.threads = args[i + 1].parse().expect("--threads N");
                i += 2;
            }
            "--top" => {
                f.top = args[i + 1].parse().expect("--top K");
                i += 2;
            }
            "--tolerance" => {
                f.tolerance = args[i + 1].parse().expect("--tolerance T");
                i += 2;
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    f
}

fn print_top(ranks: &[f64], k: usize) {
    let mut idx: Vec<usize> = (0..ranks.len()).collect();
    idx.sort_by(|&a, &b| ranks[b].partial_cmp(&ranks[a]).unwrap());
    println!("{:<10} {:>14}", "vertex", "rank");
    for &v in idx.iter().take(k) {
        println!("{:<10} {:>14.6e}", v, ranks[v]);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: lfpr <rank|update|stats> <graph> [batch] [flags]");
        std::process::exit(2);
    }
    match args[1].as_str() {
        "stats" => {
            let flags = parse_flags(&args[3..], Algorithm::StaticLF);
            let g = load_graph(&args[2], flags.format);
            let st = lockfree_pagerank::graph::analysis::stats(&g.snapshot());
            println!("{st:#?}");
        }
        "rank" => {
            let flags = parse_flags(&args[3..], Algorithm::StaticLF);
            let g = load_graph(&args[2], flags.format);
            let s = g.snapshot();
            let opts = PagerankOptions::default()
                .with_threads(flags.threads)
                .with_tolerance(flags.tolerance);
            // From-scratch ranking has no previous state, so a dynamic
            // variant degenerates to its static counterpart (same rule
            // as RankMaintainer::new).
            let algo = match flags.algo {
                a @ (Algorithm::StaticBB | Algorithm::StaticLF) => a,
                a if a.is_lock_free() => {
                    eprintln!("# {a} needs previous ranks; running StaticLF");
                    Algorithm::StaticLF
                }
                a => {
                    eprintln!("# {a} needs previous ranks; running StaticBB");
                    Algorithm::StaticBB
                }
            };
            let t0 = std::time::Instant::now();
            let res = api::run_static(algo, &s, &opts);
            println!(
                "# {} on {} vertices / {} edges: {:?} in {:?} ({} iterations)",
                algo,
                s.num_vertices(),
                s.num_edges(),
                res.status,
                t0.elapsed(),
                res.iterations
            );
            print_top(&res.ranks, flags.top);
        }
        "update" => {
            if args.len() < 4 {
                eprintln!("usage: lfpr update <graph> <batch-edge-list> [flags]");
                std::process::exit(2);
            }
            let flags = parse_flags(&args[4..], Algorithm::DfLF);
            let mut g = load_graph(&args[2], flags.format);
            let prev = g.snapshot();
            let prev_ranks = reference_default(&prev);
            let additions = read_edge_list(&args[3]).unwrap_or_else(|e| {
                eprintln!("error loading batch: {e}");
                std::process::exit(1);
            });
            let mut batch = BatchUpdate::new();
            for (u, v) in additions.edges() {
                if (u as usize) < g.num_vertices()
                    && (v as usize) < g.num_vertices()
                    && g.insert_edge_if_absent(u, v).unwrap_or(false)
                {
                    batch.insertions.push((u, v));
                }
            }
            let curr = g.snapshot();
            let opts = PagerankOptions::default()
                .with_threads(flags.threads)
                .with_tolerance(flags.tolerance);
            let t0 = std::time::Instant::now();
            let res = api::run_dynamic(flags.algo, &prev, &curr, &batch, &prev_ranks, &opts);
            println!(
                "# {} applied {} insertions: {:?} in {:?} ({} iterations, {} vertices touched)",
                flags.algo,
                batch.len(),
                res.status,
                t0.elapsed(),
                res.iterations,
                res.vertices_processed
            );
            print_top(&res.ranks, flags.top);
        }
        other => {
            eprintln!("unknown command: {other}");
            std::process::exit(2);
        }
    }
}
