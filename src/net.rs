//! Readiness polling and cross-thread wakeups for the event-driven TCP
//! server core, declared directly against libc — no new crates, the same
//! pattern `crates/graph/src/io/mmap.rs` uses for `mmap(2)`.
//!
//! Three primitives:
//!
//! * [`Poller`] — a level-triggered readiness queue over raw fds. On
//!   Linux it is `epoll(7)` (one fd per idle connection, O(ready) wait);
//!   on other Unixes it degrades to `poll(2)` over a registration list
//!   (O(n) wait, same semantics); elsewhere every call errors with
//!   [`std::io::ErrorKind::Unsupported`] so the workspace still builds.
//! * [`Waker`] — an fd another thread can nudge to interrupt a
//!   [`Poller::wait`]. Linux uses `eventfd(2)` (one fd, counter
//!   semantics); other Unixes use a nonblocking pipe pair.
//! * [`raise_nofile_limit`] — best-effort `RLIMIT_NOFILE` soft-limit
//!   bump so connection sweeps (1024+ sockets, both ends in-process)
//!   don't trip the conservative default of 1024.
//!
//! Registration is keyed by caller-chosen `u64` tokens. The server layer
//! never reuses a token for a new connection, which makes stale events
//! for a recycled fd harmlessly unroutable instead of an ABA hazard.

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Reading will not block (includes EOF and pending errors).
    pub readable: bool,
    /// Writing will not block.
    pub writable: bool,
    /// Peer hung up or the fd errored; the owner should read to EOF /
    /// observe the error and drop the connection.
    pub hangup: bool,
}

/// Interest set for a registered fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

#[cfg(target_os = "linux")]
mod sys {
    //! `epoll(7)` + `eventfd(2)`, hand-declared.

    use std::io;
    use std::os::unix::io::RawFd;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    /// Kernel ABI struct for `epoll_ctl`/`epoll_wait`. On x86/x86-64 the
    /// kernel packs it (no padding between `events` and `data`); other
    /// architectures use natural alignment.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
    }

    pub fn create() -> io::Result<RawFd> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let arg = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        if unsafe { epoll_ctl(epfd, op, fd, arg) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn new_eventfd() -> io::Result<RawFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! `poll(2)` fallback for non-Linux Unixes: same level-triggered
    //! semantics over a registration list the [`super::Poller`] keeps.

    use std::io;
    use std::os::unix::io::RawFd;

    pub const POLLIN: i16 = 0x1;
    pub const POLLOUT: i16 = 0x4;
    pub const POLLERR: i16 = 0x8;
    pub const POLLHUP: i16 = 0x10;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
        fn pipe(fds: *mut RawFd) -> i32;
        fn fcntl(fd: RawFd, cmd: i32, arg: i32) -> i32;
    }

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0o4;

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// A nonblocking pipe pair `(read_end, write_end)`.
    pub fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
        let mut fds: [RawFd; 2] = [-1, -1];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for &fd in &fds {
            let flags = unsafe { fcntl(fd, F_GETFL, 0) };
            if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok((fds[0], fds[1]))
    }
}

#[cfg(unix)]
mod rlimit {
    use std::io;

    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: i32 = 8;

    /// Raise the soft fd limit toward `want` (capped at the hard limit).
    /// Returns the soft limit actually in effect afterwards.
    pub fn raise(want: u64) -> io::Result<u64> {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur >= want {
            return Ok(lim.cur);
        }
        let target = want.min(lim.max);
        let new = Rlimit {
            cur: target,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &new) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(target)
    }
}

/// Best-effort `RLIMIT_NOFILE` soft-limit raise toward `want`. Returns
/// the soft limit now in effect; on non-Unix (or if the syscalls fail)
/// it just reports `want` back and lets later socket calls surface any
/// real exhaustion.
pub fn raise_nofile_limit(want: u64) -> u64 {
    #[cfg(unix)]
    {
        rlimit::raise(want).unwrap_or(want)
    }
    #[cfg(not(unix))]
    {
        want
    }
}

// ---------------------------------------------------------------------
// Poller
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
pub use linux_poller::Poller;

#[cfg(target_os = "linux")]
mod linux_poller {
    use super::{sys, Event, Interest};
    use std::io;
    use std::os::unix::io::{FromRawFd, OwnedFd, RawFd};

    /// Level-triggered `epoll(7)` readiness queue.
    pub struct Poller {
        epfd: OwnedFd,
        buf: Vec<sys::EpollEvent>,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if interest.readable {
            m |= sys::EPOLLIN;
        }
        if interest.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let raw = sys::create()?;
            Ok(Poller {
                // SAFETY: `epoll_create1` returned a fresh fd we own.
                epfd: unsafe { OwnedFd::from_raw_fd(raw) },
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let epfd = std::os::unix::io::AsRawFd::as_raw_fd(&self.epfd);
            sys::ctl(epfd, sys::EPOLL_CTL_ADD, fd, mask(interest), token)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let epfd = std::os::unix::io::AsRawFd::as_raw_fd(&self.epfd);
            sys::ctl(epfd, sys::EPOLL_CTL_MOD, fd, mask(interest), token)
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            let epfd = std::os::unix::io::AsRawFd::as_raw_fd(&self.epfd);
            sys::ctl(epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Wait up to `timeout_ms` (`-1` = forever) and append ready
        /// events to `out`. Returns how many were appended.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let epfd = std::os::unix::io::AsRawFd::as_raw_fd(&self.epfd);
            let n = sys::wait(epfd, &mut self.buf, timeout_ms)?;
            for ev in &self.buf[..n] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR) != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup: bits & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0,
                });
            }
            Ok(n)
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
pub use poll_poller::Poller;

#[cfg(all(unix, not(target_os = "linux")))]
mod poll_poller {
    use super::{sys, Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;

    /// `poll(2)`-backed fallback: keeps the registration list itself and
    /// rebuilds the pollfd array per wait. O(n) per wait, which is fine
    /// for the fallback tier — Linux gets epoll.
    pub struct Poller {
        regs: Vec<(RawFd, u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller { regs: Vec::new() })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.regs.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.regs.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for reg in &mut self.regs {
                if reg.0 == fd {
                    reg.1 = token;
                    reg.2 = interest;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.regs.len();
            self.regs.retain(|&(f, _, _)| f != fd);
            if self.regs.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let mut fds: Vec<sys::PollFd> = self
                .regs
                .iter()
                .map(|&(fd, _, interest)| sys::PollFd {
                    fd,
                    events: if interest.readable { sys::POLLIN } else { 0 }
                        | if interest.writable { sys::POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            if fds.is_empty() {
                // Nothing registered; honor the timeout so callers
                // don't spin.
                if timeout_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
                }
                return Ok(0);
            }
            sys::poll_fds(&mut fds, timeout_ms)?;
            let mut appended = 0;
            for (pfd, &(_, token, _)) in fds.iter().zip(self.regs.iter()) {
                let r = pfd.revents;
                if r == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: r & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
                    writable: r & sys::POLLOUT != 0,
                    hangup: r & (sys::POLLHUP | sys::POLLERR) != 0,
                });
                appended += 1;
            }
            Ok(appended)
        }
    }
}

#[cfg(not(unix))]
pub use stub_poller::Poller;

#[cfg(not(unix))]
mod stub_poller {
    use super::{Event, Interest};
    use std::io;

    /// Non-Unix stub: construction fails with `Unsupported`, so the TCP
    /// event loop reports a clear runtime error while the rest of the
    /// workspace (stdin serving, algorithms, benches) still builds.
    pub struct Poller {}

    #[allow(dead_code)]
    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "event-driven serving requires a Unix platform",
            ))
        }

        pub fn add(&mut self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn modify(&mut self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn delete(&mut self, _fd: i32) -> io::Result<()> {
            unreachable!("stub Poller cannot be constructed")
        }

        pub fn wait(&mut self, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<usize> {
            unreachable!("stub Poller cannot be constructed")
        }
    }
}

// ---------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
pub use linux_waker::Waker;

#[cfg(target_os = "linux")]
mod linux_waker {
    use super::sys;
    use std::fs::File;
    use std::io::{self, Read, Write};
    use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};

    /// `eventfd(2)`-backed wakeup: one fd, counter semantics. `wake`
    /// makes the fd readable; `drain` resets it. Both are nonblocking.
    pub struct Waker {
        file: File,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let raw = sys::new_eventfd()?;
            // SAFETY: `eventfd` returned a fresh fd we own; File closes
            // it on drop.
            Ok(Waker {
                file: unsafe { File::from_raw_fd(raw) },
            })
        }

        /// The fd to register for read interest in a `Poller`.
        pub fn fd(&self) -> RawFd {
            self.file.as_raw_fd()
        }

        /// Make the fd readable. Saturated counters (EAGAIN) already
        /// mean "wakeup pending", so that error is ignored.
        pub fn wake(&self) {
            let one: [u8; 8] = 1u64.to_ne_bytes();
            let _ = (&self.file).write(&one);
        }

        /// Consume pending wakeups so level-triggered polling settles.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            while (&self.file).read(&mut buf).is_ok() {}
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
pub use pipe_waker::Waker;

#[cfg(all(unix, not(target_os = "linux")))]
mod pipe_waker {
    use super::sys;
    use std::fs::File;
    use std::io::{self, Read, Write};
    use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};

    /// Nonblocking-pipe wakeup for non-Linux Unixes.
    pub struct Waker {
        read_end: File,
        write_end: File,
    }

    impl Waker {
        pub fn new() -> io::Result<Waker> {
            let (r, w) = sys::nonblocking_pipe()?;
            // SAFETY: `pipe` returned two fresh fds we own.
            Ok(Waker {
                read_end: unsafe { File::from_raw_fd(r) },
                write_end: unsafe { File::from_raw_fd(w) },
            })
        }

        pub fn fd(&self) -> RawFd {
            self.read_end.as_raw_fd()
        }

        /// A full pipe (EAGAIN) already means "wakeup pending".
        pub fn wake(&self) {
            let _ = (&self.write_end).write(&[1u8]);
        }

        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            while matches!((&self.read_end).read(&mut buf), Ok(n) if n > 0) {}
        }
    }
}

#[cfg(not(unix))]
pub use stub_waker::Waker;

#[cfg(not(unix))]
mod stub_waker {
    use std::io;

    /// Non-Unix stub; see the stub `Poller`.
    pub struct Waker {}

    #[allow(dead_code)]
    impl Waker {
        pub fn new() -> io::Result<Waker> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "event-driven serving requires a Unix platform",
            ))
        }

        pub fn fd(&self) -> i32 {
            unreachable!("stub Waker cannot be constructed")
        }

        pub fn wake(&self) {}

        pub fn drain(&self) {}
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Duration;

    #[test]
    fn poller_reports_tcp_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();

        // Idle socket: no events within a short timeout.
        let mut events = Vec::new();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.is_empty(), "no data yet, no events");

        a.write_all(b"hello\n").unwrap();
        let n = poller.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: the event repeats until the bytes are read.
        events.clear();
        poller.wait(&mut events, 100).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 16];
        let got = (&b).read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"hello\n");

        events.clear();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.is_empty(), "drained socket settles");

        poller.delete(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn poller_reports_peer_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(a);

        let mut events = Vec::new();
        poller.wait(&mut events, 2000).unwrap();
        let ev = events
            .iter()
            .find(|e| e.token == 9)
            .expect("hangup surfaces");
        assert!(ev.readable, "EOF reads as readable (read returns 0)");
    }

    #[test]
    fn waker_crosses_threads_and_drains() {
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        let mut poller = Poller::new().unwrap();
        poller.add(waker.fd(), 1, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.is_empty(), "fresh waker is quiet");

        let remote = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
            remote.wake(); // double wake coalesces
        });
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        t.join().unwrap();

        waker.drain();
        events.clear();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.is_empty(), "drained waker settles");
    }

    #[test]
    fn write_interest_toggles_via_modify() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 3, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.is_empty());

        // An idle healthy socket is immediately writable once we ask.
        poller.modify(b.as_raw_fd(), 3, Interest::BOTH).unwrap();
        poller.wait(&mut events, 2000).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        poller.modify(b.as_raw_fd(), 3, Interest::READ).unwrap();
        events.clear();
        poller.wait(&mut events, 50).unwrap();
        assert!(events.is_empty(), "write interest dropped");
    }

    #[test]
    fn nofile_limit_reports_a_usable_value() {
        let got = raise_nofile_limit(256);
        assert!(got >= 256 || got > 0);
    }
}
