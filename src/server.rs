//! Concurrent TCP serving: multi-client reads during batch commits.
//!
//! The seed `lfpr serve --tcp` handled one connection at a time, so
//! every query stalled behind every batch commit. This module serves
//! the line protocol ([`crate::serve`]) with the single-writer /
//! epoch-published-readers model:
//!
//! * **one writer thread** owns the [`UpdateSession`] and drains a
//!   channel of [`WriterRequest`]s — batch commits and view management
//!   from all clients are serialized there, exactly like the
//!   single-connection mode;
//! * **a small worker set** accepts connections (the OS distributes
//!   `accept` among workers blocked on the same listener) and answers
//!   read-only commands (`topk`/`rank`/`stats`) from the session's
//!   atomically published [`RankView`](lfpr_core::RankView), so reads
//!   proceed — and report the epoch they answered from — while a batch
//!   is mid-commit on the writer;
//! * staging (`insert`/`delete`) is connection-local and validated
//!   against the latest published view; the writer revalidates every
//!   batch authoritatively, so a conflicting interleaved commit yields
//!   `err batch rejected: …` instead of corruption.
//!
//! A client disconnecting mid-line or mid-response only drops that
//! connection (logged to stderr); the worker returns to `accept` and
//! the server keeps running.

use crate::durable::{Durability, WalStats};
use crate::replica::FeedHub;
use crate::serve::{apply_logged, serve_client_reordered, Backend, ServeSummary, WriterRequest};
use lfpr_core::session::{RankReader, UpdateSession};
use lfpr_core::Algorithm;
use lfpr_graph::reorder::SharedReordering;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// A running concurrent TCP server (see the module docs for the
/// threading model). Obtained from [`spawn`]; dropped handles leave the
/// threads serving — call [`stop`](Self::stop) for a graceful shutdown
/// or [`wait`](Self::wait) to serve until the process ends.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    writer: JoinHandle<UpdateSession>,
    totals: Arc<Mutex<ServeSummary>>,
    feed: FeedHub,
}

impl TcpServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate counters across all closed connections so far.
    pub fn totals(&self) -> ServeSummary {
        *self.totals.lock().expect("totals poisoned")
    }

    /// Graceful shutdown: stop accepting, wake blocked workers, join
    /// everything, and hand back the session plus aggregate counters.
    /// Workers mid-connection finish serving that client first.
    pub fn stop(self) -> (UpdateSession, ServeSummary) {
        self.stop.store(true, Ordering::Release);
        // Close the feed hub first: a worker streaming the replica feed
        // is blocked in `recv()` on a feed channel, not in `accept`, and
        // only a closed hub unblocks it.
        self.feed.close();
        // One wake-up connection per worker unblocks their `accept`.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for w in self.workers {
            let _ = w.join();
        }
        // All workers (and their channel senders) are gone: the writer's
        // recv loop ends and returns the session.
        let session = self.writer.join().expect("writer thread panicked");
        let totals = *self.totals.lock().expect("totals poisoned");
        (session, totals)
    }

    /// Serve until every thread exits — effectively forever, unless
    /// [`stop`](Self::stop) is called or the writer dies (which shuts
    /// the workers down so the exit is visible). Used by the CLI.
    pub fn wait(self) {
        for w in self.workers {
            let _ = w.join();
        }
        if self.writer.join().is_err() {
            eprintln!("# server stopped: writer thread panicked");
        }
    }
}

/// Start serving `listener` with `workers` concurrent connection
/// handlers (at least 1) plus one writer thread owning `session`.
pub fn spawn(
    session: UpdateSession,
    listener: TcpListener,
    workers: usize,
) -> std::io::Result<TcpServer> {
    spawn_durable(session, listener, workers, None, None)
}

/// [`spawn`] with durability: when `durable` is given, the writer
/// thread logs every committed op to its write-ahead log (and takes
/// periodic checkpoints) before acknowledging, and `stats` reports the
/// log position. With or without a log, committed ops are published to
/// the replica feed so `follow` clients receive them live. When
/// `reorder` is given, every worker translates client-facing vertex
/// ids through it at the protocol boundary (and `follow` is refused —
/// the feed would leak internal ids).
pub fn spawn_durable(
    mut session: UpdateSession,
    listener: TcpListener,
    workers: usize,
    durable: Option<Durability>,
    reorder: SharedReordering,
) -> std::io::Result<TcpServer> {
    let addr = listener.local_addr()?;
    let algorithm = session.algorithm();
    // Creating the reader turns on epoch publication; every commit from
    // here on is visible to the workers.
    let reader = session.reader();
    let (tx, rx) = mpsc::channel::<WriterRequest>();
    let stop = Arc::new(AtomicBool::new(false));
    let feed = FeedHub::new();
    let wal: Option<Arc<WalStats>> = durable.as_ref().map(|d| d.stats_handle());
    let writer = {
        // If the writer dies (a kernel panic propagated out of
        // `session.step`), the server must not keep serving stale reads
        // while every commit fails — shut the workers down and let
        // `wait`/`stop` surface the panic instead.
        let stop = Arc::clone(&stop);
        let feed = feed.clone();
        let n_workers = workers.max(1);
        std::thread::Builder::new()
            .name("lfpr-writer".into())
            .spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    writer_loop(session, rx, durable, &feed)
                }));
                match result {
                    Ok(session) => session,
                    Err(panic) => {
                        eprintln!("# writer thread panicked; stopping the server");
                        stop.store(true, Ordering::Release);
                        feed.close();
                        for _ in 0..n_workers {
                            let _ = TcpStream::connect(addr);
                        }
                        std::panic::resume_unwind(panic)
                    }
                }
            })?
    };
    let totals = Arc::new(Mutex::new(ServeSummary::default()));
    let listener = Arc::new(listener);
    let workers = (0..workers.max(1))
        .map(|id| {
            let ctx = WorkerCtx {
                listener: Arc::clone(&listener),
                stop: Arc::clone(&stop),
                reader: reader.clone(),
                writer_tx: tx.clone(),
                algorithm,
                totals: Arc::clone(&totals),
                feed: feed.clone(),
                wal: wal.clone(),
                reorder: reorder.clone(),
                id,
            };
            std::thread::Builder::new()
                .name(format!("lfpr-worker-{id}"))
                .spawn(move || worker_loop(ctx))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    // The workers hold the only remaining senders; dropping ours lets
    // the writer exit as soon as the last worker does.
    drop(tx);
    Ok(TcpServer {
        addr,
        stop,
        workers,
        writer,
        totals,
        feed,
    })
}

struct WorkerCtx {
    listener: Arc<TcpListener>,
    stop: Arc<AtomicBool>,
    reader: RankReader,
    writer_tx: mpsc::Sender<WriterRequest>,
    algorithm: Algorithm,
    totals: Arc<Mutex<ServeSummary>>,
    feed: FeedHub,
    wal: Option<Arc<WalStats>>,
    reorder: SharedReordering,
    id: usize,
}

fn worker_loop(ctx: WorkerCtx) {
    loop {
        if ctx.stop.load(Ordering::Acquire) {
            return;
        }
        let (conn, peer) = match ctx.listener.accept() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("# worker {}: accept error: {e}", ctx.id);
                // A persistent failure (EMFILE under fd exhaustion)
                // must not busy-spin the accept loop.
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        // `stop` wakes blocked accepts with throwaway connections.
        if ctx.stop.load(Ordering::Acquire) {
            return;
        }
        eprintln!("# worker {}: connection from {peer}", ctx.id);
        let mut backend = Backend::Concurrent {
            reader: ctx.reader.clone(),
            writer: ctx.writer_tx.clone(),
            algorithm: ctx.algorithm,
            feed: ctx.feed.clone(),
            wal: ctx.wal.clone(),
        };
        let input = BufReader::new(&conn);
        // Buffer replies so each command's block is one write
        // (serve_client flushes once per command).
        let output = BufWriter::new(&conn);
        match serve_client_reordered(&mut backend, &ctx.reorder, input, output) {
            Ok(s) => {
                eprintln!(
                    "# worker {}: connection closed: {} commands, {} batches",
                    ctx.id, s.commands, s.batches
                );
                ctx.totals.lock().expect("totals poisoned").absorb(s);
            }
            // A half-written line or a reply into a closed socket is the
            // client's problem, not the server's: log, drop, keep going.
            Err(e) => eprintln!("# worker {}: client dropped: {e}", ctx.id),
        }
    }
}

/// The single writer: applies every funneled op (batch commit, view
/// add/drop) to the owned session — which republishes the read view
/// after each mutation, logs it to the WAL when one is configured, and
/// publishes it on the replica feed — then reports the outcome back to
/// the requesting worker. A rejected op travels back with the error so
/// e.g. a failed commit's staged edits survive on the client. When the
/// last worker hangs up, any log is flushed and fsynced before the
/// session is handed back: a graceful stop never loses an acked commit.
fn writer_loop(
    mut session: UpdateSession,
    rx: mpsc::Receiver<WriterRequest>,
    mut durable: Option<Durability>,
    feed: &FeedHub,
) -> UpdateSession {
    while let Ok(req) = rx.recv() {
        let outcome = apply_logged(&mut session, durable.as_mut(), Some(feed), req.op);
        // A worker gone mid-op (its client vanished) is fine.
        let _ = req.reply.send(outcome);
    }
    if let Some(d) = durable.as_mut() {
        if let Err(e) = d.flush_sync() {
            eprintln!("# shutdown: wal flush failed: {e}");
        }
    }
    session
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_core::PagerankOptions;
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::GraphBuilder;
    use std::io::{BufRead, Write};

    fn session() -> UpdateSession {
        let mut g = GraphBuilder::new(6)
            .edges([
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 0),
                (4, 5),
                (5, 0),
            ])
            .build_dyn()
            .unwrap();
        add_self_loops(&mut g);
        UpdateSession::new(
            g,
            Algorithm::DfLF,
            PagerankOptions::default().with_threads(1),
        )
    }

    fn start(workers: usize) -> TcpServer {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        spawn(session(), listener, workers).unwrap()
    }

    struct Client {
        conn: TcpStream,
        input: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let conn = TcpStream::connect(addr).unwrap();
            let input = BufReader::new(conn.try_clone().unwrap());
            Client { conn, input }
        }

        fn send(&mut self, cmd: &str) {
            writeln!(self.conn, "{cmd}").unwrap();
        }

        fn recv_line(&mut self) -> String {
            let mut line = String::new();
            self.input.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        }

        fn roundtrip(&mut self, cmd: &str) -> String {
            self.send(cmd);
            self.recv_line()
        }
    }

    #[test]
    fn two_clients_see_each_others_commits() {
        let server = start(2);
        let mut a = Client::connect(server.addr());
        let mut b = Client::connect(server.addr());
        assert!(a.roundtrip("stats").contains("epoch=0"));
        assert!(b.roundtrip("rank 1").ends_with("epoch=0"));
        // A commits; B's next read answers from the new epoch.
        assert_eq!(a.roundtrip("insert 3 1"), "staged 1");
        let ok = a.roundtrip("batch");
        assert!(ok.starts_with("ok batch=1"), "{ok}");
        assert!(ok.ends_with("epoch=1"), "{ok}");
        assert!(b.roundtrip("rank 1").ends_with("epoch=1"));
        assert_eq!(a.roundtrip("quit"), "bye");
        assert_eq!(b.roundtrip("quit"), "bye");
        let (session, totals) = server.stop();
        assert_eq!(session.steps(), 1);
        assert_eq!(totals.batches, 1);
        assert_eq!(totals.commands, 7);
    }

    #[test]
    fn conflicting_commit_is_rejected_not_fatal() {
        let server = start(2);
        let mut a = Client::connect(server.addr());
        let mut b = Client::connect(server.addr());
        // Both stage the same insertion against epoch 0.
        assert_eq!(a.roundtrip("insert 3 1"), "staged 1");
        assert_eq!(b.roundtrip("insert 3 1"), "staged 1");
        assert!(a.roundtrip("batch").starts_with("ok batch=1"));
        // B's commit now duplicates an existing edge: rejected, and the
        // connection (plus the server) lives on — with B's staged edits
        // restored for inspection.
        let reply = b.roundtrip("batch");
        assert!(reply.starts_with("err batch rejected"), "{reply}");
        let stats = b.roundtrip("stats");
        assert!(stats.contains("staged=1"), "staged edits lost: {stats}");
        assert!(stats.contains("epoch=1"));
        // B can repair the staged set and commit cleanly.
        assert_eq!(b.roundtrip("delete 3 1"), "staged 0");
        assert_eq!(b.roundtrip("insert 0 2"), "staged 1");
        assert!(b.roundtrip("batch").starts_with("ok batch=1"));
        drop(a);
        drop(b);
        let (session, _) = server.stop();
        assert_eq!(session.steps(), 2);
    }

    #[test]
    fn mid_line_disconnect_leaves_server_serving() {
        let server = start(1);
        {
            // Half a command, no newline, then a hard drop.
            let mut c = TcpStream::connect(server.addr()).unwrap();
            c.write_all(b"insert 3").unwrap();
        }
        {
            // Mid-session drop with a reply pending in the pipe.
            let mut c = Client::connect(server.addr());
            c.send("topk 3");
            drop(c);
        }
        // The single worker must still serve a well-behaved client.
        let mut c = Client::connect(server.addr());
        assert!(c.roundtrip("stats").contains("n=6"));
        assert_eq!(c.roundtrip("quit"), "bye");
        server.stop();
    }

    #[test]
    fn reads_carry_consistent_epoch_under_a_racing_writer() {
        let server = start(3);
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let reader = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            let mut last_epoch = 0u64;
            let mut reads = 0u64;
            while !flag.load(Ordering::Relaxed) {
                let reply = c.roundtrip("rank 0");
                let epoch: u64 = reply.rsplit("epoch=").next().unwrap().parse().unwrap();
                assert!(epoch >= last_epoch, "epoch went backwards: {reply}");
                last_epoch = epoch;
                reads += 1;
            }
            (reads, last_epoch)
        });
        let mut w = Client::connect(addr);
        for edge in ["0 2", "0 3", "0 4", "0 5", "1 0"] {
            assert_eq!(w.roundtrip(&format!("insert {edge}")), "staged 1");
            let ok = w.roundtrip("batch");
            assert!(ok.starts_with("ok batch=1"), "{ok}");
        }
        stop.store(true, Ordering::Relaxed);
        let (reads, _) = reader.join().unwrap();
        assert!(reads > 0);
        drop(w); // workers mid-connection only exit once their client leaves
        let (session, _) = server.stop();
        assert_eq!(session.steps(), 5);
    }
}
