//! Event-driven TCP serving: an epoll connection engine in front of the
//! single-writer session, with writer-side commit coalescing.
//!
//! The previous server pinned one blocking OS thread per in-flight
//! connection, so `--workers` capped concurrency at a handful of
//! clients. This version serves thousands of mostly-idle connections
//! from a fixed set of event-loop threads:
//!
//! * **event loops** — each runs a level-triggered [`Poller`] (raw
//!   `epoll(7)` on Linux, `poll(2)` elsewhere; see [`crate::net`]) over
//!   the shared nonblocking listener, a wakeup fd, and its accepted
//!   connections. A connection is a small state machine — reading
//!   request lines, awaiting the writer, or streaming the replica feed
//!   — with bounded read/write buffers. A slow client backpressures
//!   into its own write buffer (reads pause past a high-water mark)
//!   instead of blocking the loop; a follower that cannot keep up is
//!   dropped rather than allowed to wedge everyone else.
//! * **one writer thread** still owns the [`UpdateSession`]. Mutations
//!   arrive as [`WriterRequest`]s whose replies are completion
//!   callbacks: the loop parks the connection, the writer files the
//!   outcome, and an eventfd wakeup resumes it — no polling anywhere.
//!   Per wakeup the writer drains *every* queued request and coalesces
//!   the commits into one merged batch ([`coalesce_batches`]): one
//!   trial-validation per client batch, then a single gapped-store
//!   splice, rank refresh, WAL append + fsync, and feed frame for the
//!   whole round. Each accepted client is acked with the merged epoch;
//!   a rejected sub-batch is erred back to its own client (its staged
//!   edits restored) without poisoning the others.
//! * reads never touch the writer: every command answers from the
//!   epoch-published [`RankView`] exactly as before, and subscription
//!   pushes ride the writer's wakeup, so subscribers hear about rank
//!   changes without polling.
//!
//! A client disconnecting mid-request, mid-response, or mid-commit only
//! drops that connection: the fd is deregistered and closed, its
//! subscriptions die with its state, and a commit already queued still
//! applies (the completion for a vanished token is discarded — the
//! outcome is simply unobserved, exactly like the blocking server's
//! reply into a closed socket).

use crate::durable::{Durability, WalStats};
use crate::net::{raise_nofile_limit, Event, Interest, Poller, Waker};
use crate::protocol::{parse_request, Response};
use crate::replica::{record_is_fresh, write_feed_event, write_resync, FeedHub};
use crate::serve::{
    apply_logged, finish_mutation, proactive_push, process, reply, translate_request, Action,
    Backend, CommitOutcome, ConnState, MutKind, ServeSummary, WriterOk, WriterOp, WriterOutcome,
    WriterReply, WriterRequest,
};
use crate::shard::{serve_shard_client_reordered, ShardRouter};
use lfpr_core::session::{RankReader, RankView, UpdateSession};
use lfpr_core::Algorithm;
use lfpr_graph::io::wal::WalRecord;
use lfpr_graph::reorder::SharedReordering;
use lfpr_graph::{BatchUpdate, DynGraph, Edge};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};
#[cfg(not(unix))]
type RawFd = i32;

/// Token of the shared listener in every loop's poller.
const LISTENER_TOKEN: u64 = 0;
/// Token of each loop's wakeup fd.
const WAKER_TOKEN: u64 = 1;
/// First connection token; tokens grow monotonically and are never
/// reused, so a stale event or completion for a recycled fd is
/// unroutable instead of an ABA hazard.
const FIRST_CONN_TOKEN: u64 = 2;

/// Poll timeout: wakeups (writer rounds, shutdown) arrive via the
/// waker fd, so this is only a belt-and-braces liveness bound.
const WAIT_MS: i32 = 500;
/// Pause reading from a connection whose pending replies exceed this.
const WBUF_PAUSE: usize = 256 * 1024;
/// Resume reading once pending replies drain below this.
const WBUF_RESUME: usize = 64 * 1024;
/// Drop a follower whose unsent feed exceeds this (a resync of a big
/// graph is legitimately large; unbounded lag is not).
const FOLLOW_CAP: usize = 64 * 1024 * 1024;
/// Kill a connection sending an unbounded line (no protocol line is
/// remotely this long).
const RBUF_CAP: usize = 1024 * 1024;
/// Soft fd-limit target requested at server start (best-effort).
const NOFILE_WANT: u64 = 4096;

/// How [`spawn_with`] shapes the server.
pub struct ServerOptions {
    /// Event-loop thread count (at least 1). Connections cost one fd
    /// each, not one thread: this stays small even for thousands of
    /// mostly-idle clients.
    pub workers: usize,
    /// Write-ahead logging: one append + fsync per merged commit,
    /// log-before-ack for every client in the round.
    pub durable: Option<Durability>,
    /// Client-facing id translation for a reordered session.
    pub reorder: SharedReordering,
    /// Merge all queued commits per writer wakeup into one batch. On
    /// by default; `false` restores one-apply-per-request (for A/B
    /// measurement — `serve_bench --no-coalesce`).
    pub coalesce: bool,
}

impl ServerOptions {
    /// Defaults: `workers` loops, no WAL, no reorder, coalescing on.
    pub fn new(workers: usize) -> ServerOptions {
        ServerOptions {
            workers,
            durable: None,
            reorder: None,
            coalesce: true,
        }
    }
}

/// A running event-driven TCP server (see the module docs for the
/// threading model). Obtained from [`spawn`]; dropped handles leave the
/// threads serving — call [`stop`](Self::stop) for a graceful shutdown
/// or [`wait`](Self::wait) to serve until the process ends.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    loops: Vec<JoinHandle<()>>,
    writer: JoinHandle<UpdateSession>,
    totals: Arc<Mutex<ServeSummary>>,
    feed: FeedHub,
    wakers: Vec<Arc<Waker>>,
}

impl TcpServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate counters across all closed connections so far.
    pub fn totals(&self) -> ServeSummary {
        *self.totals.lock().expect("totals poisoned")
    }

    /// Graceful shutdown: stop the loops (remaining connections are
    /// closed after a best-effort flush), let the writer drain, and
    /// hand back the session plus aggregate counters.
    pub fn stop(self) -> (UpdateSession, ServeSummary) {
        self.stop.store(true, Ordering::Release);
        // Close the feed hub first so followers see end-of-feed, then
        // wake every loop out of its poller wait.
        self.feed.close();
        for w in &self.wakers {
            w.wake();
        }
        for l in self.loops {
            let _ = l.join();
        }
        // The loops held the only writer senders; the writer's recv
        // loop ends, flushes any WAL, and returns the session.
        let session = self.writer.join().expect("writer thread panicked");
        let totals = *self.totals.lock().expect("totals poisoned");
        (session, totals)
    }

    /// Serve until every thread exits — effectively forever, unless
    /// [`stop`](Self::stop) is called or the writer dies (which shuts
    /// the loops down so the exit is visible). Used by the CLI.
    pub fn wait(self) {
        for l in self.loops {
            let _ = l.join();
        }
        if self.writer.join().is_err() {
            eprintln!("# server stopped: writer thread panicked");
        }
    }
}

/// Start serving `listener` with `workers` event loops plus one writer
/// thread owning `session`.
pub fn spawn(
    session: UpdateSession,
    listener: TcpListener,
    workers: usize,
) -> std::io::Result<TcpServer> {
    spawn_with(session, listener, ServerOptions::new(workers))
}

/// [`spawn`] with durability: when `durable` is given, the writer
/// thread logs every committed op to its write-ahead log (and takes
/// periodic checkpoints) before acknowledging, and `stats` reports the
/// log position. With or without a log, committed ops are published to
/// the replica feed so `follow` clients receive them live. When
/// `reorder` is given, every loop translates client-facing vertex ids
/// through it at the protocol boundary, and the feed's resync block
/// ships the permutation so followers can do the same.
pub fn spawn_durable(
    session: UpdateSession,
    listener: TcpListener,
    workers: usize,
    durable: Option<Durability>,
    reorder: SharedReordering,
) -> std::io::Result<TcpServer> {
    spawn_with(
        session,
        listener,
        ServerOptions {
            workers,
            durable,
            reorder,
            coalesce: true,
        },
    )
}

/// Start serving `listener` as configured by `opts`.
pub fn spawn_with(
    mut session: UpdateSession,
    listener: TcpListener,
    opts: ServerOptions,
) -> std::io::Result<TcpServer> {
    let ServerOptions {
        workers,
        durable,
        reorder,
        coalesce,
    } = opts;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    // Connections cost one fd each; make room for the advertised scale.
    raise_nofile_limit(NOFILE_WANT);
    let algorithm = session.algorithm();
    // Creating the reader turns on epoch publication; every commit from
    // here on is visible to the loops.
    let reader = session.reader();
    let (tx, rx) = mpsc::channel::<WriterRequest>();
    let stop = Arc::new(AtomicBool::new(false));
    let feed = FeedHub::new();
    let wal: Option<Arc<WalStats>> = durable.as_ref().map(|d| d.stats_handle());
    let n_loops = workers.max(1);

    // Pollers and wakeup fds exist before any thread starts: the writer
    // wakes every loop after each drain round, and shutdown wakes them
    // out of `wait`.
    let mut wakers = Vec::with_capacity(n_loops);
    let mut pollers = Vec::with_capacity(n_loops);
    for _ in 0..n_loops {
        let waker = Arc::new(Waker::new()?);
        let mut poller = Poller::new()?;
        poller.add(sock_fd(&listener), LISTENER_TOKEN, Interest::READ)?;
        poller.add(waker.fd(), WAKER_TOKEN, Interest::READ)?;
        wakers.push(waker);
        pollers.push(poller);
    }

    let writer = {
        // If the writer dies (a kernel panic propagated out of
        // `session.step`), the server must not keep serving stale reads
        // while every commit fails — shut the loops down and let
        // `wait`/`stop` surface the panic instead.
        let stop = Arc::clone(&stop);
        let feed = feed.clone();
        let wakers = wakers.clone();
        std::thread::Builder::new()
            .name("lfpr-writer".into())
            .spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    writer_loop(session, rx, durable, &feed, coalesce, &wakers)
                }));
                match result {
                    Ok(session) => session,
                    Err(panic) => {
                        eprintln!("# writer thread panicked; stopping the server");
                        stop.store(true, Ordering::Release);
                        feed.close();
                        for w in &wakers {
                            w.wake();
                        }
                        std::panic::resume_unwind(panic)
                    }
                }
            })?
    };
    let totals = Arc::new(Mutex::new(ServeSummary::default()));
    let listener = Arc::new(listener);
    let loops = pollers
        .into_iter()
        .enumerate()
        .map(|(id, poller)| {
            let ctx = LoopCtx {
                id,
                listener: Arc::clone(&listener),
                stop: Arc::clone(&stop),
                reader: reader.clone(),
                writer_tx: tx.clone(),
                algorithm,
                totals: Arc::clone(&totals),
                feed: feed.clone(),
                wal: wal.clone(),
                reorder: reorder.clone(),
                waker: Arc::clone(&wakers[id]),
                completions: Arc::new(Mutex::new(Vec::new())),
            };
            std::thread::Builder::new()
                .name(format!("lfpr-loop-{id}"))
                .spawn(move || event_loop(ctx, poller))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    // The loops hold the only remaining senders; dropping ours lets the
    // writer exit as soon as the last loop does.
    drop(tx);
    Ok(TcpServer {
        addr,
        stop,
        loops,
        writer,
        totals,
        feed,
        wakers,
    })
}

#[cfg(unix)]
fn sock_fd<T: AsRawFd>(s: &T) -> RawFd {
    s.as_raw_fd()
}
#[cfg(not(unix))]
fn sock_fd<T>(_: &T) -> RawFd {
    // Unreachable in practice: `Poller::new` fails first on non-Unix.
    -1
}

/// Outcomes the writer filed for this loop's parked connections,
/// keyed by connection token. Filed *before* the writer's wakeup, so a
/// loop that drains its waker and then takes this list never misses one.
type Completions = Arc<Mutex<Vec<(u64, WriterOutcome)>>>;

/// Everything one event loop needs, owned per loop (clones of shared
/// handles; no locks on the hot path except the completion list).
struct LoopCtx {
    id: usize,
    listener: Arc<TcpListener>,
    stop: Arc<AtomicBool>,
    reader: RankReader,
    writer_tx: mpsc::Sender<WriterRequest>,
    algorithm: Algorithm,
    totals: Arc<Mutex<ServeSummary>>,
    feed: FeedHub,
    wal: Option<Arc<WalStats>>,
    reorder: SharedReordering,
    waker: Arc<Waker>,
    completions: Completions,
}

/// What a connection is doing between readiness events.
enum Phase {
    /// Parsing and answering request lines.
    Ready,
    /// A mutation is queued at the writer; parsing is parked until the
    /// completion arrives (the context for its reply rides along).
    AwaitingWriter(MutKind),
    /// One-way replica feed: frames from the hub, input discarded.
    Following {
        rx: mpsc::Receiver<Arc<WalRecord>>,
        pinned: Arc<RankView>,
    },
}

/// Why a connection left the map (for the close log).
enum Fate {
    Alive,
    /// Orderly end: EOF after `quit`, or the feed ended.
    Closed,
    /// Socket error / protocol abuse / hopeless lag.
    Dropped(String),
}

/// One nonblocking connection and its protocol state machine.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    token: u64,
    state: ConnState,
    phase: Phase,
    summary: ServeSummary,
    /// Unparsed request bytes (bounded by [`RBUF_CAP`]).
    rbuf: Vec<u8>,
    /// Buffered replies; `wbuf[wpos..]` is not yet on the wire.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Drain `wbuf` and close (set by `quit` and by client EOF).
    closing: bool,
    /// Reads paused by write-buffer backpressure (hysteresis between
    /// [`WBUF_PAUSE`] and [`WBUF_RESUME`]).
    paused: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    fate: Fate,
}

impl Conn {
    fn new(stream: TcpStream, token: u64) -> Conn {
        let fd = sock_fd(&stream);
        Conn {
            stream,
            fd,
            token,
            state: ConnState::default(),
            phase: Phase::Ready,
            summary: ServeSummary::default(),
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            closing: false,
            paused: false,
            interest: Interest::READ,
            fate: Fate::Alive,
        }
    }

    /// Reply bytes not yet written to the socket.
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    fn alive(&self) -> bool {
        matches!(self.fate, Fate::Alive)
    }

    /// Read until `WouldBlock`/EOF, then run the state machine over any
    /// complete lines.
    fn pump_read(&mut self, backend: &mut Backend<'_>, ctx: &LoopCtx) {
        let mut chunk = [0u8; 16 * 1024];
        let mut eof = false;
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    if matches!(self.phase, Phase::Following { .. }) || self.closing {
                        continue; // one-way feed / post-quit: discard
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    if self.rbuf.len() > RBUF_CAP {
                        self.fate = Fate::Dropped("request line over 1 MiB".into());
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.fate = Fate::Dropped(e.to_string());
                    return;
                }
            }
        }
        self.parse_lines(backend, ctx);
        if eof {
            // The client's send side is done. Any buffered replies are
            // still flushed (half-close); then the connection ends. A
            // mutation already queued at the writer applies regardless —
            // its completion will find this token gone and be discarded.
            self.closing = true;
        }
    }

    /// Run the protocol over every complete line in `rbuf` while the
    /// connection is ready for commands.
    fn parse_lines(&mut self, backend: &mut Backend<'_>, ctx: &LoopCtx) {
        loop {
            if !self.alive() || self.closing || !matches!(self.phase, Phase::Ready) {
                if matches!(self.phase, Phase::Following { .. }) {
                    self.rbuf.clear();
                }
                return;
            }
            let Some(pos) = self.rbuf.iter().position(|&b| b == b'\n') else {
                return;
            };
            let raw: Vec<u8> = self.rbuf.drain(..=pos).collect();
            let line = match std::str::from_utf8(&raw[..pos]) {
                Ok(s) => s.trim_end_matches('\r').to_string(),
                Err(_) => {
                    // The blocking loop's `lines()` also erred the
                    // connection on invalid UTF-8.
                    self.fate = Fate::Dropped("invalid utf-8 in request".into());
                    return;
                }
            };
            self.handle_line(&line, backend, ctx);
        }
    }

    /// One request line through the shared protocol core.
    fn handle_line(&mut self, line: &str, backend: &mut Backend<'_>, ctx: &LoopCtx) {
        let Some(parsed) = parse_request(line) else {
            return; // blank or comment: no command, no reply
        };
        self.summary.commands += 1;
        let outcome: std::io::Result<()> = match parsed {
            Err(e) => reply(&mut self.wbuf, &ctx.reorder, &Response::Error(e)),
            Ok(req) => {
                let req = match &ctx.reorder {
                    Some(r) => translate_request(req, r),
                    None => req,
                };
                match process(
                    backend,
                    &ctx.reorder,
                    &mut self.state,
                    &mut self.summary,
                    req,
                    &mut self.wbuf,
                ) {
                    Ok(Action::Done) => Ok(()),
                    Ok(Action::Quit) => {
                        self.closing = true;
                        Ok(())
                    }
                    Ok(Action::Follow { since }) => self.begin_follow(since, ctx),
                    Ok(Action::Mutate { op, kind }) => self.submit_mutation(op, kind, ctx),
                    Err(e) => Err(e),
                }
            }
        };
        if let Err(e) = outcome {
            self.fate = Fate::Dropped(e.to_string());
        }
    }

    /// Park the connection and queue the op at the writer. The reply is
    /// a callback that files the outcome on this loop's completion list
    /// — without waking; the writer wakes every loop once per round,
    /// after all of the round's outcomes are filed.
    fn submit_mutation(
        &mut self,
        op: WriterOp,
        kind: MutKind,
        ctx: &LoopCtx,
    ) -> std::io::Result<()> {
        let token = self.token;
        let completions = Arc::clone(&ctx.completions);
        let req = WriterRequest {
            op,
            reply: WriterReply::Callback(Box::new(move |outcome| {
                completions
                    .lock()
                    .expect("completions poisoned")
                    .push((token, outcome));
            })),
        };
        match ctx.writer_tx.send(req) {
            Ok(()) => {
                self.phase = Phase::AwaitingWriter(kind);
                Ok(())
            }
            // Writer gone: answer inline so the client hears the truth.
            Err(e) => {
                let resp = finish_mutation(
                    kind,
                    Err((e.0.op, "server shutting down".into())),
                    &mut self.state,
                    &mut self.summary,
                );
                reply(&mut self.wbuf, &ctx.reorder, &resp)
            }
        }
    }

    /// Switch to the one-way replica feed (`follow`). Mirrors
    /// [`crate::replica::stream_feed`]: subscribe *before* pinning, so
    /// no mutation can fall between the snapshot and the stream.
    fn begin_follow(&mut self, since: Option<u64>, ctx: &LoopCtx) -> std::io::Result<()> {
        let rx = ctx.feed.subscribe();
        let pinned = ctx.reader.view();
        if since == Some(pinned.epoch()) {
            writeln!(self.wbuf, "feed ok epoch={}", pinned.epoch())?;
        } else {
            write_resync(&mut self.wbuf, &pinned, ctx.algorithm, &ctx.reorder)?;
        }
        self.rbuf.clear();
        self.phase = Phase::Following { rx, pinned };
        Ok(())
    }

    /// The writer resolved this connection's parked mutation: write the
    /// reply and resume parsing anything queued behind it.
    fn finish_writer(&mut self, outcome: WriterOutcome, backend: &mut Backend<'_>, ctx: &LoopCtx) {
        let phase = std::mem::replace(&mut self.phase, Phase::Ready);
        let Phase::AwaitingWriter(kind) = phase else {
            self.phase = phase;
            return;
        };
        let resp = finish_mutation(kind, outcome, &mut self.state, &mut self.summary);
        if let Err(e) = reply(&mut self.wbuf, &ctx.reorder, &resp) {
            self.fate = Fate::Dropped(e.to_string());
            return;
        }
        self.parse_lines(backend, ctx);
    }

    /// Move fresh feed frames from the hub queue into the write buffer.
    fn pump_feed(&mut self) {
        let Phase::Following { rx, pinned } = &self.phase else {
            return;
        };
        loop {
            if self.wbuf.len() - self.wpos > FOLLOW_CAP {
                self.fate = Fate::Dropped("follower too far behind; dropping".into());
                return;
            }
            match rx.try_recv() {
                Ok(rec) => {
                    if record_is_fresh(&rec, pinned) {
                        let _ = write_feed_event(&mut self.wbuf, &rec);
                    }
                }
                Err(mpsc::TryRecvError::Empty) => return,
                Err(mpsc::TryRecvError::Disconnected) => {
                    // Hub closed (shutdown): finish the flush, then end.
                    self.closing = true;
                    return;
                }
            }
        }
    }

    /// Write buffered replies until done or `WouldBlock`.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.fate = Fate::Dropped("write returned 0".into());
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.fate = Fate::Dropped(e.to_string());
                    return;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > WBUF_RESUME {
            // Bound memory: reclaim the already-written prefix.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
    }

    /// Recompute backpressure and poller interest after I/O.
    fn update_interest(&mut self, poller: &mut Poller) {
        let pending = self.pending();
        if pending > WBUF_PAUSE {
            self.paused = true;
        } else if pending < WBUF_RESUME {
            self.paused = false;
        }
        let want = Interest {
            readable: !self.paused,
            writable: pending > 0,
        };
        if want != self.interest && poller.modify(self.fd, self.token, want).is_ok() {
            self.interest = want;
        }
    }
}

/// One event loop: accept, read, execute, flush — never block on a
/// client. See the module docs for the per-wakeup processing order
/// (waker, completions, feed, pushes, socket events), which makes a
/// writer round's acks visible before the pushes it caused.
fn event_loop(ctx: LoopCtx, mut poller: Poller) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut events: Vec<Event> = Vec::with_capacity(64);
    let mut touched: Vec<u64> = Vec::new();
    let mut backend = Backend::Concurrent {
        reader: ctx.reader.clone(),
        writer: ctx.writer_tx.clone(),
        algorithm: ctx.algorithm,
        feed: ctx.feed.clone(),
        wal: ctx.wal.clone(),
    };
    loop {
        events.clear();
        touched.clear();
        if let Err(e) = poller.wait(&mut events, WAIT_MS) {
            eprintln!("# loop {}: poll error: {e}", ctx.id);
        }
        if ctx.stop.load(Ordering::Acquire) {
            break;
        }
        // 1. Drain the waker *before* taking completions: the writer
        //    files outcomes first and wakes second, so anything we miss
        //    here re-wakes the next iteration.
        let woken = events.iter().any(|e| e.token == WAKER_TOKEN);
        if woken {
            ctx.waker.drain();
        }

        // 2. Writer completions: finish parked mutations.
        let done: Vec<(u64, WriterOutcome)> =
            std::mem::take(&mut *ctx.completions.lock().expect("completions poisoned"));
        let round_ended = woken || !done.is_empty();
        for (token, outcome) in done {
            // A vanished token is a client that disconnected mid-commit:
            // the op applied (or erred) at the writer; nobody is left to
            // care about the outcome.
            if let Some(conn) = conns.get_mut(&token) {
                conn.finish_writer(outcome, &mut backend, &ctx);
                touched.push(token);
            }
        }

        // 3 & 4. Feed frames and proactive pushes. New frames and new
        // epochs only exist after a writer round, so the full scan runs
        // only on its wakeup — a loop busy with idle readers never pays
        // a per-connection cost for them.
        if round_ended {
            let mut pushed_view: Option<Arc<RankView>> = None;
            for (token, conn) in conns.iter_mut() {
                if !conn.alive() {
                    continue;
                }
                if matches!(conn.phase, Phase::Following { .. }) {
                    conn.pump_feed();
                    touched.push(*token);
                    continue;
                }
                // Idle, subscribed, command-phase connections hear about
                // the new epoch without polling. One published-view load
                // serves the whole scan.
                let idle = !conn.closing
                    && matches!(conn.phase, Phase::Ready)
                    && conn.rbuf.is_empty()
                    && conn.state.has_subs();
                if !idle {
                    continue;
                }
                let view = pushed_view.get_or_insert_with(|| ctx.reader.view()).clone();
                let _ = proactive_push(
                    &mut conn.state,
                    &ctx.reorder,
                    view,
                    &mut conn.summary,
                    &mut conn.wbuf,
                );
                touched.push(*token);
            }
        }

        // 5. Socket readiness.
        for ev in &events {
            match ev.token {
                LISTENER_TOKEN => {
                    accept_burst(&ctx, &mut poller, &mut conns, &mut next_token);
                }
                WAKER_TOKEN => {}
                token => {
                    if let Some(conn) = conns.get_mut(&token) {
                        if conn.alive() && (ev.readable || ev.hangup) {
                            conn.pump_read(&mut backend, &ctx);
                        }
                        touched.push(token);
                    }
                }
            }
        }

        // 6. Flush, update interest, reap — only for connections that
        // saw any action this iteration (a parked crowd costs nothing).
        touched.sort_unstable();
        touched.dedup();
        for token in touched.drain(..) {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if conn.alive() {
                conn.flush();
            }
            if conn.alive() && conn.closing && conn.pending() == 0 {
                conn.fate = Fate::Closed;
            }
            match &conn.fate {
                Fate::Alive => conn.update_interest(&mut poller),
                fate => {
                    if let Fate::Dropped(why) = fate {
                        eprintln!("# loop {}: client dropped: {why}", ctx.id);
                    } else {
                        eprintln!(
                            "# loop {}: connection closed: {} commands, {} batches",
                            ctx.id, conn.summary.commands, conn.summary.batches
                        );
                    }
                    let _ = poller.delete(conn.fd);
                    let conn = conns.remove(&token).expect("present above");
                    ctx.totals
                        .lock()
                        .expect("totals poisoned")
                        .absorb(conn.summary);
                }
            }
        }
    }
    // Shutdown: account for whatever is still connected (sockets close
    // on drop; a parked commit still applies at the writer).
    for (_, conn) in conns.drain() {
        ctx.totals
            .lock()
            .expect("totals poisoned")
            .absorb(conn.summary);
    }
}

/// Accept until `WouldBlock` (all loops share the listener; losers of
/// an accept race simply see `WouldBlock`).
fn accept_burst(
    ctx: &LoopCtx,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match ctx.listener.accept() {
            Ok((stream, peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                let conn = Conn::new(stream, token);
                if let Err(e) = poller.add(conn.fd, token, Interest::READ) {
                    eprintln!("# loop {}: register {peer} failed: {e}", ctx.id);
                    continue;
                }
                eprintln!("# loop {}: connection from {peer}", ctx.id);
                conns.insert(token, conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) => {
                // A persistent failure (EMFILE under fd exhaustion) must
                // not busy-spin: level-triggered epoll re-reports the
                // pending connection after the pause.
                eprintln!("# loop {}: accept error: {e}", ctx.id);
                std::thread::sleep(std::time::Duration::from_millis(25));
                break;
            }
        }
    }
}

/// Merge client batches (in arrival order) into one net batch,
/// trial-validating each against the graph plus the already-merged
/// overlay with exactly [`DynGraph::validate_batch`]'s checks and error
/// texts. Returns the merged batch and one verdict per input; a
/// rejected input leaves the overlay untouched, so it cannot poison the
/// batches after it. Cancelling pairs across clients (one deletes what
/// another inserted) annihilate, mirroring [`crate::MutGuard`] — the
/// merged batch is the *net* effect, in first-occurrence order, and is
/// guaranteed valid against the graph.
pub fn coalesce_batches<'a>(
    graph: &DynGraph,
    batches: impl IntoIterator<Item = &'a BatchUpdate>,
) -> (BatchUpdate, Vec<Result<(), String>>) {
    // Effective edge presence under the graph ⊕ overlay composition.
    fn eff(graph: &DynGraph, net: &BatchUpdate, u: u32, v: u32) -> bool {
        if net.deletions.contains(&(u, v)) {
            return false;
        }
        if net.insertions.contains(&(u, v)) {
            return true;
        }
        graph.has_edge(u, v)
    }
    let n = graph.num_vertices();
    let mut net = BatchUpdate::new();
    let mut verdicts = Vec::new();
    'batches: for batch in batches {
        // (a) range-check every edge — same order, same text as
        // `validate_batch`.
        for (u, v) in batch.iter_all() {
            for id in [u, v] {
                if id as usize >= n {
                    verdicts.push(Err(format!("vertex {id} out of range (n = {n})")));
                    continue 'batches;
                }
            }
        }
        // (b) deletions must hit a present edge, once.
        let mut dels: std::collections::HashSet<Edge> =
            std::collections::HashSet::with_capacity(batch.deletions.len());
        for &(u, v) in &batch.deletions {
            if !eff(graph, &net, u, v) || !dels.insert((u, v)) {
                verdicts.push(Err(format!("edge ({u}, {v}) does not exist")));
                continue 'batches;
            }
        }
        // (c) insertions must hit a vacant (or just-deleted) slot, once.
        let mut ins: std::collections::HashSet<Edge> =
            std::collections::HashSet::with_capacity(batch.insertions.len());
        for &(u, v) in &batch.insertions {
            let vacant = !eff(graph, &net, u, v) || dels.contains(&(u, v));
            if !vacant || !ins.insert((u, v)) {
                verdicts.push(Err(format!("edge ({u}, {v}) already exists")));
                continue 'batches;
            }
        }
        // Accepted: fold into the overlay, deletions first (the order
        // `apply_batch` uses), cancelling across clients as MutGuard
        // does within one.
        for &e in &batch.deletions {
            if let Some(pos) = net.insertions.iter().position(|&x| x == e) {
                net.insertions.remove(pos);
            } else {
                net.deletions.push(e);
            }
        }
        for &e in &batch.insertions {
            if let Some(pos) = net.deletions.iter().position(|&x| x == e) {
                net.deletions.remove(pos);
            } else {
                net.insertions.push(e);
            }
        }
        verdicts.push(Ok(()));
    }
    (net, verdicts)
}

/// Apply one coalesced writer round outside a running server — exactly
/// the writer thread's commit path (`flush_commits`), with each
/// outcome collected in input order. `batches` of length 1 take the
/// uncoalesced singleton path; more merge through [`coalesce_batches`]
/// into one apply (one WAL append + fsync when `durable` is live, one
/// feed frame when `feed` is given). The main consumer is tests that
/// need a deterministic round — the server itself groups rounds by
/// arrival timing.
pub fn apply_coalesced(
    session: &mut UpdateSession,
    durable: &mut Option<Durability>,
    feed: Option<&FeedHub>,
    batches: Vec<BatchUpdate>,
) -> Vec<Result<CommitOutcome, String>> {
    let own_feed;
    let feed = match feed {
        Some(f) => f,
        None => {
            own_feed = FeedHub::new();
            &own_feed
        }
    };
    let mut replies = Vec::with_capacity(batches.len());
    let mut commits = Vec::with_capacity(batches.len());
    for batch in batches {
        let (tx, rx) = mpsc::sync_channel(1);
        replies.push(rx);
        commits.push((batch, WriterReply::Sync(tx)));
    }
    flush_commits(session, durable, feed, &mut commits);
    replies
        .into_iter()
        .map(
            |rx| match rx.recv().expect("every batch in the round is answered") {
                Ok(WriterOk::Committed(o)) => Ok(o),
                Ok(_) => unreachable!("commit answered with a non-commit outcome"),
                Err((_, msg)) => Err(msg),
            },
        )
        .collect()
}

/// The single writer: drains every queued request per wakeup, merges
/// the commits into one batch, applies it (publish → WAL append +
/// fsync → feed → ack, preserving log-before-ack for every client in
/// the round), answers each requester through its reply path, and then
/// wakes every event loop exactly once. View ops are barriers: the
/// merged prefix flushes first, so arrival order is preserved. When the
/// last loop hangs up, any log is flushed and fsynced before the
/// session is handed back: a graceful stop never loses an acked commit.
fn writer_loop(
    mut session: UpdateSession,
    rx: mpsc::Receiver<WriterRequest>,
    mut durable: Option<Durability>,
    feed: &FeedHub,
    coalesce: bool,
    wakers: &[Arc<Waker>],
) -> UpdateSession {
    while let Ok(first) = rx.recv() {
        let mut round = vec![first];
        if coalesce {
            // Everything queued while the previous round was applying
            // lands in this one — under commit pressure, k clients cost
            // one splice + one refresh + one fsync instead of k.
            while let Ok(more) = rx.try_recv() {
                round.push(more);
            }
        }
        let mut commits: Vec<(BatchUpdate, WriterReply)> = Vec::new();
        for req in round {
            match req.op {
                WriterOp::Commit(batch) => commits.push((batch, req.reply)),
                op => {
                    flush_commits(&mut session, &mut durable, feed, &mut commits);
                    let outcome = apply_logged(&mut session, durable.as_mut(), Some(feed), op);
                    req.reply.deliver(outcome);
                }
            }
        }
        flush_commits(&mut session, &mut durable, feed, &mut commits);
        // Wake after the whole round: every loop sees its completions
        // (acks) and only then the pushes the new epoch caused.
        for w in wakers {
            w.wake();
        }
    }
    if let Some(d) = durable.as_mut() {
        if let Err(e) = d.flush_sync() {
            eprintln!("# shutdown: wal flush failed: {e}");
        }
    }
    session
}

/// Apply the round's accumulated commits: the singleton path is
/// byte-identical to the uncoalesced server (same validation, same WAL
/// record, same feed frame); two or more merge through
/// [`coalesce_batches`] into one apply, with every accepted client
/// acked the merged outcome and every rejected one erred with its own
/// batch handed back.
fn flush_commits(
    session: &mut UpdateSession,
    durable: &mut Option<Durability>,
    feed: &FeedHub,
    commits: &mut Vec<(BatchUpdate, WriterReply)>,
) {
    match commits.len() {
        0 => {}
        1 => {
            let (batch, reply) = commits.pop().expect("len checked");
            let outcome = apply_logged(
                session,
                durable.as_mut(),
                Some(feed),
                WriterOp::Commit(batch),
            );
            reply.deliver(outcome);
        }
        _ => {
            let round: Vec<(BatchUpdate, WriterReply)> = std::mem::take(commits);
            // A wedged WAL refuses every sub-batch up front, exactly as
            // it would refuse each applied sequentially.
            if let Some(msg) = durable.as_ref().and_then(|d| d.wedged_reason()) {
                let msg = format!("wal unavailable: {msg}");
                for (batch, reply) in round {
                    reply.deliver(Err((WriterOp::Commit(batch), msg.clone())));
                }
                return;
            }
            let (net, verdicts) = coalesce_batches(session.graph(), round.iter().map(|(b, _)| b));
            let accepted = verdicts.iter().filter(|v| v.is_ok()).count();
            if accepted == 0 {
                for ((batch, reply), verdict) in round.into_iter().zip(verdicts) {
                    let msg = verdict.expect_err("no batch accepted");
                    reply.deliver(Err((WriterOp::Commit(batch), msg)));
                }
                return;
            }
            eprintln!(
                "# coalesced {} client batches ({} accepted) into {} net updates",
                round.len(),
                accepted,
                net.len()
            );
            // One apply even when cancellation emptied the net batch:
            // the epoch still advances, once, and every accepted client
            // acks against it — indistinguishable from an empty `batch`.
            match apply_logged(session, durable.as_mut(), Some(feed), WriterOp::Commit(net)) {
                Ok(WriterOk::Committed(o)) => {
                    for ((batch, reply), verdict) in round.into_iter().zip(verdicts) {
                        match verdict {
                            Ok(()) => {
                                drop(batch); // folded into the net commit
                                reply.deliver(Ok(WriterOk::Committed(o)));
                            }
                            Err(msg) => reply.deliver(Err((WriterOp::Commit(batch), msg))),
                        }
                    }
                }
                Ok(_) => unreachable!("commit answered with a non-commit outcome"),
                // Pre-validated, so this is the store (or a WAL refusal
                // racing in): every client hears the truth, with its own
                // batch back so staged edits survive.
                Err((_, msg)) => {
                    for ((batch, reply), verdict) in round.into_iter().zip(verdicts) {
                        let m = match verdict {
                            Ok(()) => msg.clone(),
                            Err(own) => own,
                        };
                        reply.deliver(Err((WriterOp::Commit(batch), m)));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded TCP serving
// ---------------------------------------------------------------------------

/// A running sharded TCP server: a [`ShardRouter`] behind a
/// thread-per-connection accept loop.
///
/// The sharded tier keeps the simple blocking model rather than the
/// event engine above: a scatter/gather commit blocks its connection on
/// N writer round trips anyway, and the sharded surface targets
/// few-client/high-commit-pressure workloads where per-connection
/// threads cost nothing. The event loops' single `writer` channel has
/// no sharded analogue — each shard owns its own writer inside the
/// router.
pub struct ShardServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: JoinHandle<()>,
    router: Arc<ShardRouter>,
    totals: Arc<Mutex<ServeSummary>>,
}

impl ShardServer {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, wait for the open
    /// connections to drain, stop every shard writer, and hand back
    /// the shard sessions plus aggregate counters.
    pub fn stop(self) -> (Vec<UpdateSession>, ServeSummary) {
        self.stop.store(true, Ordering::Release);
        let _ = self.accept.join();
        let totals = *self.totals.lock().expect("totals poisoned");
        let router = Arc::try_unwrap(self.router)
            .ok()
            .expect("a connection thread still holds the router");
        (router.shutdown(), totals)
    }

    /// Serve until the accept loop exits — effectively forever. Used
    /// by the CLI.
    pub fn wait(self) {
        let _ = self.accept.join();
    }
}

/// Start serving `listener` with one connection thread per client, all
/// routing through `router`. A reordered router (partition computed
/// jointly with the load-time renumbering) passes its `reorder` so the
/// wire keeps speaking external ids.
pub fn spawn_sharded(
    router: ShardRouter,
    reorder: SharedReordering,
    listener: TcpListener,
) -> std::io::Result<ShardServer> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let router = Arc::new(router);
    let stop = Arc::new(AtomicBool::new(false));
    let totals = Arc::new(Mutex::new(ServeSummary::default()));
    let accept = {
        let router = Arc::clone(&router);
        let stop = Arc::clone(&stop);
        let totals = Arc::clone(&totals);
        std::thread::Builder::new()
            .name("shard-accept".into())
            .spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_nonblocking(false);
                            let router = Arc::clone(&router);
                            let totals = Arc::clone(&totals);
                            let reorder = reorder.clone();
                            let conn = std::thread::spawn(move || {
                                let Ok(rd) = stream.try_clone() else {
                                    return;
                                };
                                let rd = std::io::BufReader::new(rd);
                                let wr = std::io::BufWriter::new(stream);
                                if let Ok(sum) =
                                    serve_shard_client_reordered(&router, &reorder, rd, wr)
                                {
                                    totals.lock().expect("totals poisoned").absorb(sum);
                                }
                            });
                            conns.push(conn);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            // Finished connections are reaped here so a
                            // long-lived server does not accumulate
                            // handles; a finished thread's handle can be
                            // dropped without joining.
                            conns.retain(|h| !h.is_finished());
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                // Drain: connected clients finish their sessions before
                // the router (and its Arc references) are released.
                for h in conns {
                    let _ = h.join();
                }
            })?
    };
    Ok(ShardServer {
        addr,
        stop,
        accept,
        router,
        totals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_core::PagerankOptions;
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::GraphBuilder;
    use std::io::{BufRead, BufReader, Write};
    use std::time::Duration;

    fn session() -> UpdateSession {
        let mut g = GraphBuilder::new(6)
            .edges([
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 0),
                (4, 5),
                (5, 0),
            ])
            .build_dyn()
            .unwrap();
        add_self_loops(&mut g);
        UpdateSession::new(
            g,
            Algorithm::DfLF,
            PagerankOptions::default().with_threads(1),
        )
    }

    fn start(workers: usize) -> TcpServer {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        spawn(session(), listener, workers).unwrap()
    }

    struct Client {
        conn: TcpStream,
        input: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let conn = TcpStream::connect(addr).unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            let input = BufReader::new(conn.try_clone().unwrap());
            Client { conn, input }
        }

        fn send(&mut self, cmd: &str) {
            writeln!(self.conn, "{cmd}").unwrap();
        }

        fn recv_line(&mut self) -> String {
            let mut line = String::new();
            self.input.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        }

        fn roundtrip(&mut self, cmd: &str) -> String {
            self.send(cmd);
            self.recv_line()
        }
    }

    #[test]
    fn two_clients_see_each_others_commits() {
        let server = start(2);
        let mut a = Client::connect(server.addr());
        let mut b = Client::connect(server.addr());
        assert!(a.roundtrip("stats").contains("epoch=0"));
        assert!(b.roundtrip("rank 1").ends_with("epoch=0"));
        // A commits; B's next read answers from the new epoch.
        assert_eq!(a.roundtrip("insert 3 1"), "staged 1");
        let ok = a.roundtrip("batch");
        assert!(ok.starts_with("ok batch=1"), "{ok}");
        assert!(ok.ends_with("epoch=1"), "{ok}");
        assert!(b.roundtrip("rank 1").ends_with("epoch=1"));
        assert_eq!(a.roundtrip("quit"), "bye");
        assert_eq!(b.roundtrip("quit"), "bye");
        let (session, totals) = server.stop();
        assert_eq!(session.steps(), 1);
        assert_eq!(totals.batches, 1);
        assert_eq!(totals.commands, 7);
    }

    #[test]
    fn conflicting_commit_is_rejected_not_fatal() {
        let server = start(2);
        let mut a = Client::connect(server.addr());
        let mut b = Client::connect(server.addr());
        // Both stage the same insertion against epoch 0.
        assert_eq!(a.roundtrip("insert 3 1"), "staged 1");
        assert_eq!(b.roundtrip("insert 3 1"), "staged 1");
        assert!(a.roundtrip("batch").starts_with("ok batch=1"));
        // B's commit now duplicates an existing edge: rejected, and the
        // connection (plus the server) lives on — with B's staged edits
        // restored for inspection.
        let reply = b.roundtrip("batch");
        assert!(reply.starts_with("err batch rejected"), "{reply}");
        let stats = b.roundtrip("stats");
        assert!(stats.contains("staged=1"), "staged edits lost: {stats}");
        assert!(stats.contains("epoch=1"));
        // B can repair the staged set and commit cleanly.
        assert_eq!(b.roundtrip("delete 3 1"), "staged 0");
        assert_eq!(b.roundtrip("insert 0 2"), "staged 1");
        assert!(b.roundtrip("batch").starts_with("ok batch=1"));
        drop(a);
        drop(b);
        let (session, _) = server.stop();
        assert_eq!(session.steps(), 2);
    }

    #[test]
    fn mid_line_disconnect_leaves_server_serving() {
        let server = start(1);
        {
            // Half a command, no newline, then a hard drop.
            let mut c = TcpStream::connect(server.addr()).unwrap();
            c.write_all(b"insert 3").unwrap();
        }
        {
            // Mid-session drop with a reply pending in the pipe.
            let mut c = Client::connect(server.addr());
            c.send("topk 3");
            drop(c);
        }
        // The single loop must still serve a well-behaved client.
        let mut c = Client::connect(server.addr());
        assert!(c.roundtrip("stats").contains("n=6"));
        assert_eq!(c.roundtrip("quit"), "bye");
        server.stop();
    }

    #[test]
    fn reads_carry_consistent_epoch_under_a_racing_writer() {
        let server = start(3);
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let reader = std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            let mut last_epoch = 0u64;
            let mut reads = 0u64;
            while !flag.load(Ordering::Relaxed) {
                let reply = c.roundtrip("rank 0");
                let epoch: u64 = reply.rsplit("epoch=").next().unwrap().parse().unwrap();
                assert!(epoch >= last_epoch, "epoch went backwards: {reply}");
                last_epoch = epoch;
                reads += 1;
            }
            (reads, last_epoch)
        });
        let mut w = Client::connect(addr);
        for edge in ["0 2", "0 3", "0 4", "0 5", "1 0"] {
            assert_eq!(w.roundtrip(&format!("insert {edge}")), "staged 1");
            let ok = w.roundtrip("batch");
            assert!(ok.starts_with("ok batch=1"), "{ok}");
        }
        stop.store(true, Ordering::Relaxed);
        let (reads, _) = reader.join().unwrap();
        assert!(reads > 0);
        drop(w);
        let (session, _) = server.stop();
        assert_eq!(session.steps(), 5);
    }

    #[test]
    fn disconnect_mid_commit_still_applies_and_frees_the_slot() {
        let server = start(1);
        let addr = server.addr();
        {
            // Stage, subscribe, fire the commit, vanish before the ack.
            let mut c = Client::connect(addr);
            assert!(c
                .roundtrip("subscribe 0 0")
                .starts_with("subscribed 0 eps="));
            assert_eq!(c.roundtrip("insert 3 1"), "staged 1");
            c.send("batch");
            drop(c);
        }
        // The commit must land even though nobody is waiting for it —
        // and the dead subscriber must not wedge the push scan.
        let mut c = Client::connect(addr);
        let mut epoch = 0;
        for _ in 0..100 {
            let stats = c.roundtrip("stats");
            epoch = stats
                .rsplit("epoch=")
                .next()
                .unwrap()
                .parse::<u64>()
                .unwrap();
            if epoch == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(epoch, 1, "orphaned commit never applied");
        // A follow-up commit proves the loop fully reaped the old conn.
        assert_eq!(c.roundtrip("insert 0 2"), "staged 1");
        assert!(c.roundtrip("batch").starts_with("ok batch=1"));
        assert_eq!(c.roundtrip("quit"), "bye");
        let (session, _) = server.stop();
        assert_eq!(session.steps(), 2);
    }

    #[test]
    fn subscriber_hears_a_push_without_polling() {
        let server = start(2);
        let mut sub = Client::connect(server.addr());
        assert!(sub
            .roundtrip("subscribe 1 0")
            .starts_with("subscribed 1 eps="));
        let mut w = Client::connect(server.addr());
        assert_eq!(w.roundtrip("insert 3 1"), "staged 1");
        assert!(w.roundtrip("batch").starts_with("ok batch=1"));
        // No command from the subscriber: the writer's wakeup delivers
        // the push block on its own.
        let head = sub.recv_line();
        assert!(head.starts_with("push 1 epoch=1"), "{head}");
        let line = sub.recv_line();
        assert!(line.starts_with("1 "), "{line}");
        assert_eq!(sub.roundtrip("quit"), "bye");
        assert_eq!(w.roundtrip("quit"), "bye");
        server.stop();
    }

    #[test]
    fn coalesce_merges_and_isolates_rejections() {
        // graph: edges from session() — (3, 1) absent, (0, 1) present.
        let s = session();
        let g = s.graph();
        let b = |dels: &[Edge], inss: &[Edge]| BatchUpdate {
            deletions: dels.to_vec(),
            insertions: inss.to_vec(),
        };
        // Client 1 inserts (3,1); client 2 duplicates it (rejected);
        // client 3 deletes (0,1); client 4 re-inserts (0,1) — net: one
        // insertion, with the cross-client delete/insert pair cancelled.
        let batches = [
            b(&[], &[(3, 1)]),
            b(&[], &[(3, 1)]),
            b(&[(0, 1)], &[]),
            b(&[], &[(0, 1)]),
        ];
        let (net, verdicts) = coalesce_batches(g, batches.iter());
        assert!(verdicts[0].is_ok());
        assert_eq!(
            verdicts[1].as_ref().unwrap_err(),
            "edge (3, 1) already exists"
        );
        assert!(verdicts[2].is_ok());
        assert!(verdicts[3].is_ok());
        assert_eq!(net.deletions, Vec::<Edge>::new());
        assert_eq!(net.insertions, vec![(3, 1)]);
        // The merged batch must be valid against the untouched graph.
        g.validate_batch(&net).unwrap();
    }
}
