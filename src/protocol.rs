//! The `lfpr serve` wire protocol, typed.
//!
//! One grammar, one encoder: [`Request`] and [`Response`] enums with
//! [`parse_request`]/[`encode_response`] (and their inverses) are the
//! single source of truth for the line protocol. The stdin loop
//! ([`crate::serve`]), the TCP server ([`crate::server`]) and the bench
//! client (`lfpr-bench`) all consume this module — none of them
//! hand-parses tokens or formats replies on its own.
//!
//! The full grammar is documented in `docs/PROTOCOL.md`. Wire frames
//! are lines: every request is one line; every response is one line
//! except the list-shaped ones (`topk`, `movers`, `push`, `views`),
//! whose head line carries the number of continuation lines that follow
//! ([`continuation_lines`]) — so a client can frame any reply without
//! knowing the verb that caused it.
//!
//! Round-trip laws (property-tested in `tests/proptests.rs`):
//!
//! * requests are exact: `parse_request(&encode_request(r)) == r` —
//!   floats are encoded with `{:e}` (shortest representation that
//!   parses back to the same value);
//! * responses are canonical: `encode(parse(encode(r))) == encode(r)`
//!   — ranks are formatted `{:.6e}` for human-stable output, which
//!   rounds, so a second trip is the identity but the first need not
//!   be.

use lfpr_core::RankDelta;
use std::fmt;

/// Version of the wire grammar, negotiated via the `hello` verb.
///
/// **Version 2** (the sharded serving tier) is a strict superset of
/// version 1: it adds the [`Handshake::V2`] hello form (shard topology
/// and capability tokens instead of a bare verb list), the multi-epoch
/// `epochs=<e0>,<e1>,…` field on aggregated replies ([`ShardEpochs`]),
/// and the ` queues=<q0>,<q1>,…` stats field. Servers fronting a single
/// unsharded session keep answering with the version-1 forms —
/// `hello lfpr/1 … verbs=…` and scalar `epoch=<e>` — so every v1
/// transcript (the PR 6 `serve_smoke*.expected` fixtures included)
/// remains byte-identical. Only a sharded server (`--shards ≥ 2`)
/// speaks the v2 forms.
pub const PROTOCOL_VERSION: u32 = 2;

/// Every verb the grammar understands, in documentation order.
pub const VERBS: &[&str] = &[
    "hello",
    "insert",
    "delete",
    "batch",
    "rank",
    "topk",
    "movers",
    "stats",
    "subscribe",
    "unsubscribe",
    "poll",
    "view",
    "views",
    "follow",
    "quit",
];

/// Longest accepted view name (`view add`).
pub const MAX_VIEW_NAME: usize = 32;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `hello` — protocol handshake.
    Hello,
    /// `insert <u> <v>` — stage an edge insertion.
    Insert { u: u32, v: u32 },
    /// `delete <u> <v>` — stage an edge deletion.
    Delete { u: u32, v: u32 },
    /// `batch` — commit the staged updates and refresh ranks.
    Batch,
    /// `rank <v> [view]` — rank of one vertex (optionally in a named
    /// view).
    Rank { v: u32, view: Option<String> },
    /// `topk <k> [view]` — the k highest-ranked vertices.
    TopK { k: usize, view: Option<String> },
    /// `movers <k> [view]` — the k largest rank changes of this epoch.
    Movers { k: usize, view: Option<String> },
    /// `stats` — session counters.
    Stats,
    /// `subscribe <v> <eps>` — push `(v, rank)` when v's rank drifts
    /// more than `eps` from the value last pushed (or subscribed at).
    Subscribe { v: u32, eps: f64 },
    /// `unsubscribe <v>` — cancel a subscription.
    Unsubscribe { v: u32 },
    /// `poll` — explicitly request pending pushes (always answered with
    /// a `push` block, possibly empty).
    Poll,
    /// `view add <name> <v[:w]>...` — create a personalized ranking
    /// view restarting at the given weighted sources.
    ViewAdd {
        name: String,
        sources: Vec<(u32, f64)>,
    },
    /// `view drop <name>` — remove a named view.
    ViewDrop { name: String },
    /// `views` — list the named views.
    Views,
    /// `follow [epoch]` — switch this connection to the replication
    /// feed. With an epoch the server answers `feed ok` when the
    /// follower is already current, otherwise (and always without an
    /// epoch) it streams a full resync; live delta frames follow either
    /// way. The feed sub-protocol is documented in `docs/DURABILITY.md`.
    Follow { since: Option<u64> },
    /// `quit` — end the session.
    Quit,
}

/// One `movers` entry: a vertex, its current rank, and its signed
/// change across the epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoverEntry {
    /// The vertex that moved.
    pub v: u32,
    /// Its rank at this epoch.
    pub rank: f64,
    /// Signed change from the previous epoch.
    pub delta: f64,
}

impl From<RankDelta> for MoverEntry {
    fn from(d: RankDelta) -> MoverEntry {
        MoverEntry {
            v: d.vertex,
            rank: d.new,
            delta: d.delta(),
        }
    }
}

/// The epoch stamp on an aggregated reply: a single session answers
/// from one commit counter, a sharded server from one per shard.
///
/// Wire forms:
///
/// * [`Single`](ShardEpochs::Single)`(e)` → `epoch=<e>` — byte-identical
///   to the scalar field of protocol v1, so unsharded replies are
///   unchanged;
/// * [`Sharded`](ShardEpochs::Sharded)`(v)` → `epochs=<e0>,<e1>,…` —
///   one entry per shard, in shard order. A sharded reply is *coherent
///   per shard*: every value attributed to shard `s` was read at
///   `epochs[s]`, but different shards may sit at different commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardEpochs {
    /// One session, one commit counter (protocol v1 byte form).
    Single(u64),
    /// One epoch per shard, indexed by shard id.
    Sharded(Vec<u64>),
}

impl ShardEpochs {
    /// The scalar epoch, when this is an unsharded stamp.
    pub fn scalar(&self) -> Option<u64> {
        match self {
            ShardEpochs::Single(e) => Some(*e),
            ShardEpochs::Sharded(_) => None,
        }
    }

    /// The newest epoch across shards (the scalar itself when single).
    pub fn newest(&self) -> u64 {
        match self {
            ShardEpochs::Single(e) => *e,
            ShardEpochs::Sharded(v) => v.iter().copied().max().unwrap_or(0),
        }
    }

    /// The wire field: `epoch=<e>` or `epochs=<e0>,<e1>,…`.
    fn encode(&self) -> String {
        match self {
            ShardEpochs::Single(e) => format!("epoch={e}"),
            ShardEpochs::Sharded(v) => format!("epochs={}", join_u64(v)),
        }
    }

    /// Recover the stamp from a reply head line.
    fn from_head(head: &str) -> Option<ShardEpochs> {
        if let Some(e) = field(head, "epoch") {
            return Some(ShardEpochs::Single(e));
        }
        let v = parse_u64_csv(field_str(head, "epochs")?)?;
        Some(ShardEpochs::Sharded(v))
    }
}

fn join_u64(v: &[u64]) -> String {
    let mut out = String::new();
    for (i, e) in v.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&e.to_string());
    }
    out
}

fn parse_u64_csv(s: &str) -> Option<Vec<u64>> {
    let mut v = Vec::new();
    for tok in s.split(',') {
        v.push(tok.parse().ok()?);
    }
    (!v.is_empty()).then_some(v)
}

/// Capability tokens a v2 handshake advertises — coarse feature groups
/// instead of v1's bare verb list, so a client checks what the server
/// *supports* rather than string-matching verbs.
pub mod caps {
    /// Staging, commits and reads: `insert`/`delete`/`batch`/`rank`/
    /// `topk`/`movers`/`stats`.
    pub const CORE: &str = "core";
    /// Rank subscriptions: `subscribe`/`unsubscribe`/`poll` + pushes.
    pub const SUBS: &str = "subs";
    /// Personalized ranking views: `view add`/`view drop`/`views`.
    pub const VIEWS: &str = "views";
    /// The replication feed: `follow`.
    pub const FOLLOW: &str = "follow";
    /// Mutations are write-ahead logged before they are acknowledged.
    pub const WAL: &str = "wal";
}

/// The `hello` reply, in its two wire generations.
///
/// [`V1`](Handshake::V1) always encodes as `hello lfpr/1 …` regardless
/// of [`PROTOCOL_VERSION`]: it *is* the version-1 grammar, and single-
/// session servers keep speaking it so historical transcripts stay
/// byte-identical. [`V2`](Handshake::V2) is the sharded form.
#[derive(Debug, Clone, PartialEq)]
pub enum Handshake {
    /// `hello lfpr/1 algo=<algo> verbs=<v1,v2,...>`
    V1 {
        /// The serving algorithm (e.g. `DFLF`).
        algorithm: String,
        /// Every verb the grammar understands.
        verbs: Vec<String>,
    },
    /// `hello lfpr/2 algo=<algo> shards=<n> strategy=<s> caps=<c1,c2,...>`
    V2 {
        /// The serving algorithm (uniform across shards).
        algorithm: String,
        /// Number of session shards behind this server.
        shards: usize,
        /// Vertex-partitioning strategy (e.g. `block`).
        strategy: String,
        /// Capability tokens (see [`caps`]), in advertised order.
        caps: Vec<String>,
    },
}

/// A server reply (one line, or a head line plus
/// [`continuation_lines`] continuation lines).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The handshake — see [`Handshake`] for both wire forms.
    Hello(Handshake),
    /// `staged <count>`
    Staged { count: usize },
    /// `ok batch=<k> m=<m> status=<s> iters=<i> epoch=<e>` — a sharded
    /// commit carries `epochs=<e0>,…` instead (the per-shard epochs the
    /// scattered sub-batches landed at).
    BatchOk {
        batch: usize,
        m: usize,
        status: String,
        iters: usize,
        epochs: ShardEpochs,
    },
    /// `rank <v> <rank> epoch=<e>[ view=<name>]` — always scalar: one
    /// vertex lives on exactly one shard.
    Rank {
        v: u32,
        rank: f64,
        epoch: u64,
        view: Option<String>,
    },
    /// `topk <len> epoch=<e>[ view=<name>]` + `<v> <rank>` lines —
    /// merged across shards under `epochs=…` on a sharded server.
    TopK {
        entries: Vec<(u32, f64)>,
        epochs: ShardEpochs,
        view: Option<String>,
    },
    /// `movers <len> epoch=<e>[ view=<name>]` + `<v> <rank> <delta>`
    /// lines — merged across shards under `epochs=…` on a sharded
    /// server.
    Movers {
        entries: Vec<MoverEntry>,
        epochs: ShardEpochs,
        view: Option<String>,
    },
    /// `stats n=<n> m=<m> steps=<s> staged=<k> algo=<a> epoch=<e>` —
    /// plus ` wal_epoch=<we> wal_bytes=<wb>` when durability is on,
    /// ` slack=<permille>` when the session runs the gapped store, and
    /// ` queues=<q0>,<q1>,…` (per-shard writer queue depth) on a
    /// sharded server.
    Stats {
        n: usize,
        m: usize,
        steps: u64,
        staged: usize,
        algo: String,
        epochs: ShardEpochs,
        /// `(wal_epoch, wal_bytes)` — present only when the server runs
        /// with a write-ahead log, so non-durable transcripts keep
        /// their historical bytes. A sharded server reports the oldest
        /// shard WAL epoch and the summed bytes.
        wal: Option<(u64, u64)>,
        /// Gapped-store slot occupancy in permille (edges per reserved
        /// slot) — present only when the session commits through the
        /// gap-aware CSR, so packed transcripts keep their bytes.
        slack: Option<u64>,
        /// Writer queue depth per shard (requests accepted but not yet
        /// applied), indexed by shard id — present only on a sharded
        /// server, so clients can back off under commit pressure.
        queues: Option<Vec<u64>>,
    },
    /// `subscribed <v> eps=<eps>`
    Subscribed { v: u32, eps: f64 },
    /// `unsubscribed <v>`
    Unsubscribed { v: u32 },
    /// `push <len> epoch=<e>` + `<v> <rank>` lines
    Push {
        entries: Vec<(u32, f64)>,
        epoch: u64,
    },
    /// `ok view <name> sources=<k> epoch=<e>`
    ViewAdded {
        name: String,
        sources: usize,
        epoch: u64,
    },
    /// `ok dropped view <name>`
    ViewDropped { name: String },
    /// `views <len>` + `<name> sources=<k>` lines
    Views { entries: Vec<(String, usize)> },
    /// `bye`
    Bye,
    /// `err <message>`
    Error(ServeError),
}

/// Every error the serve layer reports, with a stable wire encoding
/// (`err ` + [`fmt::Display`]). The texts are byte-compatible with the
/// historical ad-hoc strings — `tests/data/serve_smoke.expected` pins
/// them.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A vertex argument did not parse as an integer id.
    BadVertexId(String),
    /// A vertex id parsed but exceeds the graph's vertex count.
    VertexOutOfRange { id: u32, n: usize },
    /// `rank` argument that is not a known vertex (including
    /// non-integer tokens, for historical compatibility).
    UnknownVertex(String),
    /// A count argument (`topk`/`movers`) did not parse.
    NeedsInteger(&'static str),
    /// `insert` of an edge the graph already has.
    EdgeExists(u32, u32),
    /// `insert`/`delete` of an edge already staged.
    EdgeAlreadyStaged(u32, u32),
    /// `delete` of an edge the graph does not have.
    EdgeMissing(u32, u32),
    /// `delete` of a self-loop (they implement dead-end elimination).
    SelfLoopDelete(u32, u32),
    /// The staged batch failed validation at commit time.
    BatchRejected(String),
    /// Unknown verb (the full command line is echoed).
    UnknownCommand(String),
    /// A named view that does not exist.
    UnknownView(String),
    /// `view add` with a name already in use.
    ViewExists(String),
    /// A view name violating the grammar (must start with a letter,
    /// use only `[A-Za-z0-9_-]`, and fit in [`MAX_VIEW_NAME`] bytes).
    BadViewName(String),
    /// `view add default` — the default ranking's name is reserved.
    ReservedViewName(String),
    /// A float argument (`eps`, `weight`) that did not parse or is out
    /// of domain.
    BadNumber { what: &'static str, token: String },
    /// `view add` with no source vertices.
    NoSources,
    /// `unsubscribe` for a vertex with no subscription.
    NotSubscribed(u32),
    /// `view add` rejected by the session (duplicate source, race, …).
    ViewRejected(String),
    /// `follow` on a transport that cannot stream (the stdin loop).
    FollowNeedsTcp,
    /// `follow` on a server that renumbered its vertices at load time.
    /// The feed carries internal ids a follower cannot translate, so
    /// replication is refused rather than silently diverging.
    FollowReordered,
    /// A mutating verb sent to a replica, which only serves reads.
    ReadOnlyReplica,
    /// The write-ahead log is wedged (an append or fsync failed); the
    /// server refuses further mutations rather than silently diverge
    /// from its log.
    WalUnavailable(String),
    /// `--recover` could not load a usable checkpoint (missing path,
    /// bad header, checksum mismatch).
    RecoverFailed(String),
    /// A verb the sharded server does not implement (`views`, `follow`):
    /// the capability tokens in the v2 handshake advertise exactly what
    /// is served, and anything outside that surface is refused by name
    /// rather than answered incoherently across shards.
    ShardedUnavailable(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadVertexId(s) => write!(f, "bad vertex id {s}"),
            ServeError::VertexOutOfRange { id, n } => {
                write!(f, "vertex {id} out of range (n = {n})")
            }
            ServeError::UnknownVertex(s) => write!(f, "unknown vertex {s}"),
            ServeError::NeedsInteger(what) => write!(f, "{what} needs an integer"),
            ServeError::EdgeExists(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            ServeError::EdgeAlreadyStaged(u, v) => write!(f, "edge ({u}, {v}) already staged"),
            ServeError::EdgeMissing(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            ServeError::SelfLoopDelete(u, v) => write!(
                f,
                "refusing to delete self-loop ({u}, {v}): dead-end elimination"
            ),
            ServeError::BatchRejected(msg) => write!(f, "batch rejected: {msg}"),
            ServeError::UnknownCommand(line) => write!(f, "unknown command: {line}"),
            ServeError::UnknownView(name) => write!(f, "unknown view {name}"),
            ServeError::ViewExists(name) => write!(f, "view {name} already exists"),
            ServeError::BadViewName(name) => write!(f, "bad view name {name}"),
            ServeError::ReservedViewName(name) => write!(f, "view name {name} is reserved"),
            ServeError::BadNumber { what, token } => write!(f, "bad {what} {token}"),
            ServeError::NoSources => write!(f, "view add needs at least one source vertex"),
            ServeError::NotSubscribed(v) => write!(f, "not subscribed to vertex {v}"),
            ServeError::ViewRejected(msg) => write!(f, "view rejected: {msg}"),
            ServeError::FollowNeedsTcp => write!(f, "follow requires --tcp"),
            ServeError::FollowReordered => {
                write!(f, "follow unavailable: server reorders vertex ids")
            }
            ServeError::ReadOnlyReplica => write!(f, "read-only replica"),
            ServeError::WalUnavailable(msg) => write!(f, "wal unavailable: {msg}"),
            ServeError::RecoverFailed(msg) => write!(f, "recover failed: {msg}"),
            ServeError::ShardedUnavailable(verb) => {
                write!(f, "{verb} unavailable on a sharded server")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Is `name` a well-formed view name? (Letter first, then letters,
/// digits, `_` or `-`, at most [`MAX_VIEW_NAME`] bytes.)
pub fn valid_view_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() => {}
        _ => return false,
    }
    name.len() <= MAX_VIEW_NAME && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_view_name(token: &str) -> Result<String, ServeError> {
    if token == "default" {
        return Err(ServeError::ReservedViewName(token.into()));
    }
    if !valid_view_name(token) {
        return Err(ServeError::BadViewName(token.into()));
    }
    Ok(token.to_string())
}

fn parse_vertex(token: &str) -> Result<u32, ServeError> {
    token
        .parse()
        .map_err(|_| ServeError::BadVertexId(token.into()))
}

/// Parse one request line. `None` means the line carries no command
/// (blank, or a `#` comment) and deserves no reply; a grammar-level
/// error (bad number, unknown verb, …) is `Some(Err(_))` so the caller
/// can reply `err …` without touching the session.
pub fn parse_request(line: &str) -> Option<Result<Request, ServeError>> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.is_empty() || tokens[0].starts_with('#') {
        return None;
    }
    Some(parse_request_tokens(&tokens))
}

fn parse_request_tokens(tokens: &[&str]) -> Result<Request, ServeError> {
    match tokens {
        ["hello"] => Ok(Request::Hello),
        ["insert", u, v] => Ok(Request::Insert {
            u: parse_vertex(u)?,
            v: parse_vertex(v)?,
        }),
        ["delete", u, v] => Ok(Request::Delete {
            u: parse_vertex(u)?,
            v: parse_vertex(v)?,
        }),
        ["batch"] => Ok(Request::Batch),
        ["rank", v] | ["rank", v, _] => {
            // Historical reply shape: a non-integer token is reported as
            // an unknown vertex, not a syntax error.
            let vid: u32 = v
                .parse()
                .map_err(|_| ServeError::UnknownVertex(v.to_string()))?;
            let view = match tokens {
                [_, _, name] => Some(parse_view_name(name)?),
                _ => None,
            };
            Ok(Request::Rank { v: vid, view })
        }
        ["topk", k] | ["topk", k, _] => {
            let k: usize = k.parse().map_err(|_| ServeError::NeedsInteger("topk"))?;
            let view = match tokens {
                [_, _, name] => Some(parse_view_name(name)?),
                _ => None,
            };
            Ok(Request::TopK { k, view })
        }
        ["movers", k] | ["movers", k, _] => {
            let k: usize = k.parse().map_err(|_| ServeError::NeedsInteger("movers"))?;
            let view = match tokens {
                [_, _, name] => Some(parse_view_name(name)?),
                _ => None,
            };
            Ok(Request::Movers { k, view })
        }
        ["stats"] => Ok(Request::Stats),
        ["subscribe", v, eps] => {
            let vid = parse_vertex(v)?;
            let e: f64 = eps.parse().map_err(|_| ServeError::BadNumber {
                what: "eps",
                token: eps.to_string(),
            })?;
            if !(e.is_finite() && e >= 0.0) {
                return Err(ServeError::BadNumber {
                    what: "eps",
                    token: eps.to_string(),
                });
            }
            Ok(Request::Subscribe { v: vid, eps: e })
        }
        ["unsubscribe", v] => Ok(Request::Unsubscribe {
            v: parse_vertex(v)?,
        }),
        ["poll"] => Ok(Request::Poll),
        ["view", "add", name, sources @ ..] => {
            let name = parse_view_name(name)?;
            if sources.is_empty() {
                return Err(ServeError::NoSources);
            }
            let mut parsed = Vec::with_capacity(sources.len());
            for s in sources {
                let (v, w) = match s.split_once(':') {
                    Some((v, w)) => {
                        let weight: f64 = w.parse().map_err(|_| ServeError::BadNumber {
                            what: "weight",
                            token: w.to_string(),
                        })?;
                        if !(weight.is_finite() && weight > 0.0) {
                            return Err(ServeError::BadNumber {
                                what: "weight",
                                token: w.to_string(),
                            });
                        }
                        (parse_vertex(v)?, weight)
                    }
                    None => (parse_vertex(s)?, 1.0),
                };
                parsed.push((v, w));
            }
            Ok(Request::ViewAdd {
                name,
                sources: parsed,
            })
        }
        ["view", "drop", name] => Ok(Request::ViewDrop {
            name: parse_view_name(name)?,
        }),
        ["views"] => Ok(Request::Views),
        ["follow"] => Ok(Request::Follow { since: None }),
        ["follow", epoch] => {
            let since = epoch
                .parse()
                .map_err(|_| ServeError::NeedsInteger("follow"))?;
            Ok(Request::Follow { since: Some(since) })
        }
        ["quit"] => Ok(Request::Quit),
        _ => Err(ServeError::UnknownCommand(tokens.join(" "))),
    }
}

/// Encode a request as one protocol line (no trailing newline).
/// Floats use `{:e}` — the shortest form that parses back exactly, so
/// `parse_request(&encode_request(r)) == r` holds for every request.
pub fn encode_request(r: &Request) -> String {
    match r {
        Request::Hello => "hello".into(),
        Request::Insert { u, v } => format!("insert {u} {v}"),
        Request::Delete { u, v } => format!("delete {u} {v}"),
        Request::Batch => "batch".into(),
        Request::Rank { v, view } => match view {
            Some(name) => format!("rank {v} {name}"),
            None => format!("rank {v}"),
        },
        Request::TopK { k, view } => match view {
            Some(name) => format!("topk {k} {name}"),
            None => format!("topk {k}"),
        },
        Request::Movers { k, view } => match view {
            Some(name) => format!("movers {k} {name}"),
            None => format!("movers {k}"),
        },
        Request::Stats => "stats".into(),
        Request::Subscribe { v, eps } => format!("subscribe {v} {eps:e}"),
        Request::Unsubscribe { v } => format!("unsubscribe {v}"),
        Request::Poll => "poll".into(),
        Request::ViewAdd { name, sources } => {
            let mut out = format!("view add {name}");
            for (v, w) in sources {
                out.push_str(&format!(" {v}:{w:e}"));
            }
            out
        }
        Request::ViewDrop { name } => format!("view drop {name}"),
        Request::Views => "views".into(),
        Request::Follow { since } => match since {
            Some(epoch) => format!("follow {epoch}"),
            None => "follow".into(),
        },
        Request::Quit => "quit".into(),
    }
}

/// Format a rank for the wire: 7 significant digits, scientific.
fn fmt_rank(r: f64) -> String {
    format!("{r:.6e}")
}

/// Encode a response block (head line plus continuation lines joined
/// with `\n`; no trailing newline). Ranks use `{:.6e}` — stable,
/// human-scannable, byte-diffable output.
pub fn encode_response(resp: &Response) -> String {
    let view_suffix = |view: &Option<String>| match view {
        Some(name) => format!(" view={name}"),
        None => String::new(),
    };
    match resp {
        Response::Hello(Handshake::V1 { algorithm, verbs }) => format!(
            "hello lfpr/1 algo={algorithm} verbs={}",
            verbs.join(",")
        ),
        Response::Hello(Handshake::V2 {
            algorithm,
            shards,
            strategy,
            caps,
        }) => format!(
            "hello lfpr/{PROTOCOL_VERSION} algo={algorithm} shards={shards} strategy={strategy} caps={}",
            caps.join(",")
        ),
        Response::Staged { count } => format!("staged {count}"),
        Response::BatchOk {
            batch,
            m,
            status,
            iters,
            epochs,
        } => format!(
            "ok batch={batch} m={m} status={status} iters={iters} {}",
            epochs.encode()
        ),
        Response::Rank {
            v,
            rank,
            epoch,
            view,
        } => format!(
            "rank {v} {} epoch={epoch}{}",
            fmt_rank(*rank),
            view_suffix(view)
        ),
        Response::TopK {
            entries,
            epochs,
            view,
        } => {
            let mut out = format!(
                "topk {} {}{}",
                entries.len(),
                epochs.encode(),
                view_suffix(view)
            );
            for (v, r) in entries {
                out.push_str(&format!("\n{v} {}", fmt_rank(*r)));
            }
            out
        }
        Response::Movers {
            entries,
            epochs,
            view,
        } => {
            let mut out = format!(
                "movers {} {}{}",
                entries.len(),
                epochs.encode(),
                view_suffix(view)
            );
            for e in entries {
                out.push_str(&format!(
                    "\n{} {} {}",
                    e.v,
                    fmt_rank(e.rank),
                    fmt_rank(e.delta)
                ));
            }
            out
        }
        Response::Stats {
            n,
            m,
            steps,
            staged,
            algo,
            epochs,
            wal,
            slack,
            queues,
        } => {
            let mut out = format!(
                "stats n={n} m={m} steps={steps} staged={staged} algo={algo} {}",
                epochs.encode()
            );
            if let Some((we, wb)) = wal {
                out.push_str(&format!(" wal_epoch={we} wal_bytes={wb}"));
            }
            if let Some(s) = slack {
                out.push_str(&format!(" slack={s}"));
            }
            if let Some(q) = queues {
                out.push_str(&format!(" queues={}", join_u64(q)));
            }
            out
        }
        Response::Subscribed { v, eps } => format!("subscribed {v} eps={eps:e}"),
        Response::Unsubscribed { v } => format!("unsubscribed {v}"),
        Response::Push { entries, epoch } => {
            let mut out = format!("push {} epoch={epoch}", entries.len());
            for (v, r) in entries {
                out.push_str(&format!("\n{v} {}", fmt_rank(*r)));
            }
            out
        }
        Response::ViewAdded {
            name,
            sources,
            epoch,
        } => format!("ok view {name} sources={sources} epoch={epoch}"),
        Response::ViewDropped { name } => format!("ok dropped view {name}"),
        Response::Views { entries } => {
            let mut out = format!("views {}", entries.len());
            for (name, sources) in entries {
                out.push_str(&format!("\n{name} sources={sources}"));
            }
            out
        }
        Response::Bye => "bye".into(),
        Response::Error(e) => format!("err {e}"),
    }
}

/// How many continuation lines follow a response head line. Zero for
/// single-line replies; the count embedded in the head for the
/// list-shaped ones (`topk`, `movers`, `push`, `views`). This is the
/// only framing rule a client needs.
pub fn continuation_lines(head: &str) -> usize {
    let mut it = head.split_whitespace();
    match (it.next(), it.next()) {
        (Some("topk" | "movers" | "push" | "views"), Some(count)) => count.parse().unwrap_or(0),
        _ => 0,
    }
}

/// Extract `key=value` (exact token match) from a reply line as an
/// integer. `stats n=200 …` → `field(line, "n") == Some(200)`.
pub fn field(line: &str, key: &str) -> Option<u64> {
    line.split_whitespace().find_map(|tok| {
        let (k, v) = tok.split_once('=')?;
        (k == key).then(|| v.parse().ok())?
    })
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace().find_map(|tok| {
        let (k, v) = tok.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// Parse a full response block (head + continuation lines, as produced
/// by [`encode_response`]). Returns `None` for text that is not a
/// well-formed reply. Because ranks are rounded on encode, the law is
/// canonical-form idempotence, not exactness: see the module docs.
pub fn parse_response(block: &str) -> Option<Response> {
    let mut lines = block.lines();
    let head = lines.next()?;
    let tokens: Vec<&str> = head.split_whitespace().collect();
    let tail: Vec<&str> = lines.collect();
    let expect_tail = continuation_lines(head);
    if tail.len() != expect_tail {
        return None;
    }
    let view_of = |head: &str| field_str(head, "view").map(str::to_string);
    match tokens.as_slice() {
        ["hello", ident, ..] => {
            let _version: u32 = ident.strip_prefix("lfpr/")?.parse().ok()?;
            let algorithm = field_str(head, "algo")?.to_string();
            // The field set, not the version number, selects the form:
            // v1 carries `verbs=`, v2 carries `shards=`/`caps=`.
            if let Some(verbs) = field_str(head, "verbs") {
                Some(Response::Hello(Handshake::V1 {
                    algorithm,
                    verbs: verbs.split(',').map(str::to_string).collect(),
                }))
            } else {
                Some(Response::Hello(Handshake::V2 {
                    algorithm,
                    shards: field(head, "shards")? as usize,
                    strategy: field_str(head, "strategy")?.to_string(),
                    caps: field_str(head, "caps")?
                        .split(',')
                        .map(str::to_string)
                        .collect(),
                }))
            }
        }
        ["staged", count] => Some(Response::Staged {
            count: count.parse().ok()?,
        }),
        ["ok", "view", name, ..] => Some(Response::ViewAdded {
            name: name.to_string(),
            sources: field(head, "sources")? as usize,
            epoch: field(head, "epoch")?,
        }),
        ["ok", "dropped", "view", name] => Some(Response::ViewDropped {
            name: name.to_string(),
        }),
        ["ok", ..] => Some(Response::BatchOk {
            batch: field(head, "batch")? as usize,
            m: field(head, "m")? as usize,
            status: field_str(head, "status")?.to_string(),
            iters: field(head, "iters")? as usize,
            epochs: ShardEpochs::from_head(head)?,
        }),
        ["rank", v, rank, ..] => Some(Response::Rank {
            v: v.parse().ok()?,
            rank: rank.parse().ok()?,
            epoch: field(head, "epoch")?,
            view: view_of(head),
        }),
        ["topk", ..] => Some(Response::TopK {
            entries: parse_rank_lines(&tail)?,
            epochs: ShardEpochs::from_head(head)?,
            view: view_of(head),
        }),
        ["movers", ..] => {
            let mut entries = Vec::with_capacity(tail.len());
            for line in &tail {
                let mut it = line.split_whitespace();
                entries.push(MoverEntry {
                    v: it.next()?.parse().ok()?,
                    rank: it.next()?.parse().ok()?,
                    delta: it.next()?.parse().ok()?,
                });
                if it.next().is_some() {
                    return None;
                }
            }
            Some(Response::Movers {
                entries,
                epochs: ShardEpochs::from_head(head)?,
                view: view_of(head),
            })
        }
        ["stats", ..] => Some(Response::Stats {
            n: field(head, "n")? as usize,
            m: field(head, "m")? as usize,
            steps: field(head, "steps")?,
            staged: field(head, "staged")? as usize,
            algo: field_str(head, "algo")?.to_string(),
            epochs: ShardEpochs::from_head(head)?,
            wal: match (field(head, "wal_epoch"), field(head, "wal_bytes")) {
                (Some(we), Some(wb)) => Some((we, wb)),
                _ => None,
            },
            slack: field(head, "slack"),
            queues: field_str(head, "queues").and_then(parse_u64_csv),
        }),
        ["subscribed", v, ..] => Some(Response::Subscribed {
            v: v.parse().ok()?,
            eps: field_str(head, "eps")?.parse().ok()?,
        }),
        ["unsubscribed", v] => Some(Response::Unsubscribed { v: v.parse().ok()? }),
        ["push", ..] => Some(Response::Push {
            entries: parse_rank_lines(&tail)?,
            epoch: field(head, "epoch")?,
        }),
        ["views", ..] => {
            let mut entries = Vec::with_capacity(tail.len());
            for line in &tail {
                let mut it = line.split_whitespace();
                let name = it.next()?.to_string();
                let sources = field(line, "sources")? as usize;
                entries.push((name, sources));
            }
            Some(Response::Views { entries })
        }
        ["bye"] => Some(Response::Bye),
        ["err", ..] => Some(Response::Error(parse_error(head.strip_prefix("err ")?)?)),
        _ => None,
    }
}

fn parse_rank_lines(tail: &[&str]) -> Option<Vec<(u32, f64)>> {
    let mut entries = Vec::with_capacity(tail.len());
    for line in tail {
        let mut it = line.split_whitespace();
        let v: u32 = it.next()?.parse().ok()?;
        let r: f64 = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        entries.push((v, r));
    }
    Some(entries)
}

/// Reconstruct a [`ServeError`] from its wire text (everything after
/// `err `). Total over text this module emits; `None` otherwise.
fn parse_error(msg: &str) -> Option<ServeError> {
    if let Some(rest) = msg.strip_prefix("bad vertex id ") {
        return Some(ServeError::BadVertexId(rest.to_string()));
    }
    if let Some(rest) = msg.strip_prefix("bad view name ") {
        return Some(ServeError::BadViewName(rest.to_string()));
    }
    if let Some(rest) = msg.strip_prefix("bad eps ") {
        return Some(ServeError::BadNumber {
            what: "eps",
            token: rest.to_string(),
        });
    }
    if let Some(rest) = msg.strip_prefix("bad weight ") {
        return Some(ServeError::BadNumber {
            what: "weight",
            token: rest.to_string(),
        });
    }
    if let Some(rest) = msg.strip_prefix("unknown vertex ") {
        return Some(ServeError::UnknownVertex(rest.to_string()));
    }
    if let Some(rest) = msg.strip_prefix("unknown command: ") {
        return Some(ServeError::UnknownCommand(rest.to_string()));
    }
    if let Some(rest) = msg.strip_prefix("unknown view ") {
        return Some(ServeError::UnknownView(rest.to_string()));
    }
    if let Some(rest) = msg.strip_prefix("batch rejected: ") {
        return Some(ServeError::BatchRejected(rest.to_string()));
    }
    if let Some(rest) = msg.strip_prefix("view rejected: ") {
        return Some(ServeError::ViewRejected(rest.to_string()));
    }
    if let Some(rest) = msg.strip_prefix("not subscribed to vertex ") {
        return Some(ServeError::NotSubscribed(rest.parse().ok()?));
    }
    if msg == "view add needs at least one source vertex" {
        return Some(ServeError::NoSources);
    }
    if let Some(rest) = msg.strip_prefix("view name ") {
        let name = rest.strip_suffix(" is reserved")?;
        return Some(ServeError::ReservedViewName(name.to_string()));
    }
    if let Some(rest) = msg.strip_prefix("vertex ") {
        // "vertex {id} out of range (n = {n})"
        let (id, rest) = rest.split_once(" out of range (n = ")?;
        let n = rest.strip_suffix(')')?;
        return Some(ServeError::VertexOutOfRange {
            id: id.parse().ok()?,
            n: n.parse().ok()?,
        });
    }
    if let Some(rest) = msg.strip_prefix("refusing to delete self-loop (") {
        let rest = rest.strip_suffix("): dead-end elimination")?;
        let (u, v) = rest.split_once(", ")?;
        return Some(ServeError::SelfLoopDelete(u.parse().ok()?, v.parse().ok()?));
    }
    if let Some(rest) = msg.strip_prefix("edge (") {
        let (pair, suffix) = rest.split_once(')')?;
        let (u, v) = pair.split_once(", ")?;
        let (u, v) = (u.parse().ok()?, v.parse().ok()?);
        return Some(match suffix {
            " already exists" => ServeError::EdgeExists(u, v),
            " already staged" => ServeError::EdgeAlreadyStaged(u, v),
            " does not exist" => ServeError::EdgeMissing(u, v),
            _ => return None,
        });
    }
    if let Some(rest) = msg.strip_prefix("view ") {
        let name = rest.strip_suffix(" already exists")?;
        return Some(ServeError::ViewExists(name.to_string()));
    }
    if let Some(what) = msg.strip_suffix(" needs an integer") {
        return Some(match what {
            "topk" => ServeError::NeedsInteger("topk"),
            "movers" => ServeError::NeedsInteger("movers"),
            "follow" => ServeError::NeedsInteger("follow"),
            _ => return None,
        });
    }
    if msg == "follow requires --tcp" {
        return Some(ServeError::FollowNeedsTcp);
    }
    if msg == "follow unavailable: server reorders vertex ids" {
        return Some(ServeError::FollowReordered);
    }
    if msg == "read-only replica" {
        return Some(ServeError::ReadOnlyReplica);
    }
    if let Some(rest) = msg.strip_prefix("wal unavailable: ") {
        return Some(ServeError::WalUnavailable(rest.to_string()));
    }
    if let Some(rest) = msg.strip_prefix("recover failed: ") {
        return Some(ServeError::RecoverFailed(rest.to_string()));
    }
    if let Some(verb) = msg.strip_suffix(" unavailable on a sharded server") {
        return Some(ServeError::ShardedUnavailable(verb.to_string()));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_blanks_are_silent() {
        assert!(parse_request("").is_none());
        assert!(parse_request("   ").is_none());
        assert!(parse_request("# a comment").is_none());
        assert!(parse_request("#insert 1 2").is_none());
    }

    #[test]
    fn legacy_error_strings_are_stable() {
        // These exact bytes are pinned by tests/data/serve_smoke.expected.
        let err = match parse_request("insert x 2").unwrap() {
            Err(e) => e,
            Ok(r) => panic!("parsed {r:?}"),
        };
        assert_eq!(err.to_string(), "bad vertex id x");
        assert_eq!(
            ServeError::EdgeAlreadyStaged(10, 20).to_string(),
            "edge (10, 20) already staged"
        );
        assert_eq!(
            ServeError::SelfLoopDelete(0, 0).to_string(),
            "refusing to delete self-loop (0, 0): dead-end elimination"
        );
        assert_eq!(
            ServeError::VertexOutOfRange { id: 500, n: 200 }.to_string(),
            "vertex 500 out of range (n = 200)"
        );
        assert_eq!(
            ServeError::NeedsInteger("topk").to_string(),
            "topk needs an integer"
        );
        let err = match parse_request("frobnicate 12").unwrap() {
            Err(e) => e,
            Ok(r) => panic!("parsed {r:?}"),
        };
        assert_eq!(err.to_string(), "unknown command: frobnicate 12");
    }

    #[test]
    fn durability_error_strings_are_stable() {
        // Pinned by tests/data/recovery_smoke.expected and the recovery
        // integration tests: recovery refusals must be bytes, not
        // ad-hoc io::Error bubbles.
        assert_eq!(
            ServeError::FollowNeedsTcp.to_string(),
            "follow requires --tcp"
        );
        assert_eq!(ServeError::ReadOnlyReplica.to_string(), "read-only replica");
        assert_eq!(
            ServeError::FollowReordered.to_string(),
            "follow unavailable: server reorders vertex ids"
        );
        assert_eq!(
            ServeError::WalUnavailable("wal append failed: disk full".into()).to_string(),
            "wal unavailable: wal append failed: disk full"
        );
        assert_eq!(
            ServeError::RecoverFailed("checkpoint checksum mismatch".into()).to_string(),
            "recover failed: checkpoint checksum mismatch"
        );
        assert_eq!(
            ServeError::ShardedUnavailable("views".into()).to_string(),
            "views unavailable on a sharded server"
        );
    }

    #[test]
    fn follow_parses_with_and_without_an_epoch() {
        assert_eq!(
            parse_request("follow").unwrap().unwrap(),
            Request::Follow { since: None }
        );
        assert_eq!(
            parse_request("follow 42").unwrap().unwrap(),
            Request::Follow { since: Some(42) }
        );
        assert!(matches!(
            parse_request("follow x").unwrap(),
            Err(ServeError::NeedsInteger("follow"))
        ));
        assert!(VERBS.contains(&"follow"));
    }

    #[test]
    fn view_names_are_validated() {
        assert!(valid_view_name("a"));
        assert!(valid_view_name("near-3_x"));
        assert!(!valid_view_name(""));
        assert!(!valid_view_name("3abc"));
        assert!(!valid_view_name("has space"));
        assert!(!valid_view_name(&"x".repeat(40)));
        assert!(matches!(
            parse_request("view add default 1").unwrap(),
            Err(ServeError::ReservedViewName(_))
        ));
        assert!(matches!(
            parse_request("view add 9bad 1").unwrap(),
            Err(ServeError::BadViewName(_))
        ));
        assert!(matches!(
            parse_request("view add ok").unwrap(),
            Err(ServeError::NoSources)
        ));
    }

    #[test]
    fn weighted_sources_parse() {
        let r = parse_request("view add ego 3:0.75 7:0.25 9")
            .unwrap()
            .unwrap();
        assert_eq!(
            r,
            Request::ViewAdd {
                name: "ego".into(),
                sources: vec![(3, 0.75), (7, 0.25), (9, 1.0)],
            }
        );
        assert!(matches!(
            parse_request("view add ego 3:nope").unwrap(),
            Err(ServeError::BadNumber { what: "weight", .. })
        ));
        assert!(matches!(
            parse_request("view add ego 3:-1").unwrap(),
            Err(ServeError::BadNumber { what: "weight", .. })
        ));
    }

    #[test]
    fn subscribe_eps_must_be_a_finite_nonnegative_float() {
        assert_eq!(
            parse_request("subscribe 4 1e-7").unwrap().unwrap(),
            Request::Subscribe { v: 4, eps: 1e-7 }
        );
        assert_eq!(
            parse_request("subscribe 4 0").unwrap().unwrap(),
            Request::Subscribe { v: 4, eps: 0.0 }
        );
        for bad in ["subscribe 4 x", "subscribe 4 -1", "subscribe 4 inf"] {
            assert!(
                matches!(
                    parse_request(bad).unwrap(),
                    Err(ServeError::BadNumber { what: "eps", .. })
                ),
                "{bad}"
            );
        }
    }

    #[test]
    fn framing_counts_come_from_the_head_line() {
        assert_eq!(continuation_lines("topk 5 epoch=1"), 5);
        assert_eq!(continuation_lines("movers 2 epoch=4 view=x"), 2);
        assert_eq!(continuation_lines("push 0 epoch=9"), 0);
        assert_eq!(continuation_lines("views 3"), 3);
        assert_eq!(continuation_lines("rank 0 4.2e-3 epoch=1"), 0);
        assert_eq!(continuation_lines("stats n=200"), 0);
        assert_eq!(continuation_lines("bye"), 0);
    }

    #[test]
    fn field_matches_exact_tokens_only() {
        let line = "ok batch=2 m=1002 status=converged iters=77 epoch=1";
        assert_eq!(field(line, "batch"), Some(2));
        assert_eq!(field(line, "m"), Some(1002));
        assert_eq!(field(line, "epoch"), Some(1));
        assert_eq!(field(line, "atch"), None);
        assert_eq!(field(line, "status"), None, "non-integer value");
        assert_eq!(field("x mm=9", "m"), None);
    }

    #[test]
    fn request_roundtrip_spot_checks() {
        for line in [
            "hello",
            "insert 3 4",
            "delete 0 9",
            "batch",
            "rank 7",
            "rank 7 ego",
            "topk 5",
            "movers 3 ego",
            "stats",
            "subscribe 12 1e-9",
            "unsubscribe 12",
            "poll",
            "view drop ego",
            "views",
            "quit",
        ] {
            let r = parse_request(line).unwrap().unwrap();
            assert_eq!(encode_request(&r), line, "canonical form differs");
            let again = parse_request(&encode_request(&r)).unwrap().unwrap();
            assert_eq!(again, r);
        }
    }

    #[test]
    fn response_roundtrip_spot_checks() {
        let samples = vec![
            Response::Hello(Handshake::V1 {
                algorithm: "DFLF".into(),
                verbs: VERBS.iter().map(|s| s.to_string()).collect(),
            }),
            Response::Hello(Handshake::V2 {
                algorithm: "DFLF".into(),
                shards: 4,
                strategy: "block".into(),
                caps: vec![caps::CORE.into(), caps::SUBS.into(), caps::WAL.into()],
            }),
            Response::Staged { count: 2 },
            Response::BatchOk {
                batch: 2,
                m: 1002,
                status: "converged".into(),
                iters: 77,
                epochs: ShardEpochs::Single(1),
            },
            Response::BatchOk {
                batch: 5,
                m: 2004,
                status: "converged".into(),
                iters: 12,
                epochs: ShardEpochs::Sharded(vec![3, 2, 3, 3]),
            },
            Response::Rank {
                v: 0,
                rank: 4.294974e-3,
                epoch: 1,
                view: None,
            },
            Response::Rank {
                v: 0,
                rank: 4.294974e-3,
                epoch: 1,
                view: Some("ego".into()),
            },
            Response::TopK {
                entries: vec![(53, 2.587890e-2), (171, 2.346116e-2)],
                epochs: ShardEpochs::Single(1),
                view: None,
            },
            Response::TopK {
                entries: vec![(53, 2.587890e-2)],
                epochs: ShardEpochs::Sharded(vec![1, 0]),
                view: None,
            },
            Response::Movers {
                entries: vec![MoverEntry {
                    v: 9,
                    rank: 1.5e-3,
                    delta: -2.5e-4,
                }],
                epochs: ShardEpochs::Single(3),
                view: Some("ego".into()),
            },
            Response::Stats {
                n: 200,
                m: 1000,
                steps: 0,
                staged: 0,
                algo: "DFLF".into(),
                epochs: ShardEpochs::Single(0),
                wal: None,
                slack: None,
                queues: None,
            },
            Response::Stats {
                n: 200,
                m: 1000,
                steps: 3,
                staged: 0,
                algo: "DFLF".into(),
                epochs: ShardEpochs::Single(3),
                wal: Some((3, 1024)),
                slack: None,
                queues: None,
            },
            Response::Stats {
                n: 200,
                m: 1000,
                steps: 3,
                staged: 0,
                algo: "DFLF".into(),
                epochs: ShardEpochs::Single(3),
                wal: Some((3, 1024)),
                slack: Some(812),
                queues: None,
            },
            Response::Stats {
                n: 200,
                m: 1000,
                steps: 1,
                staged: 0,
                algo: "DFLF".into(),
                epochs: ShardEpochs::Single(1),
                wal: None,
                slack: Some(790),
                queues: None,
            },
            Response::Stats {
                n: 200,
                m: 1000,
                steps: 7,
                staged: 0,
                algo: "DFLF".into(),
                epochs: ShardEpochs::Sharded(vec![2, 1, 2, 2]),
                wal: Some((1, 4096)),
                slack: None,
                queues: Some(vec![0, 3, 0, 1]),
            },
            Response::Subscribed { v: 4, eps: 1e-7 },
            Response::Unsubscribed { v: 4 },
            Response::Push {
                entries: vec![(1, 0.25), (2, 0.125)],
                epoch: 2,
            },
            Response::Push {
                entries: vec![],
                epoch: 2,
            },
            Response::ViewAdded {
                name: "ego".into(),
                sources: 2,
                epoch: 0,
            },
            Response::ViewDropped { name: "ego".into() },
            Response::Views {
                entries: vec![("ego".into(), 2), ("other".into(), 0)],
            },
            Response::Bye,
            Response::Error(ServeError::EdgeExists(1, 2)),
            Response::Error(ServeError::BatchRejected("boom".into())),
            Response::Error(ServeError::FollowReordered),
        ];
        for resp in samples {
            let wire = encode_response(&resp);
            let parsed = parse_response(&wire).unwrap_or_else(|| panic!("unparsed: {wire}"));
            assert_eq!(
                encode_response(&parsed),
                wire,
                "canonical form not idempotent"
            );
        }
    }

    #[test]
    fn smoke_fixture_bytes_reproduce() {
        // The exact head lines of the pinned CI fixture must come out of
        // the typed encoder byte-for-byte.
        assert_eq!(
            encode_response(&Response::Stats {
                n: 200,
                m: 1000,
                steps: 0,
                staged: 0,
                algo: "DFLF".into(),
                epochs: ShardEpochs::Single(0),
                wal: None,
                slack: None,
                queues: None,
            }),
            "stats n=200 m=1000 steps=0 staged=0 algo=DFLF epoch=0"
        );
        assert_eq!(
            encode_response(&Response::Stats {
                n: 200,
                m: 1000,
                steps: 2,
                staged: 0,
                algo: "DFLF".into(),
                epochs: ShardEpochs::Single(2),
                wal: Some((2, 131)),
                slack: None,
                queues: None,
            }),
            "stats n=200 m=1000 steps=2 staged=0 algo=DFLF epoch=2 wal_epoch=2 wal_bytes=131"
        );
        assert_eq!(
            encode_response(&Response::Stats {
                n: 200,
                m: 1000,
                steps: 0,
                staged: 0,
                algo: "DFLF".into(),
                epochs: ShardEpochs::Single(0),
                wal: None,
                slack: Some(812),
                queues: None,
            }),
            "stats n=200 m=1000 steps=0 staged=0 algo=DFLF epoch=0 slack=812"
        );
        assert_eq!(
            encode_response(&Response::BatchOk {
                batch: 2,
                m: 1002,
                status: "converged".into(),
                iters: 77,
                epochs: ShardEpochs::Single(1),
            }),
            "ok batch=2 m=1002 status=converged iters=77 epoch=1"
        );
        assert_eq!(
            encode_response(&Response::Rank {
                v: 0,
                rank: 4.294974e-3,
                epoch: 1,
                view: None,
            }),
            "rank 0 4.294974e-3 epoch=1"
        );
        assert_eq!(
            encode_response(&Response::Error(ServeError::EdgeAlreadyStaged(10, 20))),
            "err edge (10, 20) already staged"
        );
    }

    #[test]
    fn sharded_wire_forms_are_pinned() {
        // The v1 hello keeps its literal version even though
        // PROTOCOL_VERSION moved on — single-shard transcripts are
        // byte-frozen.
        assert_eq!(
            encode_response(&Response::Hello(Handshake::V1 {
                algorithm: "DFLF".into(),
                verbs: vec!["hello".into(), "quit".into()],
            })),
            "hello lfpr/1 algo=DFLF verbs=hello,quit"
        );
        assert_eq!(
            encode_response(&Response::Hello(Handshake::V2 {
                algorithm: "DFLF".into(),
                shards: 4,
                strategy: "block".into(),
                caps: vec![caps::CORE.into(), caps::SUBS.into()],
            })),
            "hello lfpr/2 algo=DFLF shards=4 strategy=block caps=core,subs"
        );
        assert_eq!(
            encode_response(&Response::BatchOk {
                batch: 3,
                m: 14,
                status: "converged".into(),
                iters: 9,
                epochs: ShardEpochs::Sharded(vec![1, 1, 0, 1]),
            }),
            "ok batch=3 m=14 status=converged iters=9 epochs=1,1,0,1"
        );
        assert_eq!(
            encode_response(&Response::Stats {
                n: 6,
                m: 13,
                steps: 2,
                staged: 0,
                algo: "DFLF".into(),
                epochs: ShardEpochs::Sharded(vec![1, 1]),
                wal: None,
                slack: None,
                queues: Some(vec![0, 2]),
            }),
            "stats n=6 m=13 steps=2 staged=0 algo=DFLF epochs=1,1 queues=0,2"
        );
        assert_eq!(
            encode_response(&Response::TopK {
                entries: vec![(3, 0.25)],
                epochs: ShardEpochs::Sharded(vec![2, 2]),
                view: None,
            }),
            "topk 1 epochs=2,2\n3 2.500000e-1"
        );
        assert_eq!(ShardEpochs::Sharded(vec![3, 5, 4]).newest(), 5);
        assert_eq!(ShardEpochs::Single(7).scalar(), Some(7));
        assert_eq!(ShardEpochs::Sharded(vec![1]).scalar(), None);
    }

    #[test]
    fn garbage_is_rejected_not_mangled() {
        for garbage in [
            "rank",
            "insert 1",
            "insert 1 2 3",
            "subscribe 1",
            "view",
            "view add",
            "view frob x",
            "topk",
        ] {
            match parse_request(garbage).unwrap() {
                Err(_) => {}
                Ok(r) => panic!("{garbage:?} parsed as {r:?}"),
            }
        }
        assert!(parse_response("glorp 7").is_none());
        assert!(
            parse_response("topk 2 epoch=1\n1 0.5").is_none(),
            "short tail"
        );
        assert!(parse_response("err untyped nonsense").is_none());
    }
}
