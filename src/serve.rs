//! The `lfpr serve` line protocol — a long-running streaming batch
//! service over an [`UpdateSession`].
//!
//! One command per line, whitespace-separated tokens; every command
//! produces exactly one reply block on the output stream, so a scripted
//! session is diffable byte-for-byte (CI does exactly that). Timing is
//! reported in-band only where deterministic; wall-clock numbers go to
//! stderr.
//!
//! ```text
//! insert <u> <v>   stage an edge insertion        → staged <count>
//! delete <u> <v>   stage an edge deletion         → staged <count>
//! batch            commit staged ops as one Δt    → ok batch=<k> m=<m> status=<s> iters=<i> epoch=<e>
//! topk <k>         k highest-ranked vertices      → topk <k> epoch=<e> + k lines "<v> <rank>"
//! rank <v>         one vertex's rank              → rank <v> <value> epoch=<e>
//! stats            session counters               → stats n=.. m=.. steps=.. staged=.. algo=.. epoch=<e>
//! quit             end the session                → bye
//! ```
//!
//! Every reply that reads committed state carries `epoch=<e>` — the
//! commit number it was answered from (0 = the initial static ranks).
//! Under the concurrent TCP server ([`crate::server`]) reads are served
//! from an atomically published [`RankView`], so a reply's `rank`/`topk`
//! values and its epoch always belong to the same commit even while a
//! batch is being applied on the writer.
//!
//! Staged operations are validated eagerly against the current graph
//! (plus the staged set), so a `batch` from a single-client session
//! cannot fail halfway; under concurrent clients the commit revalidates
//! authoritatively and replies `err batch rejected: …` when another
//! client's commit conflicted (the staged set is kept for inspection).
//! Deleting a self-loop is refused — self-loops implement dead-end
//! elimination (§5.1.3) and removing one would leak rank mass. A staged
//! insert/delete pair of the same edge cancels out, mirroring
//! [`crate::MutGuard`].

use lfpr_core::session::{RankReader, RankView, UpdateSession};
use lfpr_core::{Algorithm, RunStatus};
use lfpr_graph::BatchUpdate;
use std::io::{BufRead, Write};
use std::sync::{mpsc, Arc};

/// Counters a serve loop reports when the connection ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Lines processed (excluding blanks/comments).
    pub commands: u64,
    /// Batches committed.
    pub batches: u64,
    /// Edge updates committed across all batches.
    pub updates: u64,
}

impl ServeSummary {
    /// Fold another connection's counters into this aggregate.
    pub fn absorb(&mut self, other: ServeSummary) {
        self.commands += other.commands;
        self.batches += other.batches;
        self.updates += other.updates;
    }
}

/// What one committed batch reports back to the protocol layer.
#[derive(Debug, Clone, Copy)]
pub struct CommitOutcome {
    /// Edge count of the graph after the commit.
    pub edges: usize,
    /// Termination status of the rank refresh.
    pub status: RunStatus,
    /// Rounds the refresh performed.
    pub iterations: usize,
    /// The epoch this commit produced.
    pub epoch: u64,
}

/// A commit funneled from a serving worker to the single session
/// writer. The worker blocks on `reply` until the writer has applied
/// the batch (or rejected it — a rejection hands the batch back so the
/// client's staged edits survive for inspection).
pub struct CommitRequest {
    /// The staged batch to apply.
    pub batch: BatchUpdate,
    /// Where the writer sends the outcome.
    pub reply: mpsc::SyncSender<Result<CommitOutcome, (BatchUpdate, String)>>,
}

/// Apply `batch` to `session` and report the outcome — the one commit
/// path shared by the Direct backend and the TCP writer thread, so the
/// per-batch stderr line and the outcome fields cannot drift apart.
pub fn commit_on(
    session: &mut UpdateSession,
    batch: &BatchUpdate,
) -> Result<CommitOutcome, String> {
    match session.step(batch) {
        Ok(stats) => {
            eprintln!(
                "# batch {} updates in {:?} (snapshot {:?}, ranks {:?}, {} vertices)",
                batch.len(),
                stats.total_time,
                stats.snapshot_time,
                stats.runtime,
                stats.vertices_processed
            );
            Ok(CommitOutcome {
                edges: session.graph().num_edges(),
                status: stats.status,
                iterations: stats.iterations,
                epoch: session.steps(),
            })
        }
        Err(e) => Err(e.to_string()),
    }
}

/// How a serve loop reaches session state.
///
/// * [`Direct`](Backend::Direct) — exclusive access (stdin mode, tests):
///   reads and commits go straight to the owned session.
/// * [`Concurrent`](Backend::Concurrent) — a TCP worker: reads come from
///   the epoch-published [`RankView`] (never blocking the writer),
///   commits are funneled through a channel to the single writer thread.
pub enum Backend<'a> {
    /// Exclusive access to the session (single-connection modes).
    Direct(&'a mut UpdateSession),
    /// Shared access under the concurrent server.
    Concurrent {
        /// Handle onto the session's published views.
        reader: RankReader,
        /// Funnel to the writer thread owning the session.
        commits: mpsc::Sender<CommitRequest>,
        /// The session's configured algorithm (for `stats`).
        algorithm: Algorithm,
    },
}

/// One command's coherent look at committed state: every field a reply
/// derives (ranks, edges, epoch) comes from the same commit.
enum CmdView<'a> {
    Direct(&'a UpdateSession),
    Published(Arc<RankView>),
}

impl CmdView<'_> {
    fn num_vertices(&self) -> usize {
        match self {
            CmdView::Direct(s) => s.graph().num_vertices(),
            CmdView::Published(v) => v.snapshot().num_vertices(),
        }
    }

    fn num_edges(&self) -> usize {
        match self {
            CmdView::Direct(s) => s.graph().num_edges(),
            CmdView::Published(v) => v.snapshot().num_edges(),
        }
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        match self {
            CmdView::Direct(s) => s.graph().has_edge(u, v),
            CmdView::Published(view) => view.snapshot().has_edge(u, v),
        }
    }

    fn rank(&self, v: u32) -> f64 {
        match self {
            CmdView::Direct(s) => s.rank(v),
            CmdView::Published(view) => view.rank(v),
        }
    }

    fn top_k(&self, k: usize) -> Vec<(u32, f64)> {
        match self {
            CmdView::Direct(s) => s.top_k(k),
            CmdView::Published(view) => view.top_k(k),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            CmdView::Direct(s) => s.steps(),
            CmdView::Published(view) => view.epoch(),
        }
    }
}

impl Backend<'_> {
    /// Pin the state one command answers from. Under the concurrent
    /// server this is one published-view load; commands never mix two
    /// epochs within a reply.
    fn view(&self) -> CmdView<'_> {
        match self {
            Backend::Direct(s) => CmdView::Direct(s),
            Backend::Concurrent { reader, .. } => CmdView::Published(reader.view()),
        }
    }

    fn algorithm(&self) -> Algorithm {
        match self {
            Backend::Direct(s) => s.algorithm(),
            Backend::Concurrent { algorithm, .. } => *algorithm,
        }
    }

    /// Commit a batch. Direct mode applies it in place; concurrent mode
    /// funnels it to the writer thread and blocks for the outcome. On
    /// rejection the batch travels back with the error so the caller
    /// can restore the client's staged edits.
    fn commit(&mut self, batch: BatchUpdate) -> Result<CommitOutcome, (BatchUpdate, String)> {
        match self {
            Backend::Direct(session) => commit_on(session, &batch).map_err(|msg| (batch, msg)),
            Backend::Concurrent { commits, .. } => {
                let (tx, rx) = mpsc::sync_channel(1);
                let req = CommitRequest { batch, reply: tx };
                match commits.send(req) {
                    Ok(()) => match rx.recv() {
                        Ok(Ok(outcome)) => Ok(outcome),
                        Ok(Err((batch, msg))) => Err((batch, msg)),
                        // The writer died mid-commit; the batch is gone
                        // with it, and so is the server.
                        Err(_) => Err((BatchUpdate::new(), "server shutting down".into())),
                    },
                    Err(e) => Err((e.0.batch, "server shutting down".into())),
                }
            }
        }
    }
}

/// Drive `session` exclusively with the line protocol from `input`,
/// writing replies to `out`, until EOF or `quit`. Returns the
/// connection counters. This is the single-connection (stdin) mode; the
/// concurrent TCP server drives [`serve_client`] instead.
pub fn serve_connection<R: BufRead, W: Write>(
    session: &mut UpdateSession,
    input: R,
    out: W,
) -> std::io::Result<ServeSummary> {
    serve_client(&mut Backend::Direct(session), input, out)
}

/// Drive one client connection against `backend` until EOF or `quit`.
pub fn serve_client<R: BufRead, W: Write>(
    backend: &mut Backend<'_>,
    input: R,
    mut out: W,
) -> std::io::Result<ServeSummary> {
    let mut staged = BatchUpdate::new();
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() || tokens[0].starts_with('#') {
            continue;
        }
        summary.commands += 1;
        match handle(backend, &mut staged, &mut summary, &tokens, &mut out)? {
            Flow::Continue => {}
            Flow::Quit => break,
        }
        out.flush()?;
    }
    Ok(summary)
}

enum Flow {
    Continue,
    Quit,
}

fn handle<W: Write>(
    backend: &mut Backend<'_>,
    staged: &mut BatchUpdate,
    summary: &mut ServeSummary,
    tokens: &[&str],
    out: &mut W,
) -> std::io::Result<Flow> {
    match tokens {
        ["insert", u, v] => {
            let view = backend.view();
            match parse_edge(&view, u, v) {
                Ok((u, v)) => stage_insert(&view, staged, u, v, out)?,
                Err(msg) => writeln!(out, "err {msg}")?,
            }
        }
        ["delete", u, v] => {
            let view = backend.view();
            match parse_edge(&view, u, v) {
                Ok((u, v)) => stage_delete(&view, staged, u, v, out)?,
                Err(msg) => writeln!(out, "err {msg}")?,
            }
        }
        ["batch"] => {
            let batch = std::mem::take(staged);
            let k = batch.len();
            match backend.commit(batch) {
                Ok(o) => {
                    summary.batches += 1;
                    summary.updates += k as u64;
                    writeln!(
                        out,
                        "ok batch={k} m={} status={} iters={} epoch={}",
                        o.edges,
                        status_str(o.status),
                        o.iterations,
                        o.epoch
                    )?;
                }
                // Reachable under concurrent clients: another commit can
                // land between staging and this batch. Never die on
                // input — and restore the client's staged edits so they
                // can be inspected or amended.
                Err((batch, msg)) => {
                    *staged = batch;
                    writeln!(out, "err batch rejected: {msg}")?;
                }
            }
        }
        ["topk", k] => match k.parse::<usize>() {
            Ok(k) => {
                let view = backend.view();
                let top = view.top_k(k);
                writeln!(out, "topk {} epoch={}", top.len(), view.epoch())?;
                for (v, r) in top {
                    writeln!(out, "{v} {r:.6e}")?;
                }
            }
            Err(_) => writeln!(out, "err topk needs an integer")?,
        },
        ["rank", v] => match v.parse::<u32>() {
            Ok(v) => {
                let view = backend.view();
                if (v as usize) < view.num_vertices() {
                    writeln!(out, "rank {v} {:.6e} epoch={}", view.rank(v), view.epoch())?;
                } else {
                    writeln!(out, "err unknown vertex {v}")?;
                }
            }
            Err(_) => writeln!(out, "err unknown vertex {v}")?,
        },
        ["stats"] => {
            let view = backend.view();
            writeln!(
                out,
                "stats n={} m={} steps={} staged={} algo={} epoch={}",
                view.num_vertices(),
                view.num_edges(),
                view.epoch(),
                staged.len(),
                backend.algorithm(),
                view.epoch()
            )?;
        }
        ["quit"] => {
            writeln!(out, "bye")?;
            return Ok(Flow::Quit);
        }
        other => writeln!(out, "err unknown command: {}", other.join(" "))?,
    }
    Ok(Flow::Continue)
}

fn parse_edge(view: &CmdView<'_>, u: &str, v: &str) -> Result<(u32, u32), String> {
    let n = view.num_vertices();
    let parse = |s: &str| -> Result<u32, String> {
        let id: u32 = s.parse().map_err(|_| format!("bad vertex id {s}"))?;
        if (id as usize) < n {
            Ok(id)
        } else {
            Err(format!("vertex {id} out of range (n = {n})"))
        }
    };
    Ok((parse(u)?, parse(v)?))
}

fn stage_insert<W: Write>(
    view: &CmdView<'_>,
    staged: &mut BatchUpdate,
    u: u32,
    v: u32,
    out: &mut W,
) -> std::io::Result<()> {
    if let Some(pos) = staged.deletions.iter().position(|&e| e == (u, v)) {
        staged.deletions.swap_remove(pos); // reinstate a staged delete
    } else if view.has_edge(u, v) {
        writeln!(out, "err edge ({u}, {v}) already exists")?;
        return Ok(());
    } else if staged.insertions.contains(&(u, v)) {
        writeln!(out, "err edge ({u}, {v}) already staged")?;
        return Ok(());
    } else {
        staged.insertions.push((u, v));
    }
    writeln!(out, "staged {}", staged.len())?;
    Ok(())
}

fn stage_delete<W: Write>(
    view: &CmdView<'_>,
    staged: &mut BatchUpdate,
    u: u32,
    v: u32,
    out: &mut W,
) -> std::io::Result<()> {
    if u == v {
        writeln!(
            out,
            "err refusing to delete self-loop ({u}, {v}): dead-end elimination"
        )?;
        return Ok(());
    }
    if let Some(pos) = staged.insertions.iter().position(|&e| e == (u, v)) {
        staged.insertions.swap_remove(pos); // cancel a staged insert
    } else if !view.has_edge(u, v) {
        writeln!(out, "err edge ({u}, {v}) does not exist")?;
        return Ok(());
    } else if staged.deletions.contains(&(u, v)) {
        writeln!(out, "err edge ({u}, {v}) already staged")?;
        return Ok(());
    } else {
        staged.deletions.push((u, v));
    }
    writeln!(out, "staged {}", staged.len())?;
    Ok(())
}

fn status_str(status: RunStatus) -> &'static str {
    match status {
        RunStatus::Converged => "converged",
        RunStatus::MaxIterations => "max-iterations",
        RunStatus::Stalled => "stalled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_core::PagerankOptions;
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::GraphBuilder;

    fn session() -> UpdateSession {
        let mut g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)])
            .build_dyn()
            .unwrap();
        add_self_loops(&mut g);
        UpdateSession::new(
            g,
            Algorithm::DfLF,
            PagerankOptions::default().with_threads(1),
        )
    }

    fn run(input: &str) -> (String, ServeSummary) {
        let mut s = session();
        let mut out = Vec::new();
        let summary = serve_connection(&mut s, input.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn scripted_session_round_trip() {
        let (out, summary) = run("stats\n\
             insert 4 1\n\
             delete 0 1\n\
             batch\n\
             rank 1\n\
             topk 2\n\
             quit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "stats n=5 m=11 steps=0 staged=0 algo=DFLF epoch=0"
        );
        assert_eq!(lines[1], "staged 1");
        assert_eq!(lines[2], "staged 2");
        assert!(lines[3].starts_with("ok batch=2 m=11 status=converged"));
        assert!(lines[3].ends_with("epoch=1"));
        assert!(lines[4].starts_with("rank 1 "));
        assert!(lines[4].ends_with("epoch=1"));
        assert_eq!(lines[5], "topk 2 epoch=1");
        assert_eq!(summary.commands, 7);
        assert_eq!(summary.batches, 1);
        assert_eq!(summary.updates, 2);
        assert_eq!(*lines.last().unwrap(), "bye");
    }

    #[test]
    fn staging_validates_eagerly() {
        let (out, _) = run("insert 0 1\n\
             delete 9 0\n\
             delete 0 0\n\
             delete 4 0\n\
             delete 4 0\n\
             insert 4 0\n\
             batch\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "err edge (0, 1) already exists");
        assert!(lines[1].starts_with("err vertex 9 out of range"));
        assert!(lines[2].starts_with("err refusing to delete self-loop"));
        assert_eq!(lines[3], "staged 1");
        assert_eq!(lines[4], "err edge (4, 0) already staged");
        assert_eq!(lines[5], "staged 0", "insert cancels the staged delete");
        assert!(lines[6].starts_with("ok batch=0"));
    }

    #[test]
    fn queries_and_errors_never_kill_the_loop() {
        let (out, summary) = run("frobnicate\n\
             topk nope\n\
             rank 99\n\
             \n\
             # comment line\n\
             stats\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err unknown command"));
        assert_eq!(lines[1], "err topk needs an integer");
        assert_eq!(lines[2], "err unknown vertex 99");
        assert!(lines[3].starts_with("stats "));
        assert_eq!(summary.commands, 4, "blanks and comments don't count");
    }

    #[test]
    fn ranks_update_across_batches() {
        let mut s = session();
        let before = s.rank(1);
        let mut out = Vec::new();
        serve_connection(
            &mut s,
            "insert 3 1\ninsert 4 1\nbatch\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        assert!(s.rank(1) > before, "vertex 1 gained in-links");
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn concurrent_backend_answers_from_published_views() {
        // A Concurrent backend wired to an in-thread "writer": commits
        // drain synchronously after the serve loop ends, so replies to
        // reads must come from the published view only.
        let mut s = session();
        let reader = s.reader();
        let (tx, rx) = mpsc::channel::<CommitRequest>();
        let mut backend = Backend::Concurrent {
            reader,
            commits: tx,
            algorithm: s.algorithm(),
        };
        let mut out = Vec::new();
        // Reads before any commit: epoch 0.
        serve_client(&mut backend, "stats\nrank 1\ntopk 1\n".as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        for line in text.lines().take(3) {
            assert!(line.contains("epoch=0"), "{line}");
        }
        // A commit via the funnel: handled by the session writer.
        let (rtx, rrx) = mpsc::sync_channel(1);
        let Backend::Concurrent { commits, .. } = &backend else {
            unreachable!()
        };
        commits
            .send(CommitRequest {
                batch: BatchUpdate::insert_only(vec![(4, 1)]),
                reply: rtx,
            })
            .unwrap();
        let req = rx.recv().unwrap();
        let outcome = commit_on(&mut s, &req.batch).map_err(|msg| (req.batch, msg));
        req.reply.send(outcome).unwrap();
        assert!(rrx.recv().unwrap().is_ok());
        // The published view caught up.
        let mut out = Vec::new();
        serve_client(&mut backend, "rank 1\n".as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.trim_end().ends_with("epoch=1"), "{text}");
    }
}
