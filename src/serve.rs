//! The `lfpr serve` line protocol — a long-running streaming batch
//! service over an [`UpdateSession`].
//!
//! Commands and replies are typed: every input line is parsed into a
//! [`Request`] and every reply is an encoded
//! [`Response`] — see [`crate::protocol`]
//! for the grammar and `docs/PROTOCOL.md` for the full reference. One
//! command produces exactly one reply block (plus, possibly, one
//! piggybacked `push` block — see below), so a scripted session is
//! diffable byte-for-byte (CI does exactly that). Timing is reported
//! in-band only where deterministic; wall-clock numbers go to stderr.
//!
//! ```text
//! insert <u> <v>        stage an edge insertion     → staged <count>
//! delete <u> <v>        stage an edge deletion      → staged <count>
//! batch                 commit staged ops as one Δt → ok batch=<k> m=<m> status=<s> iters=<i> epoch=<e>
//! rank <v> [view]       one vertex's rank           → rank <v> <value> epoch=<e>[ view=<name>]
//! topk <k> [view]       k highest-ranked vertices   → topk <len> epoch=<e>[ view=<name>] + lines
//! movers <k> [view]     k largest changes this epoch→ movers <len> epoch=<e>[ view=<name>] + lines
//! subscribe <v> <eps>   watch one vertex's rank     → subscribed <v> eps=<eps>
//! poll                  collect pending pushes      → push <len> epoch=<e> + lines
//! view add <name> <v[:w]>...  personalized view     → ok view <name> sources=<k> epoch=<e>
//! stats                 session counters            → stats n=.. m=.. steps=.. staged=.. algo=.. epoch=<e>
//! quit                  end the session             → bye
//! ```
//!
//! Every reply that reads committed state carries `epoch=<e>` — the
//! commit number it was answered from (0 = the initial static ranks).
//! Under the concurrent TCP server ([`crate::server`]) reads are served
//! from an atomically published [`RankView`], so a reply's `rank`/`topk`
//! values and its epoch always belong to the same commit even while a
//! batch is being applied on the writer.
//!
//! ## Subscriptions
//!
//! `subscribe <v> <eps>` records the vertex's rank as the baseline.
//! Each subsequent command first pins the committed state it will
//! answer from; if any subscribed vertex has drifted more than `eps`
//! from its baseline (for `eps` = 0: if its rank changed at all, to the
//! bit), a `push` block is written *before* that command's reply and
//! the pushed ranks become the new baselines. `poll` exists to collect
//! pushes explicitly — it always answers with a `push` block, possibly
//! empty. A `batch` command pins its view *before* committing, so the
//! pushes caused by its own commit arrive on the next command — a reply
//! is never interleaved with pushes from its own write.
//!
//! ## Staging
//!
//! Staged operations are validated eagerly against the current graph
//! (plus the staged set), so a `batch` from a single-client session
//! cannot fail halfway; under concurrent clients the commit revalidates
//! authoritatively and replies `err batch rejected: …` when another
//! client's commit conflicted (the staged set is kept for inspection).
//! Deleting a self-loop is refused — self-loops implement dead-end
//! elimination (§5.1.3) and removing one would leak rank mass. A staged
//! insert/delete pair of the same edge cancels out, mirroring
//! [`crate::MutGuard`].

use crate::durable::{Durability, WalStats};
use crate::protocol::{
    encode_response, parse_request, Handshake, MoverEntry, Request, Response, ServeError,
    ShardEpochs, VERBS,
};
use crate::replica::{self, FeedHub};
use lfpr_core::session::{RankReader, RankView, UpdateSession};
use lfpr_core::{Algorithm, RankDelta, RunStatus, Teleport};
use lfpr_graph::io::wal::WalRecord;
use lfpr_graph::reorder::SharedReordering;
use lfpr_graph::{BatchUpdate, Reordering};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::{mpsc, Arc};

/// Counters a serve loop reports when the connection ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Lines processed (excluding blanks/comments).
    pub commands: u64,
    /// Batches committed.
    pub batches: u64,
    /// Edge updates committed across all batches.
    pub updates: u64,
    /// Push blocks written (piggybacked or via `poll`).
    pub pushes: u64,
}

impl ServeSummary {
    /// Fold another connection's counters into this aggregate.
    pub fn absorb(&mut self, other: ServeSummary) {
        self.commands += other.commands;
        self.batches += other.batches;
        self.updates += other.updates;
        self.pushes += other.pushes;
    }
}

/// What one committed batch reports back to the protocol layer.
#[derive(Debug, Clone, Copy)]
pub struct CommitOutcome {
    /// Edge count of the graph after the commit.
    pub edges: usize,
    /// Termination status of the rank refresh.
    pub status: RunStatus,
    /// Rounds the refresh performed.
    pub iterations: usize,
    /// The epoch this commit produced.
    pub epoch: u64,
}

/// A state-changing operation funneled to the single session writer.
/// Batch commits and view management both mutate the session, so under
/// the concurrent server they serialize through the same channel — one
/// writer, many readers, no locks on the read path.
#[derive(Debug)]
pub enum WriterOp {
    /// Commit a staged batch.
    Commit(BatchUpdate),
    /// Create a personalized ranking view.
    AddView {
        /// View name (protocol-validated by the caller).
        name: String,
        /// Its restart distribution.
        teleport: Teleport,
    },
    /// Remove a named view.
    DropView {
        /// View name.
        name: String,
    },
}

/// Successful outcome of a [`WriterOp`].
#[derive(Debug, Clone, Copy)]
pub enum WriterOk {
    /// A batch landed.
    Committed(CommitOutcome),
    /// A view was added; ranks were computed at this epoch.
    ViewAdded {
        /// Epoch the view's initial ranks belong to.
        epoch: u64,
    },
    /// A view was removed.
    ViewDropped,
}

/// Outcome of a [`WriterOp`]: success, or the op handed back with the
/// error message (a failed commit returns the batch so the client's
/// staged edits survive for inspection).
pub type WriterOutcome = Result<WriterOk, (WriterOp, String)>;

/// Where a [`WriterRequest`]'s outcome goes.
///
/// Blocking callers wait on a bounded channel
/// ([`Sync`](WriterReply::Sync)); the event-driven server must not
/// block its loops, so it hands the writer a closure that files the
/// outcome as a completion and wakes the owning loop
/// ([`Callback`](WriterReply::Callback)).
pub enum WriterReply {
    /// Deliver over a channel the requester is blocked on.
    Sync(mpsc::SyncSender<WriterOutcome>),
    /// Deliver by invoking a closure on the writer thread.
    Callback(Box<dyn FnOnce(WriterOutcome) + Send>),
}

impl WriterReply {
    /// Hand the outcome to the requester. A failed delivery means the
    /// requester is gone (connection dropped mid-commit); the op has
    /// still been applied — the outcome is simply unobserved.
    pub fn deliver(self, outcome: WriterOutcome) {
        match self {
            WriterReply::Sync(tx) => {
                let _ = tx.send(outcome);
            }
            WriterReply::Callback(f) => f(outcome),
        }
    }
}

/// An operation funneled from a serving worker to the single session
/// writer, with the reply path the writer acknowledges through once the
/// op has been applied (or rejected).
pub struct WriterRequest {
    /// The operation to apply.
    pub op: WriterOp,
    /// Where the writer sends the outcome.
    pub reply: WriterReply,
}

/// Apply `batch` to `session` and report the outcome — the one commit
/// path shared by the Direct backend and the TCP writer thread, so the
/// per-batch stderr line and the outcome fields cannot drift apart.
pub fn commit_on(
    session: &mut UpdateSession,
    batch: &BatchUpdate,
) -> Result<CommitOutcome, String> {
    match session.step(batch) {
        Ok(stats) => {
            eprintln!(
                "# batch {} updates in {:?} (snapshot {:?}, ranks {:?}, {} vertices)",
                batch.len(),
                stats.total_time,
                stats.snapshot_time,
                stats.runtime,
                stats.vertices_processed
            );
            Ok(CommitOutcome {
                edges: session.graph().num_edges(),
                status: stats.status,
                iterations: stats.iterations,
                epoch: session.steps(),
            })
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Apply any writer op to `session` — the single mutation path shared
/// by the Direct backend and the TCP writer thread. On rejection the op
/// travels back with the error message.
pub fn apply_on(session: &mut UpdateSession, op: WriterOp) -> Result<WriterOk, (WriterOp, String)> {
    match op {
        WriterOp::Commit(batch) => match commit_on(session, &batch) {
            Ok(outcome) => Ok(WriterOk::Committed(outcome)),
            Err(msg) => Err((WriterOp::Commit(batch), msg)),
        },
        WriterOp::AddView { name, teleport } => match session.add_view(&name, teleport.clone()) {
            Ok(()) => Ok(WriterOk::ViewAdded {
                epoch: session.steps(),
            }),
            Err(msg) => Err((WriterOp::AddView { name, teleport }, msg)),
        },
        WriterOp::DropView { name } => match session.drop_view(&name) {
            Ok(()) => Ok(WriterOk::ViewDropped),
            Err(msg) => Err((WriterOp::DropView { name }, msg)),
        },
    }
}

/// [`apply_on`] with durability and replication: apply the op, append
/// it to the WAL, hand it to the feed, then acknowledge — in that
/// order, so an acked mutation is always on disk (per the fsync policy)
/// and followers never see an epoch the leader could lose.
///
/// A *wedged* WAL (an earlier append failed) refuses the op up front:
/// committed state is already ahead of the log and widening that gap
/// would make recovery a lie. An append failure on this very op cannot
/// un-apply it — the op is acked honestly and the manager wedges for
/// everything after.
pub fn apply_logged(
    session: &mut UpdateSession,
    mut durable: Option<&mut Durability>,
    feed: Option<&FeedHub>,
    op: WriterOp,
) -> Result<WriterOk, (WriterOp, String)> {
    if let Some(msg) = durable.as_ref().and_then(|d| d.wedged_reason()) {
        let msg = format!("wal unavailable: {msg}");
        return Err((op, msg));
    }
    match op {
        WriterOp::Commit(batch) => match commit_on(session, &batch) {
            Ok(outcome) => {
                if let Some(d) = durable.as_deref_mut() {
                    if let Err(e) = d.log_commit(session, &batch) {
                        eprintln!("# commit {} applied but not logged: {e}", outcome.epoch);
                    }
                }
                if let Some(f) = feed {
                    f.publish(WalRecord::Commit {
                        epoch: outcome.epoch,
                        batch,
                    });
                }
                Ok(WriterOk::Committed(outcome))
            }
            Err(msg) => Err((WriterOp::Commit(batch), msg)),
        },
        WriterOp::AddView { name, teleport } => match session.add_view(&name, teleport.clone()) {
            Ok(()) => {
                if let Some(d) = durable.as_deref_mut() {
                    if let Err(e) = d.log_view_add(session, &name, &teleport) {
                        eprintln!("# view {name} added but not logged: {e}");
                    }
                }
                if let Some(f) = feed {
                    let sources = teleport
                        .weights()
                        .map(|w| w.sources().to_vec())
                        .unwrap_or_default();
                    f.publish(WalRecord::ViewAdd {
                        epoch: session.steps(),
                        name: name.clone(),
                        sources,
                    });
                }
                Ok(WriterOk::ViewAdded {
                    epoch: session.steps(),
                })
            }
            Err(msg) => Err((WriterOp::AddView { name, teleport }, msg)),
        },
        WriterOp::DropView { name } => match session.drop_view(&name) {
            Ok(()) => {
                if let Some(d) = durable {
                    if let Err(e) = d.log_view_drop(session, &name) {
                        eprintln!("# view {name} dropped but not logged: {e}");
                    }
                }
                if let Some(f) = feed {
                    f.publish(WalRecord::ViewDrop {
                        epoch: session.steps(),
                        name: name.clone(),
                    });
                }
                Ok(WriterOk::ViewDropped)
            }
            Err(msg) => Err((WriterOp::DropView { name }, msg)),
        },
    }
}

/// How a serve loop reaches session state.
///
/// * [`Direct`](Backend::Direct) — exclusive access (stdin mode, tests):
///   reads and writes go straight to the owned session.
/// * [`Durable`](Backend::Durable) — Direct plus a write-ahead log:
///   every mutation is appended (and acked only after).
/// * [`Concurrent`](Backend::Concurrent) — a TCP worker: reads come from
///   the epoch-published [`RankView`] (never blocking the writer),
///   writes are funneled through a channel to the single writer thread.
/// * [`Replica`](Backend::Replica) — a follower's local server: reads
///   come from the mirrored published view, mutations are refused.
pub enum Backend<'a> {
    /// Exclusive access to the session (single-connection modes).
    Direct(&'a mut UpdateSession),
    /// Exclusive access with durability (stdin mode under `--wal`).
    Durable {
        /// The owned session.
        session: &'a mut UpdateSession,
        /// Its WAL + checkpoint manager.
        durable: &'a mut Durability,
    },
    /// Shared access under the concurrent server.
    Concurrent {
        /// Handle onto the session's published views.
        reader: RankReader,
        /// Funnel to the writer thread owning the session.
        writer: mpsc::Sender<WriterRequest>,
        /// The session's configured algorithm (for `stats`).
        algorithm: Algorithm,
        /// Fan-out point for `follow` connections.
        feed: FeedHub,
        /// Live WAL counters (`stats`), when the server is durable.
        wal: Option<Arc<WalStats>>,
    },
    /// Read-only serving from a follower's mirrored state.
    Replica {
        /// Handle onto the mirrored published views.
        reader: RankReader,
        /// The leader's algorithm.
        algorithm: Algorithm,
    },
}

/// One command's coherent look at committed state: every field a reply
/// derives (ranks, edges, epoch, views) comes from the same commit.
enum CmdView<'a> {
    Direct(&'a UpdateSession),
    Published(Arc<RankView>),
}

impl CmdView<'_> {
    fn num_vertices(&self) -> usize {
        match self {
            CmdView::Direct(s) => s.graph().num_vertices(),
            CmdView::Published(v) => v.snapshot().num_vertices(),
        }
    }

    fn num_edges(&self) -> usize {
        match self {
            CmdView::Direct(s) => s.graph().num_edges(),
            CmdView::Published(v) => v.snapshot().num_edges(),
        }
    }

    fn has_edge(&self, u: u32, v: u32) -> bool {
        match self {
            CmdView::Direct(s) => s.graph().has_edge(u, v),
            CmdView::Published(view) => view.snapshot().has_edge(u, v),
        }
    }

    fn rank(&self, v: u32) -> f64 {
        match self {
            CmdView::Direct(s) => s.rank(v),
            CmdView::Published(view) => view.rank(v),
        }
    }

    fn top_k(&self, k: usize) -> Vec<(u32, f64)> {
        match self {
            CmdView::Direct(s) => s.top_k(k),
            CmdView::Published(view) => view.top_k(k),
        }
    }

    fn movers(&self, k: usize) -> Vec<RankDelta> {
        match self {
            CmdView::Direct(s) => s.movers(k),
            CmdView::Published(view) => view.movers(k),
        }
    }

    fn has_view(&self, name: &str) -> bool {
        match self {
            CmdView::Direct(s) => s.has_view(name),
            CmdView::Published(view) => view.has_view(name),
        }
    }

    fn rank_in(&self, name: &str, v: u32) -> Option<f64> {
        match self {
            CmdView::Direct(s) => s.view_rank(name, v),
            CmdView::Published(view) => view.rank_in(name, v),
        }
    }

    fn top_k_in(&self, name: &str, k: usize) -> Option<Vec<(u32, f64)>> {
        match self {
            CmdView::Direct(s) => s.view_top_k(name, k),
            CmdView::Published(view) => view.top_k_in(name, k),
        }
    }

    fn movers_in(&self, name: &str, k: usize) -> Option<Vec<RankDelta>> {
        match self {
            CmdView::Direct(s) => s.view_movers(name, k),
            CmdView::Published(view) => view.movers_in(name, k),
        }
    }

    fn view_names(&self) -> Vec<(String, usize)> {
        match self {
            CmdView::Direct(s) => s.view_names(),
            CmdView::Published(view) => view.view_names(),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            CmdView::Direct(s) => s.steps(),
            CmdView::Published(view) => view.epoch(),
        }
    }
}

impl Backend<'_> {
    /// Pin the state one command answers from. Under the concurrent
    /// server this is one published-view load; commands never mix two
    /// epochs within a reply.
    fn view(&self) -> CmdView<'_> {
        match self {
            Backend::Direct(s) => CmdView::Direct(s),
            Backend::Durable { session, .. } => CmdView::Direct(session),
            Backend::Concurrent { reader, .. } | Backend::Replica { reader, .. } => {
                CmdView::Published(reader.view())
            }
        }
    }

    fn algorithm(&self) -> Algorithm {
        match self {
            Backend::Direct(s) => s.algorithm(),
            Backend::Durable { session, .. } => session.algorithm(),
            Backend::Concurrent { algorithm, .. } | Backend::Replica { algorithm, .. } => {
                *algorithm
            }
        }
    }

    /// `(wal_epoch, wal_bytes)` for `stats`, when this backend logs.
    fn wal_stats(&self) -> Option<(u64, u64)> {
        match self {
            Backend::Direct(_) | Backend::Replica { .. } => None,
            Backend::Durable { durable, .. } => {
                let s = durable.stats_handle();
                Some((s.epoch(), s.bytes()))
            }
            Backend::Concurrent { wal, .. } => wal.as_ref().map(|s| (s.epoch(), s.bytes())),
        }
    }

    /// Gapped-store slot occupancy (permille) for `stats`, when this
    /// backend owns a session committing through the gap-aware CSR.
    /// Published views carry no storage detail, so concurrent workers
    /// and replicas report nothing.
    fn slack_stats(&self) -> Option<u64> {
        match self {
            Backend::Direct(s) => s.slack_stats().map(|s| s.occupancy_permille()),
            Backend::Durable { session, .. } => {
                session.slack_stats().map(|s| s.occupancy_permille())
            }
            Backend::Concurrent { .. } | Backend::Replica { .. } => None,
        }
    }

    /// Does this backend refuse mutations outright?
    fn read_only(&self) -> bool {
        matches!(self, Backend::Replica { .. })
    }
}

/// Apply one writer op through `backend` — the mutation funnel shared
/// by the blocking serve loop and the event-driven server. Direct and
/// Durable backends apply in place; Concurrent funnels the op to the
/// writer thread and blocks for the outcome.
pub(crate) fn apply_writer_op(backend: &mut Backend<'_>, op: WriterOp) -> WriterOutcome {
    match backend {
        Backend::Direct(session) => apply_on(session, op),
        Backend::Durable { session, durable } => apply_logged(session, Some(durable), None, op),
        Backend::Concurrent { writer, .. } => send_writer(writer, op),
        Backend::Replica { .. } => Err((op, "read-only replica".into())),
    }
}

/// Send one op to the writer thread and block for its outcome.
fn send_writer(writer: &mpsc::Sender<WriterRequest>, op: WriterOp) -> WriterOutcome {
    let (tx, rx) = mpsc::sync_channel(1);
    match writer.send(WriterRequest {
        op,
        reply: WriterReply::Sync(tx),
    }) {
        Ok(()) => match rx.recv() {
            Ok(outcome) => outcome,
            // The writer died mid-op; the op is gone with it, and so is
            // the server.
            Err(_) => Err((
                WriterOp::Commit(BatchUpdate::new()),
                "server shutting down".into(),
            )),
        },
        Err(e) => Err((e.0.op, "server shutting down".into())),
    }
}

/// One client's subscription to a vertex's rank.
struct SubEntry {
    eps: f64,
    /// Rank last acknowledged to the client (at subscribe time, or by
    /// the latest push).
    baseline: f64,
}

/// Per-connection protocol state.
#[derive(Default)]
pub(crate) struct ConnState {
    staged: BatchUpdate,
    /// Subscriptions, keyed by vertex — BTreeMap so push blocks list
    /// vertices in ascending order, deterministically.
    subs: BTreeMap<u32, SubEntry>,
}

impl ConnState {
    /// Whether this connection holds any subscriptions (the event loop
    /// skips the proactive-push scan for connections without them).
    pub(crate) fn has_subs(&self) -> bool {
        !self.subs.is_empty()
    }

    /// Collect the subscribed vertices that drifted past eps since
    /// their baseline, against the pinned view, updating baselines for
    /// the collected ones. `eps` = 0 means "any bitwise change".
    fn drain_pushes(&mut self, view: &CmdView<'_>) -> Vec<(u32, f64)> {
        let mut pushed = Vec::new();
        for (&v, entry) in self.subs.iter_mut() {
            let r = view.rank(v);
            let drifted = if entry.eps == 0.0 {
                r.to_bits() != entry.baseline.to_bits()
            } else {
                (r - entry.baseline).abs() > entry.eps
            };
            if drifted {
                entry.baseline = r;
                pushed.push((v, r));
            }
        }
        pushed
    }
}

/// Write an unsolicited `push` block for `state`'s drifted
/// subscriptions against `view`, if any drifted. The event-driven
/// server calls this when the writer publishes a new epoch, so
/// subscribers hear about rank changes without polling; the next
/// command's piggyback preamble then finds nothing left to push.
/// Returns whether a block was written.
pub(crate) fn proactive_push<W: Write>(
    state: &mut ConnState,
    reorder: &SharedReordering,
    view: Arc<RankView>,
    summary: &mut ServeSummary,
    out: &mut W,
) -> std::io::Result<bool> {
    if !state.has_subs() {
        return Ok(false);
    }
    let view = CmdView::Published(view);
    let pushed = state.drain_pushes(&view);
    if pushed.is_empty() {
        return Ok(false);
    }
    summary.pushes += 1;
    reply(
        out,
        reorder,
        &Response::Push {
            entries: pushed,
            epoch: view.epoch(),
        },
    )?;
    Ok(true)
}

/// Drive `session` exclusively with the line protocol from `input`,
/// writing replies to `out`, until EOF or `quit`. Returns the
/// connection counters. This is the single-connection (stdin) mode; the
/// concurrent TCP server drives [`serve_client`] instead.
pub fn serve_connection<R: BufRead, W: Write>(
    session: &mut UpdateSession,
    input: R,
    out: W,
) -> std::io::Result<ServeSummary> {
    serve_client(&mut Backend::Direct(session), input, out)
}

/// [`serve_connection`] over a renumbered session: client-facing ids
/// are translated through `reorder` at the protocol boundary.
pub fn serve_connection_reordered<R: BufRead, W: Write>(
    session: &mut UpdateSession,
    reorder: &SharedReordering,
    input: R,
    out: W,
) -> std::io::Result<ServeSummary> {
    serve_client_reordered(&mut Backend::Direct(session), reorder, input, out)
}

/// [`serve_connection`] with a write-ahead log: mutations are appended
/// and acked in order, and the WAL is flushed to stable storage when
/// the input ends (EOF or `quit`) — the stdin half of graceful
/// shutdown.
pub fn serve_connection_durable<R: BufRead, W: Write>(
    session: &mut UpdateSession,
    durable: &mut Durability,
    input: R,
    out: W,
) -> std::io::Result<ServeSummary> {
    serve_connection_durable_reordered(session, durable, &None, input, out)
}

/// [`serve_connection_durable`] over a renumbered session.
pub fn serve_connection_durable_reordered<R: BufRead, W: Write>(
    session: &mut UpdateSession,
    durable: &mut Durability,
    reorder: &SharedReordering,
    input: R,
    out: W,
) -> std::io::Result<ServeSummary> {
    let summary = serve_client_reordered(
        &mut Backend::Durable { session, durable },
        reorder,
        input,
        out,
    )?;
    if let Err(e) = durable.flush_sync() {
        eprintln!("# shutdown flush failed: {e}");
    }
    Ok(summary)
}

/// Drive one client connection against `backend` until EOF or `quit`.
pub fn serve_client<R: BufRead, W: Write>(
    backend: &mut Backend<'_>,
    input: R,
    out: W,
) -> std::io::Result<ServeSummary> {
    serve_client_reordered(backend, &None, input, out)
}

/// [`serve_client`] with id translation: requests are mapped external →
/// internal before they touch the backend and every vertex id in a
/// reply is mapped back, so clients keep speaking the dataset's
/// original ids no matter how the session renumbered them. With
/// `reorder = None` this is exactly [`serve_client`].
pub fn serve_client_reordered<R: BufRead, W: Write>(
    backend: &mut Backend<'_>,
    reorder: &SharedReordering,
    input: R,
    mut out: W,
) -> std::io::Result<ServeSummary> {
    let mut state = ConnState::default();
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        let Some(parsed) = parse_request(&line) else {
            continue; // blank or comment: no command, no reply
        };
        summary.commands += 1;
        let flow = match parsed {
            Ok(req) => {
                let req = match reorder {
                    Some(r) => translate_request(req, r),
                    None => req,
                };
                match process(backend, reorder, &mut state, &mut summary, req, &mut out)? {
                    Action::Done => Flow::Continue,
                    Action::Mutate { op, kind } => {
                        // The blocking path applies the op inline (for
                        // Concurrent backends this blocks on the writer
                        // thread); the event loop instead parks the
                        // connection and finishes on the completion.
                        let outcome = apply_writer_op(backend, op);
                        let resp = finish_mutation(kind, outcome, &mut state, &mut summary);
                        reply(&mut out, reorder, &resp)?;
                        Flow::Continue
                    }
                    Action::Follow { since } => Flow::Follow { since },
                    Action::Quit => Flow::Quit,
                }
            }
            Err(e) => {
                reply(&mut out, reorder, &Response::Error(e))?;
                Flow::Continue
            }
        };
        out.flush()?;
        match flow {
            Flow::Continue => {}
            Flow::Quit => break,
            Flow::Follow { since } => {
                // The connection becomes a one-way feed: stream until
                // the client hangs up or the hub closes, then end it.
                // Socket errors are ordinary disconnects here.
                if let Backend::Concurrent {
                    reader,
                    feed,
                    algorithm,
                    ..
                } = backend
                {
                    let _ =
                        replica::stream_feed(reader, feed, *algorithm, since, reorder, &mut out);
                }
                break;
            }
        }
    }
    Ok(summary)
}

enum Flow {
    Continue,
    Quit,
    /// Switch this connection to the replication feed.
    Follow {
        since: Option<u64>,
    },
}

/// What [`process`] tells its driver to do after one command.
///
/// Reads and staging are answered inside `process`; mutations come back
/// as [`Mutate`](Action::Mutate) so the driver chooses how to apply
/// them — inline (blocking loop) or asynchronously via a
/// [`WriterReply::Callback`] completion (event loop), finishing with
/// [`finish_mutation`] either way.
pub(crate) enum Action {
    /// The command was fully answered.
    Done,
    /// A mutation is ready for the writer; reply after it resolves.
    Mutate {
        /// The writer op to apply.
        op: WriterOp,
        /// What the pending reply needs to know about the request.
        kind: MutKind,
    },
    /// Switch this connection to the replication feed.
    Follow {
        /// Resume epoch (`follow <epoch>`), if the client has state.
        since: Option<u64>,
    },
    /// The client said `quit`; `bye` is already written.
    Quit,
}

/// Request-side context carried from [`process`] to [`finish_mutation`]
/// across a writer round trip.
pub(crate) enum MutKind {
    /// A `batch` commit; `k` = the client's own staged size (its reply
    /// reports that, not the merged batch the writer may have applied).
    Batch {
        /// Staged-op count taken from this client.
        k: usize,
    },
    /// A `view add`; the reply names the view and its source count.
    ViewAdd {
        /// View name.
        name: String,
        /// Source count of the teleport set.
        sources: usize,
    },
    /// A `view drop`; the reply names the view.
    ViewDrop {
        /// View name.
        name: String,
    },
}

pub(crate) fn reply<W: Write>(
    out: &mut W,
    reorder: &SharedReordering,
    resp: &Response,
) -> std::io::Result<()> {
    match reorder {
        None => writeln!(out, "{}", encode_response(resp)),
        Some(r) => writeln!(
            out,
            "{}",
            encode_response(&translate_response(resp.clone(), r))
        ),
    }
}

/// Map every vertex id in an incoming request from the client's
/// external space to the session's internal space. Out-of-range ids
/// pass through untouched (see [`Reordering::to_internal`]), so range
/// errors keep naming the id the client sent.
pub(crate) fn translate_request(req: Request, r: &Reordering) -> Request {
    match req {
        Request::Insert { u, v } => Request::Insert {
            u: r.to_internal(u),
            v: r.to_internal(v),
        },
        Request::Delete { u, v } => Request::Delete {
            u: r.to_internal(u),
            v: r.to_internal(v),
        },
        Request::Rank { v, view } => Request::Rank {
            v: r.to_internal(v),
            view,
        },
        Request::Subscribe { v, eps } => Request::Subscribe {
            v: r.to_internal(v),
            eps,
        },
        Request::Unsubscribe { v } => Request::Unsubscribe {
            v: r.to_internal(v),
        },
        Request::ViewAdd { name, sources } => Request::ViewAdd {
            name,
            sources: sources
                .into_iter()
                .map(|(v, w)| (r.to_internal(v), w))
                .collect(),
        },
        other => other,
    }
}

/// Map every vertex id in an outgoing reply back to external space.
fn translate_response(resp: Response, r: &Reordering) -> Response {
    let map_entries =
        |es: Vec<(u32, f64)>| es.into_iter().map(|(v, x)| (r.to_external(v), x)).collect();
    match resp {
        Response::Rank {
            v,
            rank,
            epoch,
            view,
        } => Response::Rank {
            v: r.to_external(v),
            rank,
            epoch,
            view,
        },
        Response::TopK {
            entries,
            epochs,
            view,
        } => Response::TopK {
            entries: map_entries(entries),
            epochs,
            view,
        },
        Response::Movers {
            entries,
            epochs,
            view,
        } => Response::Movers {
            entries: entries
                .into_iter()
                .map(|e| MoverEntry {
                    v: r.to_external(e.v),
                    ..e
                })
                .collect(),
            epochs,
            view,
        },
        Response::Push { entries, epoch } => Response::Push {
            entries: map_entries(entries),
            epoch,
        },
        Response::Subscribed { v, eps } => Response::Subscribed {
            v: r.to_external(v),
            eps,
        },
        Response::Unsubscribed { v } => Response::Unsubscribed {
            v: r.to_external(v),
        },
        Response::Error(e) => Response::Error(translate_error(e, r)),
        other => other,
    }
}

/// Map the vertex ids inside a typed error back to external space.
/// `UnknownVertex` carries the offending token as text: a numeric token
/// is an internal id from the range fallthrough and translates; a
/// non-numeric token is the client's own garbage and stays verbatim.
fn translate_error(e: ServeError, r: &Reordering) -> ServeError {
    match e {
        ServeError::VertexOutOfRange { id, n } => ServeError::VertexOutOfRange {
            id: r.to_external(id),
            n,
        },
        ServeError::UnknownVertex(s) => ServeError::UnknownVertex(match s.parse::<u32>() {
            Ok(v) => r.to_external(v).to_string(),
            Err(_) => s,
        }),
        ServeError::EdgeExists(u, v) => ServeError::EdgeExists(r.to_external(u), r.to_external(v)),
        ServeError::EdgeAlreadyStaged(u, v) => {
            ServeError::EdgeAlreadyStaged(r.to_external(u), r.to_external(v))
        }
        ServeError::EdgeMissing(u, v) => {
            ServeError::EdgeMissing(r.to_external(u), r.to_external(v))
        }
        ServeError::SelfLoopDelete(u, v) => {
            ServeError::SelfLoopDelete(r.to_external(u), r.to_external(v))
        }
        ServeError::NotSubscribed(v) => ServeError::NotSubscribed(r.to_external(v)),
        other => other,
    }
}

pub(crate) fn process<W: Write>(
    backend: &mut Backend<'_>,
    reorder: &SharedReordering,
    state: &mut ConnState,
    summary: &mut ServeSummary,
    req: Request,
    out: &mut W,
) -> std::io::Result<Action> {
    // Pin the committed state this command answers from, and piggyback
    // any pending subscription pushes before the reply. `batch` pins
    // before committing, so its own pushes arrive on the next command.
    {
        let view = backend.view();
        let is_poll = matches!(req, Request::Poll);
        let pushed = state.drain_pushes(&view);
        if is_poll || !pushed.is_empty() {
            summary.pushes += 1;
            reply(
                out,
                reorder,
                &Response::Push {
                    entries: pushed,
                    epoch: view.epoch(),
                },
            )?;
        }
        if is_poll {
            return Ok(Action::Done);
        }
    }

    // A replica serves reads only; refuse mutations with one stable
    // error before touching any staging state.
    if backend.read_only()
        && matches!(
            req,
            Request::Insert { .. }
                | Request::Delete { .. }
                | Request::Batch
                | Request::ViewAdd { .. }
                | Request::ViewDrop { .. }
        )
    {
        reply(out, reorder, &Response::Error(ServeError::ReadOnlyReplica))?;
        return Ok(Action::Done);
    }

    let resp = match req {
        Request::Poll => unreachable!("handled by the push preamble"),
        // Single-session servers speak the v1 handshake so historical
        // transcripts stay byte-identical; only the sharded server
        // (`crate::shard`) answers with `Handshake::V2`.
        Request::Hello => Response::Hello(Handshake::V1 {
            algorithm: backend.algorithm().to_string(),
            verbs: VERBS.iter().map(|s| s.to_string()).collect(),
        }),
        Request::Insert { u, v } => {
            let view = backend.view();
            match checked_edge(&view, u, v) {
                Ok(()) => stage_insert(|u, v| view.has_edge(u, v), &mut state.staged, u, v),
                Err(e) => Response::Error(e),
            }
        }
        Request::Delete { u, v } => {
            let view = backend.view();
            match checked_edge(&view, u, v) {
                Ok(()) => stage_delete(|u, v| view.has_edge(u, v), &mut state.staged, u, v),
                Err(e) => Response::Error(e),
            }
        }
        Request::Batch => {
            let batch = std::mem::take(&mut state.staged);
            let k = batch.len();
            return Ok(Action::Mutate {
                op: WriterOp::Commit(batch),
                kind: MutKind::Batch { k },
            });
        }
        Request::Rank { v, view: name } => {
            let view = backend.view();
            let in_range = (v as usize) < view.num_vertices();
            match name {
                None if in_range => Response::Rank {
                    v,
                    rank: view.rank(v),
                    epoch: view.epoch(),
                    view: None,
                },
                Some(name) if !view.has_view(&name) => {
                    Response::Error(ServeError::UnknownView(name))
                }
                Some(name) if in_range => Response::Rank {
                    v,
                    rank: view.rank_in(&name, v).expect("view checked above"),
                    epoch: view.epoch(),
                    view: Some(name),
                },
                _ => Response::Error(ServeError::UnknownVertex(v.to_string())),
            }
        }
        Request::TopK { k, view: name } => {
            let view = backend.view();
            match name {
                None => Response::TopK {
                    entries: view.top_k(k),
                    epochs: ShardEpochs::Single(view.epoch()),
                    view: None,
                },
                Some(name) => match view.top_k_in(&name, k) {
                    Some(entries) => Response::TopK {
                        entries,
                        epochs: ShardEpochs::Single(view.epoch()),
                        view: Some(name),
                    },
                    None => Response::Error(ServeError::UnknownView(name)),
                },
            }
        }
        Request::Movers { k, view: name } => {
            let view = backend.view();
            let to_entries = |ds: Vec<RankDelta>| ds.into_iter().map(MoverEntry::from).collect();
            match name {
                None => Response::Movers {
                    entries: to_entries(view.movers(k)),
                    epochs: ShardEpochs::Single(view.epoch()),
                    view: None,
                },
                Some(name) => match view.movers_in(&name, k) {
                    Some(ds) => Response::Movers {
                        entries: to_entries(ds),
                        epochs: ShardEpochs::Single(view.epoch()),
                        view: Some(name),
                    },
                    None => Response::Error(ServeError::UnknownView(name)),
                },
            }
        }
        Request::Stats => {
            let view = backend.view();
            Response::Stats {
                n: view.num_vertices(),
                m: view.num_edges(),
                steps: view.epoch(),
                staged: state.staged.len(),
                algo: backend.algorithm().to_string(),
                epochs: ShardEpochs::Single(view.epoch()),
                wal: backend.wal_stats(),
                slack: backend.slack_stats(),
                queues: None,
            }
        }
        Request::Subscribe { v, eps } => {
            let view = backend.view();
            if (v as usize) < view.num_vertices() {
                let baseline = view.rank(v);
                state.subs.insert(v, SubEntry { eps, baseline });
                Response::Subscribed { v, eps }
            } else {
                Response::Error(ServeError::VertexOutOfRange {
                    id: v,
                    n: view.num_vertices(),
                })
            }
        }
        Request::Unsubscribe { v } => {
            if state.subs.remove(&v).is_some() {
                Response::Unsubscribed { v }
            } else {
                Response::Error(ServeError::NotSubscribed(v))
            }
        }
        Request::ViewAdd { name, sources } => {
            let count = sources.len();
            match view_add_precheck(&backend.view(), &name, &sources) {
                Err(e) => Response::Error(e),
                Ok(()) => match Teleport::personalized(sources) {
                    // Parse-level validation already passed; remaining
                    // failures (e.g. duplicate sources) surface here.
                    Err(msg) => Response::Error(ServeError::ViewRejected(msg)),
                    Ok(teleport) => {
                        return Ok(Action::Mutate {
                            op: WriterOp::AddView {
                                name: name.clone(),
                                teleport,
                            },
                            kind: MutKind::ViewAdd {
                                name,
                                sources: count,
                            },
                        });
                    }
                },
            }
        }
        Request::ViewDrop { name } => {
            if backend.view().has_view(&name) {
                return Ok(Action::Mutate {
                    op: WriterOp::DropView { name: name.clone() },
                    kind: MutKind::ViewDrop { name },
                });
            }
            Response::Error(ServeError::UnknownView(name))
        }
        Request::Views => Response::Views {
            entries: backend.view().view_names(),
        },
        // A reordered leader ships its permutation in the resync head,
        // so followers translate ids locally — no refusal needed.
        Request::Follow { since } => match backend {
            Backend::Concurrent { .. } => return Ok(Action::Follow { since }),
            _ => Response::Error(ServeError::FollowNeedsTcp),
        },
        Request::Quit => {
            reply(out, reorder, &Response::Bye)?;
            return Ok(Action::Quit);
        }
    };
    reply(out, reorder, &resp)?;
    Ok(Action::Done)
}

/// Turn a writer outcome into the pending command's reply, updating the
/// connection counters and (for a rejected commit) restoring the
/// client's staged edits. The paired entry point to [`process`]'s
/// [`Action::Mutate`]: the blocking loop calls it right after
/// [`apply_writer_op`]; the event loop calls it when the writer's
/// completion arrives.
pub(crate) fn finish_mutation(
    kind: MutKind,
    outcome: WriterOutcome,
    state: &mut ConnState,
    summary: &mut ServeSummary,
) -> Response {
    match kind {
        MutKind::Batch { k } => match outcome {
            Ok(WriterOk::Committed(o)) => {
                summary.batches += 1;
                summary.updates += k as u64;
                Response::BatchOk {
                    batch: k,
                    m: o.edges,
                    status: status_str(o.status).to_string(),
                    iters: o.iterations,
                    epochs: ShardEpochs::Single(o.epoch),
                }
            }
            Ok(_) => unreachable!("commit answered with a non-commit outcome"),
            // Reachable under concurrent clients: another commit can
            // land between staging and this batch. Never die on
            // input — and restore the client's staged edits so they can
            // be inspected or amended.
            Err((op, msg)) => {
                state.staged = match op {
                    WriterOp::Commit(batch) => batch,
                    _ => BatchUpdate::new(),
                };
                Response::Error(refusal_or(msg, ServeError::BatchRejected))
            }
        },
        MutKind::ViewAdd { name, sources } => match outcome {
            Ok(WriterOk::ViewAdded { epoch }) => Response::ViewAdded {
                name,
                sources,
                epoch,
            },
            Ok(_) => unreachable!("view add answered with a non-view outcome"),
            Err((_, msg)) => Response::Error(refusal_or(msg, ServeError::ViewRejected)),
        },
        MutKind::ViewDrop { name } => match outcome {
            Ok(WriterOk::ViewDropped) => Response::ViewDropped { name },
            Ok(_) => unreachable!("view drop answered with a non-view outcome"),
            // A wedged WAL refuses; otherwise this client lost a race
            // with another dropping the same view.
            Err((_, msg)) => Response::Error(refusal_or(msg, |_| ServeError::UnknownView(name))),
        },
    }
}

fn checked_edge(view: &CmdView<'_>, u: u32, v: u32) -> Result<(), ServeError> {
    let n = view.num_vertices();
    for id in [u, v] {
        if id as usize >= n {
            return Err(ServeError::VertexOutOfRange { id, n });
        }
    }
    Ok(())
}

fn view_add_precheck(
    view: &CmdView<'_>,
    name: &str,
    sources: &[(u32, f64)],
) -> Result<(), ServeError> {
    if view.has_view(name) {
        return Err(ServeError::ViewExists(name.to_string()));
    }
    let n = view.num_vertices();
    for &(v, _) in sources {
        if v as usize >= n {
            return Err(ServeError::VertexOutOfRange { id: v, n });
        }
    }
    Ok(())
}

/// Stage an insertion against the committed graph (`has_edge`) plus the
/// staged set. Generic over the edge lookup so the sharded router
/// (whose committed state is a per-shard pin) shares the exact staging
/// rules — including insert/delete cancellation.
pub(crate) fn stage_insert(
    has_edge: impl Fn(u32, u32) -> bool,
    staged: &mut BatchUpdate,
    u: u32,
    v: u32,
) -> Response {
    if let Some(pos) = staged.deletions.iter().position(|&e| e == (u, v)) {
        staged.deletions.swap_remove(pos); // reinstate a staged delete
    } else if has_edge(u, v) {
        return Response::Error(ServeError::EdgeExists(u, v));
    } else if staged.insertions.contains(&(u, v)) {
        return Response::Error(ServeError::EdgeAlreadyStaged(u, v));
    } else {
        staged.insertions.push((u, v));
    }
    Response::Staged {
        count: staged.len(),
    }
}

/// [`stage_insert`]'s deletion counterpart; same sharing rationale.
pub(crate) fn stage_delete(
    has_edge: impl Fn(u32, u32) -> bool,
    staged: &mut BatchUpdate,
    u: u32,
    v: u32,
) -> Response {
    if u == v {
        return Response::Error(ServeError::SelfLoopDelete(u, v));
    }
    if let Some(pos) = staged.insertions.iter().position(|&e| e == (u, v)) {
        staged.insertions.swap_remove(pos); // cancel a staged insert
    } else if !has_edge(u, v) {
        return Response::Error(ServeError::EdgeMissing(u, v));
    } else if staged.deletions.contains(&(u, v)) {
        return Response::Error(ServeError::EdgeAlreadyStaged(u, v));
    } else {
        staged.deletions.push((u, v));
    }
    Response::Staged {
        count: staged.len(),
    }
}

/// Map a mutation failure to its typed error: WAL refusals and the
/// replica refusal have fixed texts of their own; anything else gets
/// the site-specific wrapper.
fn refusal_or(msg: String, wrap: impl FnOnce(String) -> ServeError) -> ServeError {
    if let Some(rest) = msg.strip_prefix("wal unavailable: ") {
        return ServeError::WalUnavailable(rest.to_string());
    }
    if msg == "read-only replica" {
        return ServeError::ReadOnlyReplica;
    }
    wrap(msg)
}

pub(crate) fn status_str(status: RunStatus) -> &'static str {
    match status {
        RunStatus::Converged => "converged",
        RunStatus::MaxIterations => "max-iterations",
        RunStatus::Stalled => "stalled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_core::PagerankOptions;
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::GraphBuilder;

    fn session() -> UpdateSession {
        let mut g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)])
            .build_dyn()
            .unwrap();
        add_self_loops(&mut g);
        let mut s = UpdateSession::new(
            g,
            Algorithm::DfLF,
            PagerankOptions::default().with_threads(1),
        );
        s.enable_delta_tracking();
        s
    }

    fn run(input: &str) -> (String, ServeSummary) {
        let mut s = session();
        let mut out = Vec::new();
        let summary = serve_connection(&mut s, input.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn scripted_session_round_trip() {
        let (out, summary) = run("stats\n\
             insert 4 1\n\
             delete 0 1\n\
             batch\n\
             rank 1\n\
             topk 2\n\
             quit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "stats n=5 m=11 steps=0 staged=0 algo=DFLF epoch=0"
        );
        assert_eq!(lines[1], "staged 1");
        assert_eq!(lines[2], "staged 2");
        assert!(lines[3].starts_with("ok batch=2 m=11 status=converged"));
        assert!(lines[3].ends_with("epoch=1"));
        assert!(lines[4].starts_with("rank 1 "));
        assert!(lines[4].ends_with("epoch=1"));
        assert_eq!(lines[5], "topk 2 epoch=1");
        assert_eq!(summary.commands, 7);
        assert_eq!(summary.batches, 1);
        assert_eq!(summary.updates, 2);
        assert_eq!(*lines.last().unwrap(), "bye");
    }

    #[test]
    fn staging_validates_eagerly() {
        let (out, _) = run("insert 0 1\n\
             delete 9 0\n\
             delete 0 0\n\
             delete 4 0\n\
             delete 4 0\n\
             insert 4 0\n\
             batch\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "err edge (0, 1) already exists");
        assert!(lines[1].starts_with("err vertex 9 out of range"));
        assert!(lines[2].starts_with("err refusing to delete self-loop"));
        assert_eq!(lines[3], "staged 1");
        assert_eq!(lines[4], "err edge (4, 0) already staged");
        assert_eq!(lines[5], "staged 0", "insert cancels the staged delete");
        assert!(lines[6].starts_with("ok batch=0"));
    }

    #[test]
    fn queries_and_errors_never_kill_the_loop() {
        let (out, summary) = run("frobnicate\n\
             topk nope\n\
             rank 99\n\
             \n\
             # comment line\n\
             stats\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err unknown command"));
        assert_eq!(lines[1], "err topk needs an integer");
        assert_eq!(lines[2], "err unknown vertex 99");
        assert!(lines[3].starts_with("stats "));
        assert_eq!(summary.commands, 4, "blanks and comments don't count");
    }

    #[test]
    fn ranks_update_across_batches() {
        let mut s = session();
        let before = s.rank(1);
        let mut out = Vec::new();
        serve_connection(
            &mut s,
            "insert 3 1\ninsert 4 1\nbatch\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        assert!(s.rank(1) > before, "vertex 1 gained in-links");
        assert_eq!(s.steps(), 1);
    }

    #[test]
    fn hello_names_the_protocol_and_verbs() {
        let (out, _) = run("hello\nquit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(
            lines[0].starts_with("hello lfpr/1 algo=DFLF verbs=hello,insert,"),
            "{}",
            lines[0]
        );
        assert!(lines[0].ends_with(",quit"));
    }

    #[test]
    fn personalized_views_serve_alongside_the_default() {
        let (out, _) = run("view add ego 1 2\n\
             views\n\
             rank 1 ego\n\
             rank 1\n\
             topk 2 ego\n\
             insert 3 1\n\
             batch\n\
             rank 1 ego\n\
             movers 2 ego\n\
             view drop ego\n\
             rank 1 ego\n\
             quit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "ok view ego sources=2 epoch=0");
        assert_eq!(lines[1], "views 1");
        assert_eq!(lines[2], "ego sources=2");
        assert!(lines[3].starts_with("rank 1 ") && lines[3].ends_with("epoch=0 view=ego"));
        assert!(lines[4].ends_with("epoch=0"), "default has no view suffix");
        assert_ne!(
            lines[3].split_whitespace().nth(2),
            lines[4].split_whitespace().nth(2),
            "personalized rank differs from the default"
        );
        assert_eq!(lines[5], "topk 2 epoch=0 view=ego");
        // lines 6–7: topk entries; then staged 1 / ok batch=1 …
        assert_eq!(lines[8], "staged 1");
        assert!(lines[9].starts_with("ok batch=1"));
        assert!(lines[10].ends_with("epoch=1 view=ego"));
        assert!(lines[11].starts_with("movers ") && lines[11].ends_with("epoch=1 view=ego"));
        let movers: usize = lines[11]
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(movers > 0, "a committed edge must move some rank");
        let after_movers = 12 + movers;
        assert_eq!(lines[after_movers], "ok dropped view ego");
        assert_eq!(lines[after_movers + 1], "err unknown view ego");
    }

    #[test]
    fn view_add_is_validated() {
        let (out, _) = run("view add default 1\n\
             view add 9bad 1\n\
             view add ego 99\n\
             view add ego 1 1\n\
             view add ego 1\n\
             view add ego 2\n\
             quit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "err view name default is reserved");
        assert_eq!(lines[1], "err bad view name 9bad");
        assert!(lines[2].starts_with("err vertex 99 out of range"));
        assert!(lines[3].starts_with("err view rejected: duplicate teleport source"));
        assert_eq!(lines[4], "ok view ego sources=1 epoch=0");
        assert_eq!(lines[5], "err view ego already exists");
    }

    #[test]
    fn subscriptions_push_after_commits() {
        // eps=0: any bitwise rank change is pushed; the push block rides
        // in front of the next command's reply, baselines advance, and a
        // second poll is empty.
        let (out, summary) = run("subscribe 1 0\n\
             subscribe 3 1e9\n\
             insert 3 1\n\
             insert 4 1\n\
             batch\n\
             poll\n\
             poll\n\
             unsubscribe 1\n\
             unsubscribe 1\n\
             quit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "subscribed 1 eps=0e0");
        assert_eq!(lines[1], "subscribed 3 eps=1e9");
        assert_eq!(lines[2], "staged 1");
        assert_eq!(lines[3], "staged 2");
        assert!(lines[4].starts_with("ok batch=2"), "{}", lines[4]);
        // Vertex 1 gained in-links (pushed); vertex 3's eps is huge (not pushed).
        assert_eq!(lines[5], "push 1 epoch=1");
        assert!(lines[6].starts_with("1 "), "{}", lines[6]);
        assert_eq!(lines[7], "push 0 epoch=1", "baseline advanced");
        assert_eq!(lines[8], "unsubscribed 1");
        assert_eq!(lines[9], "err not subscribed to vertex 1");
        assert_eq!(lines[10], "bye");
        assert_eq!(summary.pushes, 2);
    }

    #[test]
    fn pushes_piggyback_before_other_replies() {
        let (out, _) = run("subscribe 1 0\n\
             insert 3 1\n\
             batch\n\
             stats\n\
             quit\n");
        let lines: Vec<&str> = out.lines().collect();
        // The batch reply comes from a view pinned pre-commit: no push
        // interleaves with it. The next command carries the push.
        assert!(lines[2].starts_with("ok batch=1"));
        assert_eq!(lines[3], "push 1 epoch=1");
        assert!(lines[4].starts_with("1 "));
        assert!(lines[5].starts_with("stats "));
    }

    #[test]
    fn subscribe_validates_vertices() {
        let (out, _) = run("subscribe 99 0\nsubscribe 1 nope\nquit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err vertex 99 out of range"));
        assert_eq!(lines[1], "err bad eps nope");
    }

    #[test]
    fn concurrent_backend_answers_from_published_views() {
        // A Concurrent backend wired to an in-thread "writer": ops
        // drain synchronously after the serve loop ends, so replies to
        // reads must come from the published view only.
        let mut s = session();
        let reader = s.reader();
        let (tx, rx) = mpsc::channel::<WriterRequest>();
        let mut backend = Backend::Concurrent {
            reader,
            writer: tx,
            algorithm: s.algorithm(),
            feed: FeedHub::new(),
            wal: None,
        };
        let mut out = Vec::new();
        // Reads before any commit: epoch 0.
        serve_client(&mut backend, "stats\nrank 1\ntopk 1\n".as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        for line in text.lines().take(3) {
            assert!(line.contains("epoch=0"), "{line}");
        }
        // A commit via the funnel: handled by the session writer.
        let (rtx, rrx) = mpsc::sync_channel(1);
        let Backend::Concurrent { writer, .. } = &backend else {
            unreachable!()
        };
        writer
            .send(WriterRequest {
                op: WriterOp::Commit(BatchUpdate::insert_only(vec![(4, 1)])),
                reply: WriterReply::Sync(rtx),
            })
            .unwrap();
        let req = rx.recv().unwrap();
        let outcome = apply_on(&mut s, req.op);
        req.reply.deliver(outcome);
        assert!(rrx.recv().unwrap().is_ok());
        // The published view caught up.
        let mut out = Vec::new();
        serve_client(&mut backend, "rank 1\n".as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.trim_end().ends_with("epoch=1"), "{text}");
    }

    #[test]
    fn concurrent_backend_serves_views_through_the_writer() {
        let mut s = session();
        let reader = s.reader();
        let (tx, rx) = mpsc::channel::<WriterRequest>();
        // An in-thread writer: applies every funneled op against the
        // session as soon as it arrives.
        let mut backend = Backend::Concurrent {
            reader,
            writer: tx,
            algorithm: s.algorithm(),
            feed: FeedHub::new(),
            wal: None,
        };
        let writer_thread = std::thread::spawn(move || {
            while let Ok(req) = rx.recv() {
                let outcome = apply_on(&mut s, req.op);
                req.reply.deliver(outcome);
            }
        });
        let mut out = Vec::new();
        serve_client(
            &mut backend,
            "view add ego 1\nviews\nrank 1 ego\nview drop ego\nquit\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        drop(backend);
        writer_thread.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "ok view ego sources=1 epoch=0");
        assert_eq!(lines[1], "views 1");
        assert_eq!(lines[2], "ego sources=1");
        assert!(lines[3].ends_with("view=ego"), "{}", lines[3]);
        assert_eq!(lines[4], "ok dropped view ego");
    }

    #[test]
    fn gapped_sessions_report_slack_in_stats() {
        use lfpr_core::session::StorageLayout;
        let mut s = session();
        s.set_storage_layout(StorageLayout::Gapped);
        let mut out = Vec::new();
        serve_connection(
            &mut s,
            "stats\ninsert 4 1\nbatch\nstats\nquit\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let stats: Vec<&str> = text.lines().filter(|l| l.starts_with("stats ")).collect();
        assert_eq!(stats.len(), 2);
        for line in stats {
            let slack = crate::protocol::field(line, "slack");
            assert!(slack.is_some(), "{line}");
            assert!(slack.unwrap() <= 1000, "{line}");
        }
        // Packed sessions keep their historical stats bytes.
        let (out, _) = run("stats\nquit\n");
        assert!(!out.contains("slack="), "{out}");
    }

    #[test]
    fn reordered_sessions_translate_ids_at_the_boundary() {
        use lfpr_graph::reorder::ReorderStrategy;
        // Renumber the test graph, run the session in internal id
        // space, and serve through the translation boundary: the
        // transcript must speak external (original) ids throughout.
        let mut g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)])
            .build_dyn()
            .unwrap();
        add_self_loops(&mut g);
        let r = Arc::new(Reordering::compute(ReorderStrategy::Degree, &g).unwrap());
        let mut s = UpdateSession::new(
            r.apply(&g),
            Algorithm::DfLF,
            PagerankOptions::default().with_threads(1),
        );
        s.enable_delta_tracking();
        let reorder: SharedReordering = Some(Arc::clone(&r));
        let mut out = Vec::new();
        serve_connection_reordered(
            &mut s,
            &reorder,
            "rank 1\n\
             insert 0 1\n\
             delete 0 1\n\
             subscribe 3 0\n\
             topk 5\n\
             rank 99\n\
             follow\n\
             quit\n"
                .as_bytes(),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // The reply names external vertex 1 but carries the rank the
        // session computed for its internal image.
        assert_eq!(
            lines[0],
            format!("rank 1 {:.6e} epoch=0", s.rank(r.to_internal(1)))
        );
        // Edge errors come back in external ids.
        assert_eq!(lines[1], "err edge (0, 1) already exists");
        assert_eq!(lines[2], "staged 1");
        assert_eq!(lines[3], "subscribed 3 eps=0e0");
        // topk over the whole graph names every external id exactly once.
        assert_eq!(lines[4], "topk 5 epoch=0");
        let mut topk_ids: Vec<u32> = lines[5..10]
            .iter()
            .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
            .collect();
        topk_ids.sort_unstable();
        assert_eq!(topk_ids, vec![0, 1, 2, 3, 4]);
        // Out-of-range ids pass through untranslated.
        assert_eq!(lines[10], "err unknown vertex 99");
        // Reordered sessions may be followed (the resync ships the
        // permutation), but follow still needs the TCP server.
        assert_eq!(lines[11], "err follow requires --tcp");
        assert_eq!(lines[12], "bye");
    }
}
