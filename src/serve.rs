//! The `lfpr serve` line protocol — a long-running streaming batch
//! service over an [`UpdateSession`].
//!
//! One command per line, whitespace-separated tokens; every command
//! produces exactly one reply block on the output stream, so a scripted
//! session is diffable byte-for-byte (CI does exactly that). Timing is
//! reported in-band only where deterministic; wall-clock numbers go to
//! stderr.
//!
//! ```text
//! insert <u> <v>   stage an edge insertion        → staged <count>
//! delete <u> <v>   stage an edge deletion         → staged <count>
//! batch            commit staged ops as one Δt    → ok batch=<k> m=<m> status=<s> iters=<i>
//! topk <k>         k highest-ranked vertices      → topk <k> + k lines "<v> <rank>"
//! rank <v>         one vertex's rank              → rank <v> <value>
//! stats            session counters               → stats n=.. m=.. steps=.. staged=.. algo=..
//! quit             end the session                → bye
//! ```
//!
//! Staged operations are validated eagerly against the current graph
//! (plus the staged set), so `batch` cannot fail halfway; queries
//! always see the last committed ranks. Deleting a self-loop is
//! refused — self-loops implement dead-end elimination (§5.1.3) and
//! removing one would leak rank mass. A staged insert/delete pair of
//! the same edge cancels out, mirroring [`crate::MutGuard`].

use lfpr_core::session::UpdateSession;
use lfpr_core::RunStatus;
use lfpr_graph::BatchUpdate;
use std::io::{BufRead, Write};

/// Counters a serve loop reports when the connection ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Lines processed (excluding blanks/comments).
    pub commands: u64,
    /// Batches committed.
    pub batches: u64,
    /// Edge updates committed across all batches.
    pub updates: u64,
}

/// Drive `session` with the line protocol from `input`, writing replies
/// to `out`, until EOF or `quit`. Returns the connection counters.
pub fn serve_connection<R: BufRead, W: Write>(
    session: &mut UpdateSession,
    input: R,
    mut out: W,
) -> std::io::Result<ServeSummary> {
    let mut staged = BatchUpdate::new();
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() || tokens[0].starts_with('#') {
            continue;
        }
        summary.commands += 1;
        match handle(session, &mut staged, &mut summary, &tokens, &mut out)? {
            Flow::Continue => {}
            Flow::Quit => break,
        }
        out.flush()?;
    }
    Ok(summary)
}

enum Flow {
    Continue,
    Quit,
}

fn handle<W: Write>(
    session: &mut UpdateSession,
    staged: &mut BatchUpdate,
    summary: &mut ServeSummary,
    tokens: &[&str],
    out: &mut W,
) -> std::io::Result<Flow> {
    match tokens {
        ["insert", u, v] => match parse_edge(session, u, v) {
            Ok((u, v)) => stage_insert(session, staged, u, v, out)?,
            Err(msg) => writeln!(out, "err {msg}")?,
        },
        ["delete", u, v] => match parse_edge(session, u, v) {
            Ok((u, v)) => stage_delete(session, staged, u, v, out)?,
            Err(msg) => writeln!(out, "err {msg}")?,
        },
        ["batch"] => {
            let batch = std::mem::take(staged);
            let k = batch.len();
            match session.step(&batch) {
                Ok(stats) => {
                    summary.batches += 1;
                    summary.updates += k as u64;
                    writeln!(
                        out,
                        "ok batch={k} m={} status={} iters={}",
                        session.graph().num_edges(),
                        status_str(stats.status),
                        stats.iterations
                    )?;
                    eprintln!(
                        "# batch {k} updates in {:?} (snapshot {:?}, ranks {:?}, {} vertices)",
                        stats.total_time,
                        stats.snapshot_time,
                        stats.runtime,
                        stats.vertices_processed
                    );
                }
                // Unreachable when staging validated (the graph only
                // changes through commits), but never die on input —
                // and never drop the client's staged edits either.
                Err(e) => {
                    *staged = batch;
                    writeln!(out, "err batch rejected: {e}")?;
                }
            }
        }
        ["topk", k] => match k.parse::<usize>() {
            Ok(k) => {
                let top = session.top_k(k);
                writeln!(out, "topk {}", top.len())?;
                for (v, r) in top {
                    writeln!(out, "{v} {r:.6e}")?;
                }
            }
            Err(_) => writeln!(out, "err topk needs an integer")?,
        },
        ["rank", v] => match v.parse::<u32>() {
            Ok(v) if (v as usize) < session.graph().num_vertices() => {
                writeln!(out, "rank {v} {:.6e}", session.rank(v))?;
            }
            _ => writeln!(out, "err unknown vertex {v}")?,
        },
        ["stats"] => {
            writeln!(
                out,
                "stats n={} m={} steps={} staged={} algo={}",
                session.graph().num_vertices(),
                session.graph().num_edges(),
                session.steps(),
                staged.len(),
                session.algorithm()
            )?;
        }
        ["quit"] => {
            writeln!(out, "bye")?;
            return Ok(Flow::Quit);
        }
        other => writeln!(out, "err unknown command: {}", other.join(" "))?,
    }
    Ok(Flow::Continue)
}

fn parse_edge(session: &UpdateSession, u: &str, v: &str) -> Result<(u32, u32), String> {
    let n = session.graph().num_vertices();
    let parse = |s: &str| -> Result<u32, String> {
        let id: u32 = s.parse().map_err(|_| format!("bad vertex id {s}"))?;
        if (id as usize) < n {
            Ok(id)
        } else {
            Err(format!("vertex {id} out of range (n = {n})"))
        }
    };
    Ok((parse(u)?, parse(v)?))
}

fn stage_insert<W: Write>(
    session: &UpdateSession,
    staged: &mut BatchUpdate,
    u: u32,
    v: u32,
    out: &mut W,
) -> std::io::Result<()> {
    if let Some(pos) = staged.deletions.iter().position(|&e| e == (u, v)) {
        staged.deletions.swap_remove(pos); // reinstate a staged delete
    } else if session.graph().has_edge(u, v) {
        writeln!(out, "err edge ({u}, {v}) already exists")?;
        return Ok(());
    } else if staged.insertions.contains(&(u, v)) {
        writeln!(out, "err edge ({u}, {v}) already staged")?;
        return Ok(());
    } else {
        staged.insertions.push((u, v));
    }
    writeln!(out, "staged {}", staged.len())?;
    Ok(())
}

fn stage_delete<W: Write>(
    session: &UpdateSession,
    staged: &mut BatchUpdate,
    u: u32,
    v: u32,
    out: &mut W,
) -> std::io::Result<()> {
    if u == v {
        writeln!(
            out,
            "err refusing to delete self-loop ({u}, {v}): dead-end elimination"
        )?;
        return Ok(());
    }
    if let Some(pos) = staged.insertions.iter().position(|&e| e == (u, v)) {
        staged.insertions.swap_remove(pos); // cancel a staged insert
    } else if !session.graph().has_edge(u, v) {
        writeln!(out, "err edge ({u}, {v}) does not exist")?;
        return Ok(());
    } else if staged.deletions.contains(&(u, v)) {
        writeln!(out, "err edge ({u}, {v}) already staged")?;
        return Ok(());
    } else {
        staged.deletions.push((u, v));
    }
    writeln!(out, "staged {}", staged.len())?;
    Ok(())
}

fn status_str(status: RunStatus) -> &'static str {
    match status {
        RunStatus::Converged => "converged",
        RunStatus::MaxIterations => "max-iterations",
        RunStatus::Stalled => "stalled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_core::{Algorithm, PagerankOptions};
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::GraphBuilder;

    fn session() -> UpdateSession {
        let mut g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 0)])
            .build_dyn()
            .unwrap();
        add_self_loops(&mut g);
        UpdateSession::new(
            g,
            Algorithm::DfLF,
            PagerankOptions::default().with_threads(1),
        )
    }

    fn run(input: &str) -> (String, ServeSummary) {
        let mut s = session();
        let mut out = Vec::new();
        let summary = serve_connection(&mut s, input.as_bytes(), &mut out).unwrap();
        (String::from_utf8(out).unwrap(), summary)
    }

    #[test]
    fn scripted_session_round_trip() {
        let (out, summary) = run("stats\n\
             insert 4 1\n\
             delete 0 1\n\
             batch\n\
             rank 1\n\
             topk 2\n\
             quit\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "stats n=5 m=11 steps=0 staged=0 algo=DFLF");
        assert_eq!(lines[1], "staged 1");
        assert_eq!(lines[2], "staged 2");
        assert!(lines[3].starts_with("ok batch=2 m=11 status=converged"));
        assert!(lines[4].starts_with("rank 1 "));
        assert_eq!(lines[5], "topk 2");
        assert_eq!(summary.commands, 7);
        assert_eq!(summary.batches, 1);
        assert_eq!(summary.updates, 2);
        assert_eq!(*lines.last().unwrap(), "bye");
    }

    #[test]
    fn staging_validates_eagerly() {
        let (out, _) = run("insert 0 1\n\
             delete 9 0\n\
             delete 0 0\n\
             delete 4 0\n\
             delete 4 0\n\
             insert 4 0\n\
             batch\n");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "err edge (0, 1) already exists");
        assert!(lines[1].starts_with("err vertex 9 out of range"));
        assert!(lines[2].starts_with("err refusing to delete self-loop"));
        assert_eq!(lines[3], "staged 1");
        assert_eq!(lines[4], "err edge (4, 0) already staged");
        assert_eq!(lines[5], "staged 0", "insert cancels the staged delete");
        assert!(lines[6].starts_with("ok batch=0"));
    }

    #[test]
    fn queries_and_errors_never_kill_the_loop() {
        let (out, summary) = run("frobnicate\n\
             topk nope\n\
             rank 99\n\
             \n\
             # comment line\n\
             stats\n");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("err unknown command"));
        assert_eq!(lines[1], "err topk needs an integer");
        assert_eq!(lines[2], "err unknown vertex 99");
        assert!(lines[3].starts_with("stats "));
        assert_eq!(summary.commands, 4, "blanks and comments don't count");
    }

    #[test]
    fn ranks_update_across_batches() {
        let mut s = session();
        let before = s.rank(1);
        let mut out = Vec::new();
        serve_connection(
            &mut s,
            "insert 3 1\ninsert 4 1\nbatch\n".as_bytes(),
            &mut out,
        )
        .unwrap();
        assert!(s.rank(1) > before, "vertex 1 gained in-links");
        assert_eq!(s.steps(), 1);
    }
}
