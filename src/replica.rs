//! The replication feed: leader-side fan-out of committed batches and a
//! reconnecting follower that mirrors the session.
//!
//! The `follow` verb switches a TCP connection from request/reply to a
//! one-way stream. The leader first answers with either `feed ok`
//! (the follower's epoch matches the pinned view) or a full `feed
//! resync` block (graph, ranks, deltas, named views — everything
//! [`UpdateSession::restore`] needs), then pushes one frame per applied
//! mutation:
//!
//! ```text
//! delta epoch=<e> del=<d> ins=<i>   + d+i `u v` lines (deletions first)
//! feedview add <name> epoch=<e> sources=<s>   + s `v w` lines
//! feedview drop <name> epoch=<e>
//! ```
//!
//! Floats travel as `{:e}` — the shortest form that parses back to the
//! same bits — so a one-threaded follower tracks the leader
//! bit-for-bit. The follower recomputes view creations statically
//! rather than shipping rank vectors: at the same graph state and one
//! thread that is deterministic, hence bit-equal.
//!
//! The [`FeedHub`] is the in-process junction: the writer publishes
//! every logged mutation (the same [`WalRecord`] values the WAL gets),
//! each following connection owns a subscription queue. Queues are
//! unbounded but only ever hold the frames a live TCP connection has
//! not drained yet; a follower that disappears is dropped at the next
//! failed send. [`FeedHub::close`] unblocks every stream so server
//! shutdown cannot deadlock on an idle follower.
//!
//! [`Follower`] is the other end: it dials the leader, requests
//! `follow <epoch>` when it already has state (plain `follow`
//! otherwise), applies frames through the ordinary session path, and
//! publishes the result locally through a [`RankReader`]. Connection
//! loss, epoch gaps, and rejected frames all funnel into the same
//! recovery: reconnect with bounded exponential backoff and let the
//! leader decide between `feed ok` and a fresh resync.

use crate::durable::teleport_from_normalized;
use crate::protocol::field;
use lfpr_core::session::UpdateSession;
use lfpr_core::{Algorithm, PagerankOptions, RankDelta, RankReader, RankView};
use lfpr_graph::io::wal::WalRecord;
use lfpr_graph::reorder::SharedReordering;
use lfpr_graph::{BatchUpdate, DynGraph, Reordering};
use std::io::{self, BufRead, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Leader side: the hub and the per-connection stream.
// ---------------------------------------------------------------------------

/// Fan-out point between the single writer and any number of following
/// connections. Cloning shares the hub.
#[derive(Clone, Default)]
pub struct FeedHub {
    inner: Arc<Mutex<HubState>>,
}

#[derive(Default)]
struct HubState {
    subs: Vec<Sender<Arc<WalRecord>>>,
    closed: bool,
}

impl FeedHub {
    /// A fresh hub with no subscribers.
    pub fn new() -> FeedHub {
        FeedHub::default()
    }

    /// Register a follower queue. On a closed hub the queue is born
    /// disconnected, so the subscriber's first `recv` returns
    /// immediately instead of blocking a dying server.
    pub fn subscribe(&self) -> Receiver<Arc<WalRecord>> {
        let (tx, rx) = mpsc::channel();
        let mut st = self.inner.lock().expect("feed hub poisoned");
        if !st.closed {
            st.subs.push(tx);
        }
        rx
    }

    /// Queue one applied mutation for every live follower. Cheap (one
    /// Arc clone per subscriber) and a no-op without subscribers.
    pub fn publish(&self, rec: WalRecord) {
        let mut st = self.inner.lock().expect("feed hub poisoned");
        if st.subs.is_empty() {
            return;
        }
        let rec = Arc::new(rec);
        st.subs.retain(|tx| tx.send(Arc::clone(&rec)).is_ok());
    }

    /// Drop every subscription and refuse new ones: all blocked feed
    /// streams wake with a disconnect. Called by server shutdown
    /// *before* joining workers.
    pub fn close(&self) {
        let mut st = self.inner.lock().expect("feed hub poisoned");
        st.closed = true;
        st.subs.clear();
    }

    /// How many follower queues are attached right now.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().expect("feed hub poisoned").subs.len()
    }
}

/// Serve one `follow` connection: subscribe, pin the latest view,
/// answer `feed ok`/`feed resync`, then stream frames until the client
/// hangs up or the hub closes. Returns the number of live frames sent.
///
/// Subscription happens *before* the view is pinned, so no mutation can
/// fall between the snapshot and the stream; the overlap is resolved by
/// skipping frames the pinned view already contains.
pub fn stream_feed<W: Write>(
    reader: &RankReader,
    hub: &FeedHub,
    algorithm: Algorithm,
    since: Option<u64>,
    reorder: &SharedReordering,
    out: &mut W,
) -> io::Result<u64> {
    let rx = hub.subscribe();
    let pinned = reader.view();
    let epoch = pinned.epoch();
    if since == Some(epoch) {
        writeln!(out, "feed ok epoch={epoch}")?;
    } else {
        write_resync(out, &pinned, algorithm, reorder)?;
    }
    out.flush()?;
    let mut sent = 0u64;
    while let Ok(rec) = rx.recv() {
        if !record_is_fresh(&rec, &pinned) {
            continue;
        }
        write_feed_event(out, &rec)?;
        out.flush()?;
        sent += 1;
    }
    Ok(sent)
}

/// Whether a published record post-dates `pinned` — the overlap filter
/// between subscribing to the hub and pinning the view. Shared by
/// [`stream_feed`] and the event-driven server's follower connections.
pub(crate) fn record_is_fresh(rec: &WalRecord, pinned: &RankView) -> bool {
    match rec {
        // A commit the pinned view already reflects was queued between
        // subscribe and pin.
        WalRecord::Commit { epoch, .. } => *epoch > pinned.epoch(),
        // View ops do not bump the epoch; membership in the pinned view
        // is the tie-breaker for frames at the pin epoch.
        WalRecord::ViewAdd { epoch, name, .. } => *epoch > pinned.epoch() || !pinned.has_view(name),
        WalRecord::ViewDrop { epoch, name } => *epoch > pinned.epoch() || pinned.has_view(name),
    }
}

/// Encode one live feed frame.
pub fn write_feed_event<W: Write>(out: &mut W, rec: &WalRecord) -> io::Result<()> {
    match rec {
        WalRecord::Commit { epoch, batch } => {
            writeln!(
                out,
                "delta epoch={epoch} del={} ins={}",
                batch.deletions.len(),
                batch.insertions.len()
            )?;
            for &(u, v) in batch.deletions.iter().chain(&batch.insertions) {
                writeln!(out, "{u} {v}")?;
            }
        }
        WalRecord::ViewAdd {
            epoch,
            name,
            sources,
        } => {
            writeln!(
                out,
                "feedview add {name} epoch={epoch} sources={}",
                sources.len()
            )?;
            for &(v, w) in sources {
                writeln!(out, "{v} {w:e}")?;
            }
        }
        WalRecord::ViewDrop { epoch, name } => {
            writeln!(out, "feedview drop {name} epoch={epoch}")?;
        }
    }
    Ok(())
}

/// Encode a full state transfer from a pinned view: everything a
/// follower needs to [`UpdateSession::restore`] the leader's exact
/// state at this epoch.
///
/// A reordered leader appends ` perm=<n>` to the head and ships its
/// external→internal permutation (one internal id per line, in external
/// order) right after it, so the follower can translate client-facing
/// ids at its own serve boundary; everything else in the block — and
/// every live frame — stays in internal id space. Unreordered leaders
/// emit the exact historical byte layout.
pub fn write_resync<W: Write>(
    out: &mut W,
    view: &RankView,
    algorithm: Algorithm,
    reorder: &SharedReordering,
) -> io::Result<()> {
    let snapshot = view.snapshot();
    let names = view.view_names();
    write!(
        out,
        "feed resync epoch={} algo={algorithm} n={} m={} deltas={} views={}",
        view.epoch(),
        snapshot.num_vertices(),
        snapshot.num_edges(),
        view.deltas().len(),
        names.len()
    )?;
    match reorder {
        None => writeln!(out)?,
        Some(r) => {
            writeln!(out, " perm={}", r.len())?;
            for &int in r.perm() {
                writeln!(out, "{int}")?;
            }
        }
    }
    for (u, v) in snapshot.edges() {
        writeln!(out, "{u} {v}")?;
    }
    for r in view.ranks() {
        writeln!(out, "{r:e}")?;
    }
    for d in view.deltas() {
        writeln!(out, "{} {:e} {:e}", d.vertex, d.old, d.new)?;
    }
    for (name, _) in &names {
        let sources: Vec<(u32, f64)> = view
            .teleport_in(name)
            .and_then(|t| t.weights().map(|w| w.sources().to_vec()))
            .unwrap_or_default();
        let deltas = view.deltas_in(name).expect("view listed");
        writeln!(
            out,
            "view {name} sources={} deltas={}",
            sources.len(),
            deltas.len()
        )?;
        for (v, w) in sources {
            writeln!(out, "{v} {w:e}")?;
        }
        for r in view.ranks_in(name).expect("view listed") {
            writeln!(out, "{r:e}")?;
        }
        for d in deltas {
            writeln!(out, "{} {:e} {:e}", d.vertex, d.old, d.new)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Frame parsing (follower side).
// ---------------------------------------------------------------------------

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace().find_map(|tok| {
        let (k, v) = tok.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn parse_edge(line: &str) -> Result<(u32, u32), String> {
    let mut it = line.split_whitespace();
    let bad = || format!("bad edge line {line:?}");
    let u = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let v = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    if it.next().is_some() {
        return Err(bad());
    }
    Ok((u, v))
}

fn parse_delta(line: &str) -> Result<RankDelta, String> {
    let mut it = line.split_whitespace();
    let bad = || format!("bad delta line {line:?}");
    let vertex = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let old = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let new = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    if it.next().is_some() {
        return Err(bad());
    }
    Ok(RankDelta { vertex, old, new })
}

fn parse_weighted(line: &str) -> Result<(u32, f64), String> {
    let mut it = line.split_whitespace();
    let bad = || format!("bad source line {line:?}");
    let v = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    let w = it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
    if it.next().is_some() {
        return Err(bad());
    }
    Ok((v, w))
}

/// Pull `count` payload lines with a line source.
fn take_lines<E>(
    mut next: impl FnMut() -> Result<Option<String>, E>,
    count: usize,
    what: &str,
) -> Result<Vec<String>, String>
where
    E: fmt::Display,
{
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        match next() {
            Ok(Some(line)) => out.push(line),
            Ok(None) => return Err(format!("feed ended inside {what}")),
            Err(e) => return Err(format!("feed failed inside {what}: {e}")),
        }
    }
    Ok(out)
}

use std::fmt;

/// Parse a full `feed resync` block (head already read) into a live
/// session, reading payload lines from `next`. The second element is
/// the leader's id permutation when the head carries `perm=` (a
/// reordered leader) — the follower installs it at its own serve
/// boundary; the session itself stays in internal id space.
pub fn read_resync<E: fmt::Display>(
    head: &str,
    runtime: PagerankOptions,
    mut next: impl FnMut() -> Result<Option<String>, E>,
) -> Result<(UpdateSession, Option<Reordering>), String> {
    let bad = |what: &str| format!("bad resync head ({what}): {head:?}");
    let epoch = field(head, "epoch").ok_or_else(|| bad("epoch"))?;
    let algorithm: Algorithm = field_str(head, "algo")
        .ok_or_else(|| bad("algo"))?
        .parse()
        .map_err(|e| format!("resync names unknown algorithm: {e}"))?;
    let n = field(head, "n").ok_or_else(|| bad("n"))? as usize;
    let m = field(head, "m").ok_or_else(|| bad("m"))? as usize;
    let n_deltas = field(head, "deltas").ok_or_else(|| bad("deltas"))? as usize;
    let n_views = field(head, "views").ok_or_else(|| bad("views"))? as usize;

    let reorder = match field(head, "perm") {
        None => None,
        Some(p) => {
            let perm = take_lines(&mut next, p as usize, "permutation")?
                .iter()
                .map(|l| {
                    l.trim()
                        .parse::<u32>()
                        .map_err(|_| format!("bad permutation line {l:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Some(
                Reordering::from_perm(perm)
                    .map_err(|e| format!("resync permutation invalid: {e}"))?,
            )
        }
    };

    let edges = take_lines(&mut next, m, "edge list")?
        .iter()
        .map(|l| parse_edge(l))
        .collect::<Result<Vec<_>, _>>()?;
    let ranks = parse_rank_lines(take_lines(&mut next, n, "rank vector")?)?;
    let deltas = take_lines(&mut next, n_deltas, "delta list")?
        .iter()
        .map(|l| parse_delta(l))
        .collect::<Result<Vec<_>, _>>()?;

    let graph = DynGraph::from_edges(n, edges).map_err(|e| format!("resync graph invalid: {e}"))?;
    let mut session = UpdateSession::restore(graph, algorithm, runtime, &ranks, epoch)?;
    session.enable_delta_tracking();
    session.restore_deltas(deltas);

    for _ in 0..n_views {
        let head = match next() {
            Ok(Some(line)) => line,
            Ok(None) => return Err("feed ended inside view list".into()),
            Err(e) => return Err(format!("feed failed inside view list: {e}")),
        };
        let name = head
            .strip_prefix("view ")
            .and_then(|rest| rest.split_whitespace().next())
            .ok_or_else(|| format!("bad view head {head:?}"))?
            .to_string();
        let n_sources = field(&head, "sources").ok_or_else(|| format!("bad view head {head:?}"))?;
        let n_vdeltas = field(&head, "deltas").ok_or_else(|| format!("bad view head {head:?}"))?;
        let sources = take_lines(&mut next, n_sources as usize, "view sources")?
            .iter()
            .map(|l| parse_weighted(l))
            .collect::<Result<Vec<_>, _>>()?;
        let vranks = parse_rank_lines(take_lines(&mut next, n, "view ranks")?)?;
        let vdeltas = take_lines(&mut next, n_vdeltas as usize, "view deltas")?
            .iter()
            .map(|l| parse_delta(l))
            .collect::<Result<Vec<_>, _>>()?;
        session.restore_view(&name, teleport_from_normalized(&sources)?, &vranks, vdeltas)?;
    }
    Ok((session, reorder))
}

fn parse_rank_lines(lines: Vec<String>) -> Result<Vec<f64>, String> {
    lines
        .iter()
        .map(|l| {
            l.trim()
                .parse::<f64>()
                .map_err(|_| format!("bad rank line {l:?}"))
        })
        .collect()
}

/// One parsed live frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// `delta epoch=<e> del=<d> ins=<i>` + edge lines.
    Delta { epoch: u64, batch: BatchUpdate },
    /// `feedview add <name> epoch=<e> sources=<s>` + source lines.
    ViewAdd {
        epoch: u64,
        name: String,
        sources: Vec<(u32, f64)>,
    },
    /// `feedview drop <name> epoch=<e>`.
    ViewDrop { epoch: u64, name: String },
}

/// Parse one live frame from its head line, pulling payload lines from
/// `next`. `Ok(None)` means the line is not a feed frame at all.
pub fn read_frame<E: fmt::Display>(
    head: &str,
    mut next: impl FnMut() -> Result<Option<String>, E>,
) -> Result<Option<Frame>, String> {
    if head.starts_with("delta ") {
        let epoch = field(head, "epoch").ok_or_else(|| format!("bad delta head {head:?}"))?;
        let del = field(head, "del").ok_or_else(|| format!("bad delta head {head:?}"))? as usize;
        let ins = field(head, "ins").ok_or_else(|| format!("bad delta head {head:?}"))? as usize;
        let lines = take_lines(&mut next, del + ins, "delta frame")?;
        let edges = lines
            .iter()
            .map(|l| parse_edge(l))
            .collect::<Result<Vec<_>, _>>()?;
        let mut batch = BatchUpdate::new();
        batch.deletions = edges[..del].to_vec();
        batch.insertions = edges[del..].to_vec();
        return Ok(Some(Frame::Delta { epoch, batch }));
    }
    if let Some(rest) = head.strip_prefix("feedview add ") {
        let name = rest
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("bad feedview head {head:?}"))?
            .to_string();
        let epoch = field(head, "epoch").ok_or_else(|| format!("bad feedview head {head:?}"))?;
        let count = field(head, "sources").ok_or_else(|| format!("bad feedview head {head:?}"))?;
        let sources = take_lines(&mut next, count as usize, "feedview frame")?
            .iter()
            .map(|l| parse_weighted(l))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Some(Frame::ViewAdd {
            epoch,
            name,
            sources,
        }));
    }
    if let Some(rest) = head.strip_prefix("feedview drop ") {
        let name = rest
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("bad feedview head {head:?}"))?
            .to_string();
        let epoch = field(head, "epoch").ok_or_else(|| format!("bad feedview head {head:?}"))?;
        return Ok(Some(Frame::ViewDrop { epoch, name }));
    }
    Ok(None)
}

/// Outcome of applying one frame to the follower session.
#[derive(Debug, PartialEq, Eq)]
pub enum Applied {
    /// State advanced (or the frame was a harmless duplicate).
    Ok,
    /// The frame does not fit this session (epoch gap, rejected batch):
    /// the follower must resync from scratch.
    NeedResync(String),
}

/// Apply one frame through the ordinary session path. Duplicates (a
/// re-sent epoch, a view that already exists) are skips, exactly like
/// WAL replay; anything the session refuses demands a resync.
pub fn apply_frame(session: &mut UpdateSession, frame: Frame) -> Applied {
    match frame {
        Frame::Delta { epoch, batch } => {
            if epoch <= session.steps() {
                return Applied::Ok;
            }
            if epoch != session.steps() + 1 {
                return Applied::NeedResync(format!(
                    "epoch gap: have {}, leader sent {epoch}",
                    session.steps()
                ));
            }
            match session.step(&batch) {
                Ok(_) => Applied::Ok,
                Err(e) => Applied::NeedResync(format!("leader delta {epoch} rejected: {e}")),
            }
        }
        Frame::ViewAdd {
            epoch,
            name,
            sources,
        } => {
            if epoch < session.steps() || session.has_view(&name) {
                return Applied::Ok;
            }
            let teleport = match teleport_from_normalized(&sources) {
                Ok(t) => t,
                Err(e) => return Applied::NeedResync(format!("view {name} unbuildable: {e}")),
            };
            match session.add_view(&name, teleport) {
                Ok(()) => Applied::Ok,
                Err(e) => Applied::NeedResync(format!("view {name} rejected: {e}")),
            }
        }
        Frame::ViewDrop { epoch, name } => {
            if epoch < session.steps() || !session.has_view(&name) {
                return Applied::Ok;
            }
            match session.drop_view(&name) {
                Ok(()) => Applied::Ok,
                Err(e) => Applied::NeedResync(format!("view drop {name} rejected: {e}")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The follower.
// ---------------------------------------------------------------------------

/// Connection and retry tunables for a [`Follower`].
#[derive(Debug, Clone)]
pub struct FollowerOptions {
    /// Leader address (`host:port`).
    pub leader: String,
    /// Session options for the mirrored state (one thread for
    /// bit-exact tracking).
    pub runtime: PagerankOptions,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Read poll granularity — how quickly `stop()` is noticed.
    pub read_timeout: Duration,
    /// Consecutive failed connect attempts before giving up.
    pub max_attempts: u32,
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Upper bound on the reconnect delay.
    pub backoff_cap: Duration,
}

impl FollowerOptions {
    /// Defaults for a given leader address: 1-thread runtime, 3 s
    /// connects, 200 ms read polls, 30 attempts backing off
    /// 100 ms → 5 s.
    pub fn new(leader: impl Into<String>) -> FollowerOptions {
        FollowerOptions {
            leader: leader.into(),
            runtime: PagerankOptions::default().with_threads(1),
            connect_timeout: Duration::from_secs(3),
            read_timeout: Duration::from_millis(200),
            max_attempts: 30,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// Lifetime counters a follower reports when stopped.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FollowerStats {
    /// Full state transfers received (initial sync included).
    pub resyncs: u64,
    /// Live delta frames applied.
    pub deltas_applied: u64,
    /// Times the connection was re-established after a loss.
    pub reconnects: u64,
}

/// A background thread mirroring a leader's session, serving the result
/// through a local [`RankReader`].
pub struct Follower {
    stop: Arc<AtomicBool>,
    epoch: Arc<AtomicU64>,
    reconnects: Arc<AtomicU64>,
    shared: Arc<Mutex<Option<(RankReader, Algorithm, SharedReordering)>>>,
    handle: JoinHandle<Result<FollowerStats, String>>,
}

impl Follower {
    /// Start following. Returns immediately; [`reader`](Self::reader)
    /// turns `Some` once the first sync lands.
    pub fn spawn(opts: FollowerOptions) -> Follower {
        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Arc::new(AtomicU64::new(0));
        let reconnects = Arc::new(AtomicU64::new(0));
        let shared: Arc<Mutex<Option<(RankReader, Algorithm, SharedReordering)>>> =
            Arc::new(Mutex::new(None));
        let handle = {
            let (stop, epoch, reconnects, shared) = (
                Arc::clone(&stop),
                Arc::clone(&epoch),
                Arc::clone(&reconnects),
                Arc::clone(&shared),
            );
            thread::Builder::new()
                .name("lfpr-follower".into())
                .spawn(move || follower_loop(opts, &stop, &epoch, &reconnects, &shared))
                .expect("spawn follower thread")
        };
        Follower {
            stop,
            epoch,
            reconnects,
            shared,
            handle,
        }
    }

    /// The last epoch applied locally (0 before the first sync).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Times the connection has been re-established so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Acquire)
    }

    /// A reader over the mirrored state plus the leader's algorithm
    /// and id permutation (if the leader reorders) — `None` until the
    /// first resync completes. The reader stays live across reconnects
    /// and resyncs within one spawn.
    pub fn reader(&self) -> Option<(RankReader, Algorithm, SharedReordering)> {
        self.shared.lock().expect("follower slot poisoned").clone()
    }

    /// Ask the thread to stop and collect its stats. An unreachable
    /// leader surfaces here as `Err`.
    pub fn stop(self) -> Result<FollowerStats, String> {
        self.stop.store(true, Ordering::Release);
        self.handle
            .join()
            .map_err(|_| "follower panicked".to_string())?
    }
}

/// What one connection attempt produced.
enum StreamEnd {
    /// Stop flag observed — shut down.
    Stopped,
    /// Connection lost (or stream refused): reconnect after backoff.
    Lost,
    /// The session cannot continue (gap / rejected frame): reconnect
    /// and take a fresh resync.
    Resync(String),
    /// The leader answered with a protocol error line: fatal.
    Refused(String),
}

fn follower_loop(
    opts: FollowerOptions,
    stop: &AtomicBool,
    epoch_out: &AtomicU64,
    reconnects_out: &AtomicU64,
    shared: &Mutex<Option<(RankReader, Algorithm, SharedReordering)>>,
) -> Result<FollowerStats, String> {
    let mut session: Option<UpdateSession> = None;
    let mut stats = FollowerStats::default();
    let mut failures = 0u32;
    let mut connected_once = false;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(stats);
        }
        let conn = match dial(&opts) {
            Ok(conn) => conn,
            Err(e) => {
                failures += 1;
                if failures >= opts.max_attempts {
                    return Err(format!(
                        "cannot reach leader {} after {failures} attempts: {e}",
                        opts.leader
                    ));
                }
                sleep_backoff(&opts, failures, stop);
                continue;
            }
        };
        failures = 0;
        if connected_once {
            stats.reconnects += 1;
            reconnects_out.store(stats.reconnects, Ordering::Release);
        }
        connected_once = true;
        match run_stream(
            conn,
            &opts,
            &mut session,
            &mut stats,
            stop,
            epoch_out,
            shared,
        ) {
            StreamEnd::Stopped => return Ok(stats),
            StreamEnd::Lost => {
                // Keep the session: the next hello offers `follow
                // <epoch>` and may be answered with a cheap `feed ok`.
                sleep_backoff(&opts, 1, stop);
            }
            StreamEnd::Resync(why) => {
                eprintln!("# follower resyncing: {why}");
                session = None;
                sleep_backoff(&opts, 1, stop);
            }
            StreamEnd::Refused(line) => {
                return Err(format!("leader refused follow: {line}"));
            }
        }
    }
}

fn dial(opts: &FollowerOptions) -> io::Result<TcpStream> {
    let addr =
        opts.leader.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolved to nothing")
        })?;
    let conn = TcpStream::connect_timeout(&addr, opts.connect_timeout)?;
    conn.set_nodelay(true)?;
    conn.set_read_timeout(Some(opts.read_timeout))?;
    Ok(conn)
}

fn sleep_backoff(opts: &FollowerOptions, failures: u32, stop: &AtomicBool) {
    let exp = failures.saturating_sub(1).min(16);
    let delay = opts
        .backoff_base
        .saturating_mul(1u32 << exp)
        .min(opts.backoff_cap);
    let step = Duration::from_millis(20);
    let mut waited = Duration::ZERO;
    while waited < delay && !stop.load(Ordering::Acquire) {
        let chunk = step.min(delay - waited);
        thread::sleep(chunk);
        waited += chunk;
    }
}

/// Drive one connection until it ends. Timeout errors only poll the
/// stop flag; a partially read line survives timeouts because
/// `read_line` appends to the same buffer.
fn run_stream(
    conn: TcpStream,
    opts: &FollowerOptions,
    session: &mut Option<UpdateSession>,
    stats: &mut FollowerStats,
    stop: &AtomicBool,
    epoch_out: &AtomicU64,
    shared: &Mutex<Option<(RankReader, Algorithm, SharedReordering)>>,
) -> StreamEnd {
    let mut writer = match conn.try_clone() {
        Ok(w) => w,
        Err(_) => return StreamEnd::Lost,
    };
    let mut input = io::BufReader::new(conn);
    let request = match session {
        Some(s) => format!("follow {}", s.steps()),
        None => "follow".to_string(),
    };
    if writeln!(writer, "{request}").is_err() {
        return StreamEnd::Lost;
    }
    let mut buf = String::new();
    let head = match poll_line(&mut input, &mut buf, stop) {
        Ok(Some(line)) => line,
        Ok(None) => return StreamEnd::Lost,
        Err(Stopped) => return StreamEnd::Stopped,
    };

    if head.starts_with("feed resync ") {
        let mut interrupted = false;
        let next = || -> Result<Option<String>, &'static str> {
            match poll_line(&mut input, &mut buf, stop) {
                Ok(v) => Ok(v),
                Err(Stopped) => {
                    interrupted = true;
                    Err("stopped")
                }
            }
        };
        match read_resync(&head, opts.runtime.clone(), next) {
            Ok((mut fresh, reorder)) => {
                let reader = fresh.reader();
                *shared.lock().expect("follower slot poisoned") =
                    Some((reader, fresh.algorithm(), reorder.map(Arc::new)));
                epoch_out.store(fresh.steps(), Ordering::Release);
                *session = Some(fresh);
                stats.resyncs += 1;
            }
            Err(_) if interrupted => return StreamEnd::Stopped,
            Err(e) => return StreamEnd::Resync(e),
        }
    } else if head.starts_with("feed ok") {
        if session.is_none() {
            return StreamEnd::Resync("feed ok without local state".into());
        }
    } else {
        return StreamEnd::Refused(head);
    }

    // Live frames.
    loop {
        let head = match poll_line(&mut input, &mut buf, stop) {
            Ok(Some(line)) => line,
            Ok(None) => return StreamEnd::Lost,
            Err(Stopped) => return StreamEnd::Stopped,
        };
        let mut interrupted = false;
        let next = || -> Result<Option<String>, &'static str> {
            match poll_line(&mut input, &mut buf, stop) {
                Ok(v) => Ok(v),
                Err(Stopped) => {
                    interrupted = true;
                    Err("stopped")
                }
            }
        };
        let frame = match read_frame(&head, next) {
            Ok(Some(frame)) => frame,
            Ok(None) => return StreamEnd::Resync(format!("unexpected feed line {head:?}")),
            Err(_) if interrupted => return StreamEnd::Stopped,
            Err(e) => return StreamEnd::Resync(e),
        };
        let is_delta = matches!(frame, Frame::Delta { .. });
        let s = session.as_mut().expect("session exists while streaming");
        match apply_frame(s, frame) {
            Applied::Ok => {
                if is_delta {
                    stats.deltas_applied += 1;
                }
                epoch_out.store(s.steps(), Ordering::Release);
            }
            Applied::NeedResync(why) => return StreamEnd::Resync(why),
        }
    }
}

struct Stopped;

/// Read one line, retrying through read-timeout polls until the stop
/// flag trips. `Ok(None)` is EOF or a hard socket error (both mean the
/// connection is over).
fn poll_line(
    input: &mut io::BufReader<TcpStream>,
    buf: &mut String,
    stop: &AtomicBool,
) -> Result<Option<String>, Stopped> {
    buf.clear();
    loop {
        match input.read_line(buf) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(buf.trim_end_matches(['\r', '\n']).to_string())),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Acquire) {
                    return Err(Stopped);
                }
            }
            Err(_) => return Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_core::Teleport;
    use lfpr_graph::generators::erdos_renyi;
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::BatchSpec;

    fn opts1() -> PagerankOptions {
        PagerankOptions::default()
            .with_threads(1)
            .with_chunk_size(64)
    }

    fn leader_session(seed: u64) -> UpdateSession {
        let mut g = erdos_renyi(60, 300, seed);
        add_self_loops(&mut g);
        let mut s = UpdateSession::new(g, Algorithm::DfLF, opts1());
        s.enable_delta_tracking();
        s
    }

    #[test]
    fn hub_close_unblocks_subscribers() {
        let hub = FeedHub::new();
        let rx = hub.subscribe();
        assert_eq!(hub.subscriber_count(), 1);
        let waiter = thread::spawn(move || rx.recv().is_err());
        hub.close();
        assert!(waiter.join().unwrap(), "recv must fail after close");
        // A late subscriber on a closed hub does not block either.
        assert!(hub.subscribe().recv().is_err());
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn hub_drops_dead_subscribers_on_publish() {
        let hub = FeedHub::new();
        let rx = hub.subscribe();
        drop(rx);
        let rx2 = hub.subscribe();
        hub.publish(WalRecord::ViewDrop {
            epoch: 1,
            name: "x".into(),
        });
        assert_eq!(hub.subscriber_count(), 1, "dead queue dropped");
        assert!(rx2.recv().is_ok());
    }

    #[test]
    fn resync_round_trips_bit_exactly() {
        let mut leader = leader_session(11);
        leader
            .add_view("ego", Teleport::personalized([(3, 1.0), (7, 2.0)]).unwrap())
            .unwrap();
        for round in 0..3u64 {
            let batch = BatchSpec::mixed(0.03, round).generate(leader.graph());
            leader.step(&batch).unwrap();
        }
        let view = leader.reader().view();
        let mut wire = Vec::new();
        write_resync(&mut wire, &view, leader.algorithm(), &None).unwrap();
        let text = String::from_utf8(wire).unwrap();
        let mut lines = text.lines();
        let head = lines.next().unwrap().to_string();
        let mut next = {
            let mut it = lines;
            move || -> Result<Option<String>, &'static str> { Ok(it.next().map(str::to_string)) }
        };
        let (follower, reorder) = read_resync(&head, opts1(), &mut next).unwrap();
        assert!(reorder.is_none(), "unreordered leader ships no perm");
        assert_eq!(follower.steps(), leader.steps());
        for (a, b) in leader.ranks().iter().zip(follower.ranks()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in leader
            .view_ranks("ego")
            .unwrap()
            .iter()
            .zip(follower.view_ranks("ego").unwrap())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(leader.movers(5), follower.movers(5));
        assert_eq!(leader.view_movers("ego", 5), follower.view_movers("ego", 5));
        assert!(next().unwrap().is_none(), "resync consumed exactly");
    }

    #[test]
    fn resync_ships_the_leader_permutation() {
        let mut leader = leader_session(14);
        for round in 0..2u64 {
            let batch = BatchSpec::mixed(0.03, 40 + round).generate(leader.graph());
            leader.step(&batch).unwrap();
        }
        let n = leader.graph().num_vertices() as u32;
        // An arbitrary (reversing) bijection stands in for a real
        // locality reorder — the feed only transports it.
        let perm: Vec<u32> = (0..n).rev().collect();
        let reorder = Some(Arc::new(Reordering::from_perm(perm.clone()).unwrap()));
        let view = leader.reader().view();
        let mut wire = Vec::new();
        write_resync(&mut wire, &view, leader.algorithm(), &reorder).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(
            text.lines().next().unwrap().contains(" perm="),
            "head advertises the permutation"
        );
        let mut lines = text.lines();
        let head = lines.next().unwrap().to_string();
        let mut next = {
            let mut it = lines;
            move || -> Result<Option<String>, &'static str> { Ok(it.next().map(str::to_string)) }
        };
        let (follower, got) = read_resync(&head, opts1(), &mut next).unwrap();
        let got = got.expect("permutation survives the wire");
        assert_eq!(got.perm(), &perm[..]);
        assert_eq!(follower.steps(), leader.steps());
        for (a, b) in leader.ranks().iter().zip(follower.ranks()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(next().unwrap().is_none(), "resync consumed exactly");
    }

    #[test]
    fn frames_round_trip_and_apply_bit_exactly() {
        let mut leader = leader_session(12);
        let view = leader.reader().view();
        // Build the follower from an initial resync.
        let mut wire = Vec::new();
        write_resync(&mut wire, &view, leader.algorithm(), &None).unwrap();
        let text = String::from_utf8(wire).unwrap();
        let mut lines = text.lines();
        let head = lines.next().unwrap().to_string();
        let (mut follower, _) = read_resync(&head, opts1(), {
            let mut it = lines;
            move || -> Result<Option<String>, &'static str> { Ok(it.next().map(str::to_string)) }
        })
        .unwrap();

        // Stream three commits and a view lifecycle through frames.
        let t = Teleport::personalized([(5, 1.0)]).unwrap();
        leader.add_view("ego", t.clone()).unwrap();
        let sources = t.weights().unwrap().sources().to_vec();
        let mut events = vec![WalRecord::ViewAdd {
            epoch: leader.steps(),
            name: "ego".into(),
            sources,
        }];
        for round in 0..3u64 {
            let batch = BatchSpec::mixed(0.03, 30 + round).generate(leader.graph());
            leader.step(&batch).unwrap();
            events.push(WalRecord::Commit {
                epoch: leader.steps(),
                batch,
            });
        }
        for rec in &events {
            let mut wire = Vec::new();
            write_feed_event(&mut wire, rec).unwrap();
            let text = String::from_utf8(wire).unwrap();
            let mut lines = text.lines();
            let head = lines.next().unwrap().to_string();
            let frame = read_frame(&head, {
                let mut it = lines;
                move || -> Result<Option<String>, &'static str> {
                    Ok(it.next().map(str::to_string))
                }
            })
            .unwrap()
            .expect("a feed frame");
            assert_eq!(apply_frame(&mut follower, frame), Applied::Ok);
        }
        assert_eq!(follower.steps(), leader.steps());
        for (a, b) in leader.ranks().iter().zip(follower.ranks()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in leader
            .view_ranks("ego")
            .unwrap()
            .iter()
            .zip(follower.view_ranks("ego").unwrap())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn epoch_gaps_and_duplicates_are_detected() {
        let mut leader = leader_session(13);
        let view = leader.reader().view();
        let mut wire = Vec::new();
        write_resync(&mut wire, &view, leader.algorithm(), &None).unwrap();
        let text = String::from_utf8(wire).unwrap();
        let mut lines = text.lines();
        let head = lines.next().unwrap().to_string();
        let (mut follower, _) = read_resync(&head, opts1(), {
            let mut it = lines;
            move || -> Result<Option<String>, &'static str> { Ok(it.next().map(str::to_string)) }
        })
        .unwrap();
        // Duplicate (epoch 0 again) is a silent skip.
        assert_eq!(
            apply_frame(
                &mut follower,
                Frame::Delta {
                    epoch: 0,
                    batch: BatchUpdate::new()
                }
            ),
            Applied::Ok
        );
        // Jumping to epoch 5 with nothing in between demands a resync.
        match apply_frame(
            &mut follower,
            Frame::Delta {
                epoch: 5,
                batch: BatchUpdate::new(),
            },
        ) {
            Applied::NeedResync(why) => assert!(why.contains("epoch gap"), "{why}"),
            other => panic!("expected resync, got {other:?}"),
        }
    }

    #[test]
    fn follower_gives_up_after_bounded_attempts() {
        // Nothing listens on this port; the follower must fail after
        // max_attempts, not spin forever.
        let mut opts = FollowerOptions::new("127.0.0.1:1");
        opts.max_attempts = 3;
        opts.backoff_base = Duration::from_millis(1);
        opts.backoff_cap = Duration::from_millis(2);
        opts.connect_timeout = Duration::from_millis(200);
        let f = Follower::spawn(opts);
        let err = f.handle.join().unwrap().unwrap_err();
        assert!(err.contains("after 3 attempts"), "{err}");
    }
}
