//! # Sharded serving tier — vertex-partitioned session shards
//!
//! A [`ShardRouter`] splits one logical graph across `N` independent
//! [`UpdateSession`]s by **source ownership**: a block [`Partition`]
//! assigns every vertex an owner shard, and shard `s`'s session holds
//! the full vertex space but *only* the edges whose source it owns.
//! Owned vertices therefore keep their exact global out-degrees, ids
//! need no translation, and shard `s`'s published ranks are exact for
//! the subsystem of intra-shard edges. Each shard runs its own writer
//! thread, epoch counter, optional write-ahead log (under
//! `DIR/shard-NN/`), and [`RankView`] publication.
//!
//! ## Routing
//!
//! * `insert`/`delete` stage locally and validate against the **owner
//!   shard's** pinned snapshot (vertex `u`'s out-edges all live on
//!   `owner(u)`).
//! * `batch` **scatters**: the staged set is split by source owner and
//!   the non-empty sub-batches are committed concurrently, one per
//!   writer thread; the reply **gathers** the per-shard outcomes under
//!   one multi-epoch `epochs=<e0>,…` stamp ([`ShardEpochs::Sharded`]).
//!   Shards a batch never touched keep their epoch — that is why the
//!   stamp is a vector.
//! * `rank`/`subscribe` route to `owner(v)`; `topk`/`movers`/`stats`
//!   merge across shards (per-shard candidates, then one global order).
//!
//! ## Cross-shard edges: the exchange round
//!
//! Intra-shard ranks miss the contributions flowing along crossing
//! edges (`owner(u) ≠ owner(v)`). After every scatter/gather commit the
//! router runs **boundary rank-exchange rounds**: each shard exports
//! `α·r(u)/d(u)` along every crossing edge `u→v` (the post-commit ranks
//! of its boundary vertices), the router deposits those as residuals on
//! the owning shards, and each round forward-pushes the residuals
//! through intra-shard edges only — accumulating an additive
//! *correction* vector — while pushes along crossing edges become the
//! next round's residuals. Served ranks are always
//! `shard rank + correction`.
//!
//! **Staleness bound.** One round attenuates the un-delivered residual
//! mass by at least `α` (every edge traversal, local or crossing, costs
//! a factor `α/d · d = α` in total mass, so re-circulating locally can
//! only shrink what is left to export). After `K` rounds the L1 error
//! of the served ranks is at most `α^(K+1)/(1−α)` — with the default
//! `K = 128` and `α = 0.85` that is ≈ `5·10⁻⁹`, and the rounds
//! early-exit long before the cap once the exported mass falls under
//! `10⁻¹³`. When the partition has **no crossing edges** the exchange
//! is a no-op and served ranks are bit-identical to each shard's
//! session — and, at `threads = 1`, to an unsharded session over the
//! same graph for any run whose commits each touch a single shard
//! (`tests/shard_oracle.rs` pins this bitwise). A commit spanning
//! shards converges every affected region against one shared stopping
//! gate in the unsharded kernel — early-converging regions keep
//! getting swept — so such histories agree to the τ neighbourhood
//! instead of the bit.
//!
//! Movers are reported from per-shard session deltas (filtered to the
//! shard's owned range); their `rank` column is correction-adjusted so
//! it always matches what `rank` would answer. Note the per-shard
//! deltas date from each shard's **own** latest commit: after a commit
//! that touched only shard `s`, the merged `movers` still surfaces
//! other shards' older movement — the reply's epoch vector says
//! exactly which commit each shard's contribution reflects.

use crate::durable::{Durability, DurabilityOptions, WalStats};
use crate::protocol::{
    caps, parse_request, Handshake, MoverEntry, Request, Response, ServeError, ShardEpochs,
};
use crate::serve::{
    apply_logged, reply, stage_delete, stage_insert, status_str, translate_request, ServeSummary,
    WriterOk, WriterOp, WriterReply, WriterRequest,
};
use lfpr_core::session::{RankReader, RankView, UpdateSession};
use lfpr_core::{Algorithm, PagerankOptions, RunStatus};
use lfpr_graph::reorder::SharedReordering;
use lfpr_graph::{BatchUpdate, DynGraph, Partition};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};

/// Default cap on exchange rounds per commit (`K`). Residual mass
/// contracts by at least `α` per round, so the served-rank L1 error is
/// bounded by `α^(K+1)/(1−α)` — ≈ `5·10⁻⁹` at the default `α = 0.85`.
pub const DEFAULT_EXCHANGE_ROUNDS: usize = 128;

/// Exchange rounds stop early once the total exported residual mass
/// falls below this (the remaining correction is smaller still).
const EXCHANGE_MASS_TOL: f64 = 1e-13;

/// Residuals below this are left in place rather than re-queued during
/// a local forward-push (they can never move a served rank digit).
const PUSH_TOL: f64 = 1e-16;

/// Construction-time knobs for a [`ShardRouter`].
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Number of shards (≥ 1).
    pub shards: usize,
    /// Cap on exchange rounds per commit (`K` in the staleness bound).
    pub exchange_rounds: usize,
    /// When set, every shard logs to `dir/shard-NN/` with `durability`.
    pub wal_dir: Option<PathBuf>,
    /// Per-shard durability tunables (ignored without `wal_dir`).
    pub durability: DurabilityOptions,
}

impl ShardSpec {
    /// A spec with default exchange depth and no durability.
    pub fn new(shards: usize) -> Self {
        ShardSpec {
            shards,
            exchange_rounds: DEFAULT_EXCHANGE_ROUNDS,
            wal_dir: None,
            durability: DurabilityOptions::default(),
        }
    }
}

/// One shard as the router sees it: the channel into its writer
/// thread, its queue-depth gauge, and its read-side publication.
struct ShardHandle {
    tx: mpsc::Sender<WriterRequest>,
    /// Writer requests accepted but not yet applied — the `stats`
    /// back-pressure signal (`queues=`).
    queue: Arc<AtomicU64>,
    reader: RankReader,
    wal: Option<Arc<WalStats>>,
}

/// The merged outcome of one scatter/gather commit.
#[derive(Debug, Clone)]
pub struct ShardCommit {
    /// The client's staged size (what its reply reports).
    pub batch: usize,
    /// Global edge count after the commit (summed across shards).
    pub m: usize,
    /// Worst per-shard refresh status (`stalled` > `max-iterations` >
    /// `converged`).
    pub status: String,
    /// Largest per-shard iteration count.
    pub iters: usize,
    /// Post-commit epoch of every shard, in shard order.
    pub epochs: Vec<u64>,
    /// Exchange rounds the post-commit correction pass used.
    pub rounds: usize,
}

/// The sharded serving core: N session shards behind one routing
/// surface. See the module docs for the partitioning and exchange
/// semantics. All methods take `&self`; one router is shared by every
/// connection of the sharded TCP server.
pub struct ShardRouter {
    part: Partition,
    algorithm: Algorithm,
    alpha: f64,
    n: usize,
    max_rounds: usize,
    shards: Vec<ShardHandle>,
    handles: Vec<JoinHandle<UpdateSession>>,
    /// Correction overlay from the latest exchange: `None` means all
    /// zero (no crossing edges — the bit-identity fast path).
    corr: RwLock<Option<Arc<Vec<f64>>>>,
    /// Serializes exchange passes (each pins its own views).
    exchange_lock: Mutex<()>,
    /// Live count of edges crossing the partition, maintained from the
    /// committed sub-batches. While it is zero the exchange pass skips
    /// its O(n + m) boundary scan entirely — on a partition the
    /// workload never crosses, commits stay pure writer work (this is
    /// what keeps the fsync-dominated shard-scaling bench honest).
    crossing: AtomicI64,
}

impl ShardRouter {
    /// Partition `graph` into `spec.shards` block shards and start one
    /// session + writer thread per shard. Runs one exchange pass so
    /// epoch-0 reads are already corrected.
    pub fn new(
        graph: DynGraph,
        algorithm: Algorithm,
        opts: PagerankOptions,
        spec: ShardSpec,
    ) -> Result<ShardRouter, String> {
        let part = Partition::block(graph.num_vertices(), spec.shards)?;
        Self::with_partition(graph, part, algorithm, opts, spec)
    }

    /// [`new`](Self::new) with a caller-computed partition (the CLI
    /// computes it jointly with the load-time reordering).
    pub fn with_partition(
        graph: DynGraph,
        part: Partition,
        algorithm: Algorithm,
        opts: PagerankOptions,
        spec: ShardSpec,
    ) -> Result<ShardRouter, String> {
        if part.num_vertices() != graph.num_vertices() {
            return Err(format!(
                "partition covers {} vertices but the graph has {}",
                part.num_vertices(),
                graph.num_vertices()
            ));
        }
        let n = graph.num_vertices();
        let alpha = opts.alpha;
        let mut shards = Vec::with_capacity(part.shards());
        let mut handles = Vec::with_capacity(part.shards());
        for s in 0..part.shards() {
            let mut session =
                UpdateSession::new(part.shard_graph(&graph, s), algorithm, opts.clone());
            session.enable_delta_tracking();
            let durable = match &spec.wal_dir {
                Some(dir) => Some(Durability::create(
                    &crate::durable::shard_dir(dir, s),
                    &mut session,
                    spec.durability.clone(),
                )?),
                None => None,
            };
            let reader = session.reader();
            let wal = durable.as_ref().map(|d| d.stats_handle());
            let queue = Arc::new(AtomicU64::new(0));
            let (tx, rx) = mpsc::channel::<WriterRequest>();
            let gauge = Arc::clone(&queue);
            let handle = thread::Builder::new()
                .name(format!("shard-{s}"))
                .spawn(move || shard_writer(session, durable, rx, gauge))
                .map_err(|e| format!("cannot spawn shard {s} writer: {e}"))?;
            shards.push(ShardHandle {
                tx,
                queue,
                reader,
                wal,
            });
            handles.push(handle);
        }
        let crossing = part.crossing_edges(&graph).len() as i64;
        let router = ShardRouter {
            part,
            algorithm,
            alpha,
            n,
            max_rounds: spec.exchange_rounds.max(1),
            shards,
            handles,
            corr: RwLock::new(None),
            exchange_lock: Mutex::new(()),
            crossing: AtomicI64::new(crossing),
        };
        router.exchange();
        Ok(router)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Vertex count of the logical graph.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The vertex partition.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// The algorithm every shard runs.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Whether the shards log to write-ahead logs.
    pub fn durable(&self) -> bool {
        self.shards.iter().any(|s| s.wal.is_some())
    }

    /// Current writer queue depth per shard.
    pub fn queue_depths(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.queue.load(Ordering::Acquire))
            .collect()
    }

    /// The v2 handshake advertising the shard topology and exactly the
    /// capabilities this surface serves (no `views`, no `follow`).
    pub fn handshake(&self) -> Handshake {
        let mut c = vec![caps::CORE.to_string(), caps::SUBS.to_string()];
        if self.durable() {
            c.push(caps::WAL.to_string());
        }
        Handshake::V2 {
            algorithm: self.algorithm.to_string(),
            shards: self.shards.len(),
            strategy: self.part.strategy().to_string(),
            caps: c,
        }
    }

    /// Pin a coherent read: every shard's latest view plus the current
    /// correction overlay.
    pub fn pin(&self) -> ShardPin<'_> {
        ShardPin {
            router: self,
            views: self.pin_views(),
            corr: self.corr.read().expect("correction slot poisoned").clone(),
        }
    }

    fn pin_views(&self) -> Vec<Arc<RankView>> {
        self.shards.iter().map(|s| s.reader.view()).collect()
    }

    /// Merged WAL position: the *oldest* shard epoch on stable storage
    /// and the summed log bytes. `None` without durability.
    pub fn wal_stats(&self) -> Option<(u64, u64)> {
        let mut epoch = u64::MAX;
        let mut bytes = 0u64;
        let mut any = false;
        for s in &self.shards {
            let w = s.wal.as_ref()?;
            any = true;
            epoch = epoch.min(w.epoch());
            bytes += w.bytes();
        }
        if any {
            Some((epoch, bytes))
        } else {
            None
        }
    }

    /// Scatter `batch` by source owner, commit the non-empty
    /// sub-batches concurrently, gather the outcomes, then run the
    /// exchange pass. On any sub-batch rejection the *rejected* edits
    /// come back for re-staging with a shard-tagged message — the other
    /// sub-batches have already committed (the scatter is not atomic
    /// across shards; `docs/SHARDING.md` spells this out).
    pub fn commit(&self, batch: BatchUpdate) -> Result<ShardCommit, (BatchUpdate, String)> {
        let k = batch.len();
        let mut pending = Vec::new();
        let mut failed: Vec<BatchUpdate> = Vec::new();
        let mut first_err: Option<String> = None;
        for (s, sub) in self.part.split_batch(&batch).into_iter().enumerate() {
            if sub.is_empty() {
                continue; // untouched shards keep their epoch
            }
            // Net crossing edges this sub-batch would add, charged to
            // the live count only if the shard accepts it (a shard
            // session applies all-or-nothing).
            let cross = |edges: &[(u32, u32)]| {
                edges
                    .iter()
                    .filter(|&&(u, v)| self.part.owner(u) != self.part.owner(v))
                    .count() as i64
            };
            let crossing_delta = cross(&sub.insertions) - cross(&sub.deletions);
            let (otx, orx) = mpsc::sync_channel(1);
            self.shards[s].queue.fetch_add(1, Ordering::AcqRel);
            let req = WriterRequest {
                op: WriterOp::Commit(sub),
                reply: WriterReply::Sync(otx),
            };
            match self.shards[s].tx.send(req) {
                Ok(()) => pending.push((s, orx, crossing_delta)),
                Err(mpsc::SendError(req)) => {
                    self.shards[s].queue.fetch_sub(1, Ordering::AcqRel);
                    if let WriterOp::Commit(sub) = req.op {
                        failed.push(sub);
                    }
                    first_err.get_or_insert(format!("shard {s}: server shutting down"));
                }
            }
        }
        let mut status = RunStatus::Converged;
        let mut iters = 0usize;
        for (s, orx, crossing_delta) in pending {
            match orx.recv() {
                Ok(Ok(WriterOk::Committed(o))) => {
                    iters = iters.max(o.iterations);
                    status = worse_of(status, o.status);
                    self.crossing.fetch_add(crossing_delta, Ordering::AcqRel);
                }
                Ok(Ok(_)) => unreachable!("commit answered with a non-commit outcome"),
                Ok(Err((op, msg))) => {
                    if let WriterOp::Commit(sub) = op {
                        failed.push(sub);
                    }
                    first_err.get_or_insert(format!("shard {s}: {msg}"));
                }
                Err(_) => {
                    first_err.get_or_insert(format!("shard {s}: writer thread died"));
                }
            }
        }
        // Shards that accepted their sub-batch have moved whether or
        // not a sibling refused — refresh the corrections either way.
        let rounds = self.exchange();
        if let Some(msg) = first_err {
            let mut rest = BatchUpdate::new();
            for f in failed {
                rest.insertions.extend(f.insertions);
                rest.deletions.extend(f.deletions);
            }
            return Err((rest, msg));
        }
        let views = self.pin_views();
        Ok(ShardCommit {
            batch: k,
            m: views.iter().map(|v| v.snapshot().num_edges()).sum(),
            status: status_str(status).to_string(),
            iters,
            epochs: views.iter().map(|v| v.epoch()).collect(),
            rounds,
        })
    }

    /// One full exchange pass against the current published views:
    /// seed residuals from every crossing edge, then run ≤ `K` rounds
    /// of intra-shard forward-push with cross-edge exports (module
    /// docs). Publishes the new correction overlay and returns the
    /// number of rounds used (0 when the partition has no crossing
    /// edges — the overlay is then dropped entirely, which is what
    /// makes the no-crossing case bit-identical).
    pub fn exchange(&self) -> usize {
        // Fast path: while the committed graph has no crossing edges
        // there is nothing to exchange — don't pay the boundary scan.
        if self.crossing.load(Ordering::Acquire) == 0 {
            *self.corr.write().expect("correction slot poisoned") = None;
            return 0;
        }
        let _serialize = self.exchange_lock.lock().expect("exchange lock poisoned");
        let views = self.pin_views();
        let n = self.n;
        let mut res = vec![0.0f64; n];
        let mut active: Vec<u32> = Vec::new();
        for (s, view) in views.iter().enumerate() {
            let snap = view.snapshot();
            let ranks = view.ranks();
            for u in self.part.owned_range(s) {
                let outs = snap.out(u);
                if outs.is_empty() {
                    continue;
                }
                let w = self.alpha * ranks[u as usize] / outs.len() as f64;
                for &v in outs {
                    if self.part.owner(v) != s {
                        if res[v as usize] == 0.0 {
                            active.push(v);
                        }
                        res[v as usize] += w;
                    }
                }
            }
        }
        if active.is_empty() {
            *self.corr.write().expect("correction slot poisoned") = None;
            return 0;
        }
        let mut corr = vec![0.0f64; n];
        let mut in_queue = vec![false; n];
        let mut rounds = 0usize;
        while rounds < self.max_rounds && !active.is_empty() {
            rounds += 1;
            // Local solve: drain this round's residuals through
            // intra-shard edges; crossing pushes become next round's
            // residuals ("boundary export").
            let mut queue: VecDeque<u32> = VecDeque::with_capacity(active.len());
            for v in active.drain(..) {
                if !in_queue[v as usize] {
                    in_queue[v as usize] = true;
                    queue.push_back(v);
                }
            }
            let mut exported = vec![0.0f64; n];
            let mut exported_mass = 0.0f64;
            while let Some(v) = queue.pop_front() {
                in_queue[v as usize] = false;
                let r = std::mem::replace(&mut res[v as usize], 0.0);
                if r == 0.0 {
                    continue;
                }
                corr[v as usize] += r;
                let s = self.part.owner(v);
                let snap = views[s].snapshot();
                let outs = snap.out(v);
                if outs.is_empty() {
                    continue;
                }
                let w = self.alpha * r / outs.len() as f64;
                for &x in outs {
                    if self.part.owner(x) == s {
                        res[x as usize] += w;
                        if !in_queue[x as usize] && res[x as usize].abs() > PUSH_TOL {
                            in_queue[x as usize] = true;
                            queue.push_back(x);
                        }
                    } else {
                        if exported[x as usize] == 0.0 {
                            active.push(x);
                        }
                        exported[x as usize] += w;
                        exported_mass += w.abs();
                    }
                }
            }
            if exported_mass <= EXCHANGE_MASS_TOL {
                active.clear();
                break;
            }
            res = exported;
        }
        if !active.is_empty() {
            eprintln!(
                "# exchange hit the {}-round cap with residual mass still in flight \
                 (staleness within the documented bound)",
                self.max_rounds
            );
        }
        *self.corr.write().expect("correction slot poisoned") = Some(Arc::new(corr));
        rounds
    }

    /// Stop every writer thread and hand back the shard sessions (in
    /// shard order) for inspection or checkpointing.
    pub fn shutdown(self) -> Vec<UpdateSession> {
        drop(self.shards); // the writers' only senders
        self.handles
            .into_iter()
            .map(|h| h.join().expect("shard writer panicked"))
            .collect()
    }
}

/// One shard's writer loop: apply every request in order (logging to
/// the shard WAL first when durable), decrement the queue gauge, ack.
/// Ends when the router drops the senders; flushes the WAL on the way
/// out so graceful shutdown leaves the log clean.
fn shard_writer(
    mut session: UpdateSession,
    mut durable: Option<Durability>,
    rx: mpsc::Receiver<WriterRequest>,
    queue: Arc<AtomicU64>,
) -> UpdateSession {
    while let Ok(req) = rx.recv() {
        let outcome = apply_logged(&mut session, durable.as_mut(), None, req.op);
        queue.fetch_sub(1, Ordering::AcqRel);
        req.reply.deliver(outcome);
    }
    if let Some(d) = durable.as_mut() {
        if let Err(e) = d.flush_sync() {
            eprintln!("# shard wal flush on shutdown failed: {e}");
        }
    }
    session
}

/// Severity order for merging per-shard refresh statuses.
fn worse_of(a: RunStatus, b: RunStatus) -> RunStatus {
    let sev = |s: RunStatus| match s {
        RunStatus::Converged => 0,
        RunStatus::MaxIterations => 1,
        RunStatus::Stalled => 2,
    };
    if sev(b) > sev(a) {
        b
    } else {
        a
    }
}

/// A coherent sharded read: every shard's pinned view plus the
/// correction overlay in force when the pin was taken. All served
/// values come through here so a reply never mixes epochs mid-command.
pub struct ShardPin<'a> {
    router: &'a ShardRouter,
    views: Vec<Arc<RankView>>,
    corr: Option<Arc<Vec<f64>>>,
}

impl ShardPin<'_> {
    /// Corrected rank of `v` (owner shard's rank + overlay).
    pub fn rank(&self, v: u32) -> f64 {
        let s = self.router.part.owner(v);
        let base = self.views[s].ranks()[v as usize];
        match &self.corr {
            Some(c) => base + c[v as usize],
            None => base,
        }
    }

    /// Epoch of the shard owning `v` (the scalar stamp on `rank`).
    pub fn owner_epoch(&self, v: u32) -> u64 {
        self.views[self.router.part.owner(v)].epoch()
    }

    /// Every shard's pinned epoch, in shard order.
    pub fn epochs(&self) -> Vec<u64> {
        self.views.iter().map(|v| v.epoch()).collect()
    }

    /// The newest pinned epoch (the scalar stamp on `push` blocks).
    pub fn newest_epoch(&self) -> u64 {
        self.views.iter().map(|v| v.epoch()).max().unwrap_or(0)
    }

    /// Vertex count of the logical graph.
    pub fn num_vertices(&self) -> usize {
        self.router.n
    }

    /// Global edge count (summed shard-local counts — source ownership
    /// makes the shard edge sets disjoint and exhaustive).
    pub fn num_edges(&self) -> usize {
        self.views.iter().map(|v| v.snapshot().num_edges()).sum()
    }

    /// Whether edge `(u, v)` exists, answered by `owner(u)`.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.views[self.router.part.owner(u)]
            .snapshot()
            .has_edge(u, v)
    }

    /// Merged top-k over corrected ranks: per-shard candidates from
    /// each owned range, then one global ordering (rank descending,
    /// ties by id — the session's own comparator, so the no-crossing
    /// case reproduces the unsharded list exactly).
    pub fn top_k(&self, k: usize) -> Vec<(u32, f64)> {
        let mut cand: Vec<(u32, f64)> = Vec::new();
        for (s, view) in self.views.iter().enumerate() {
            let range = self.router.part.owned_range(s);
            match &self.corr {
                None => cand.extend(view.top_k_range(k, range)),
                Some(c) => {
                    let mut owned: Vec<(u32, f64)> = range
                        .map(|v| (v, view.ranks()[v as usize] + c[v as usize]))
                        .collect();
                    owned.sort_unstable_by(|a, b| {
                        b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0))
                    });
                    owned.truncate(k);
                    cand.extend(owned);
                }
            }
        }
        cand.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        cand.truncate(k);
        cand
    }

    /// Merged movers: per-shard session deltas filtered to each owned
    /// range, ordered by |Δ| descending (ties by id). The `rank` column
    /// is correction-adjusted so it agrees with [`rank`](Self::rank);
    /// the deltas themselves are the shards' own epoch-over-epoch
    /// changes.
    pub fn movers(&self, k: usize) -> Vec<MoverEntry> {
        let mut all: Vec<MoverEntry> = Vec::new();
        for (s, view) in self.views.iter().enumerate() {
            let range = self.router.part.owned_range(s);
            for d in view.deltas() {
                if range.contains(&d.vertex) {
                    let mut e = MoverEntry::from(*d);
                    if let Some(c) = &self.corr {
                        e.rank += c[d.vertex as usize];
                    }
                    all.push(e);
                }
            }
        }
        all.sort_unstable_by(|a, b| {
            b.delta
                .abs()
                .partial_cmp(&a.delta.abs())
                .unwrap()
                .then(a.v.cmp(&b.v))
        });
        all.truncate(k);
        all
    }
}

/// One sharded client's subscription to a vertex's corrected rank.
struct ShardSub {
    eps: f64,
    baseline: f64,
}

/// Per-connection protocol state of the sharded surface (the sharded
/// sibling of `serve::ConnState`).
#[derive(Default)]
struct ShardConnState {
    staged: BatchUpdate,
    subs: BTreeMap<u32, ShardSub>,
}

impl ShardConnState {
    /// Subscribed vertices whose *corrected* rank drifted past eps
    /// since their baseline (eps 0 = any bitwise change), baselines
    /// updated for the collected ones.
    fn drain_pushes(&mut self, pin: &ShardPin<'_>) -> Vec<(u32, f64)> {
        let mut pushed = Vec::new();
        for (&v, sub) in self.subs.iter_mut() {
            let r = pin.rank(v);
            let drifted = if sub.eps == 0.0 {
                r.to_bits() != sub.baseline.to_bits()
            } else {
                (r - sub.baseline).abs() > sub.eps
            };
            if drifted {
                sub.baseline = r;
                pushed.push((v, r));
            }
        }
        pushed
    }
}

/// Drive one client of the sharded surface with the line protocol from
/// `input` until EOF or `quit` — the sharded counterpart of
/// `serve::serve_client`, shared by the stdin mode and every TCP
/// connection thread.
pub fn serve_shard_client<R: BufRead, W: Write>(
    router: &ShardRouter,
    input: R,
    out: W,
) -> std::io::Result<ServeSummary> {
    serve_shard_client_reordered(router, &None, input, out)
}

/// [`serve_shard_client`] for a router whose graph was renumbered at
/// load time (the partition is computed jointly with the reordering):
/// requests translate external→internal ids on the way in, replies
/// translate back on the way out, exactly like the single-session
/// server's reordered paths.
pub fn serve_shard_client_reordered<R: BufRead, W: Write>(
    router: &ShardRouter,
    reorder: &SharedReordering,
    input: R,
    mut out: W,
) -> std::io::Result<ServeSummary> {
    let mut state = ShardConnState::default();
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        let Some(parsed) = parse_request(&line) else {
            continue; // blank or comment: no command, no reply
        };
        summary.commands += 1;
        let quit = match parsed {
            Ok(req) => {
                let req = match reorder.as_deref() {
                    Some(r) => translate_request(req, r),
                    None => req,
                };
                shard_process(router, reorder, &mut state, &mut summary, req, &mut out)?
            }
            Err(e) => {
                reply(&mut out, reorder, &Response::Error(e))?;
                false
            }
        };
        out.flush()?;
        if quit {
            break;
        }
    }
    Ok(summary)
}

/// Handle one parsed command against the router. Returns whether the
/// client said `quit`. Mirrors `serve::process` — same push preamble,
/// same staging rules — with reads answered from one [`ShardPin`] and
/// the out-of-surface verbs refused by name.
fn shard_process<W: Write>(
    router: &ShardRouter,
    reorder: &SharedReordering,
    state: &mut ShardConnState,
    summary: &mut ServeSummary,
    req: Request,
    out: &mut W,
) -> std::io::Result<bool> {
    // Pin the committed state this command answers from and piggyback
    // pending pushes first, exactly like the single-session server.
    {
        let pin = router.pin();
        let is_poll = matches!(req, Request::Poll);
        let pushed = state.drain_pushes(&pin);
        if is_poll || !pushed.is_empty() {
            summary.pushes += 1;
            reply(
                out,
                reorder,
                &Response::Push {
                    entries: pushed,
                    epoch: pin.newest_epoch(),
                },
            )?;
        }
        if is_poll {
            return Ok(false);
        }
    }
    let unavailable =
        |what: &str| Response::Error(ServeError::ShardedUnavailable(what.to_string()));
    let resp = match req {
        Request::Poll => unreachable!("handled by the push preamble"),
        Request::Hello => Response::Hello(router.handshake()),
        Request::Insert { u, v } => {
            let pin = router.pin();
            match shard_checked(&pin, u, v) {
                Ok(()) => stage_insert(|u, v| pin.has_edge(u, v), &mut state.staged, u, v),
                Err(e) => Response::Error(e),
            }
        }
        Request::Delete { u, v } => {
            let pin = router.pin();
            match shard_checked(&pin, u, v) {
                Ok(()) => stage_delete(|u, v| pin.has_edge(u, v), &mut state.staged, u, v),
                Err(e) => Response::Error(e),
            }
        }
        Request::Batch => {
            let batch = std::mem::take(&mut state.staged);
            let k = batch.len();
            match router.commit(batch) {
                Ok(o) => {
                    summary.batches += 1;
                    summary.updates += k as u64;
                    Response::BatchOk {
                        batch: k,
                        m: o.m,
                        status: o.status,
                        iters: o.iters,
                        epochs: ShardEpochs::Sharded(o.epochs),
                    }
                }
                Err((rest, msg)) => {
                    state.staged = rest; // the *rejected* edits survive
                    Response::Error(ServeError::BatchRejected(msg))
                }
            }
        }
        Request::Rank { view: Some(_), .. } => unavailable("views"),
        Request::Rank { v, view: None } => {
            let pin = router.pin();
            if (v as usize) < pin.num_vertices() {
                Response::Rank {
                    v,
                    rank: pin.rank(v),
                    epoch: pin.owner_epoch(v),
                    view: None,
                }
            } else {
                Response::Error(ServeError::UnknownVertex(v.to_string()))
            }
        }
        Request::TopK { view: Some(_), .. } => unavailable("views"),
        Request::TopK { k, view: None } => {
            let pin = router.pin();
            Response::TopK {
                entries: pin.top_k(k),
                epochs: ShardEpochs::Sharded(pin.epochs()),
                view: None,
            }
        }
        Request::Movers { view: Some(_), .. } => unavailable("views"),
        Request::Movers { k, view: None } => {
            let pin = router.pin();
            Response::Movers {
                entries: pin.movers(k),
                epochs: ShardEpochs::Sharded(pin.epochs()),
                view: None,
            }
        }
        Request::Stats => {
            let pin = router.pin();
            Response::Stats {
                n: pin.num_vertices(),
                m: pin.num_edges(),
                steps: pin.epochs().iter().sum(),
                staged: state.staged.len(),
                algo: router.algorithm().to_string(),
                epochs: ShardEpochs::Sharded(pin.epochs()),
                wal: router.wal_stats(),
                slack: None,
                queues: Some(router.queue_depths()),
            }
        }
        Request::Subscribe { v, eps } => {
            let pin = router.pin();
            if (v as usize) < pin.num_vertices() {
                let baseline = pin.rank(v);
                state.subs.insert(v, ShardSub { eps, baseline });
                Response::Subscribed { v, eps }
            } else {
                Response::Error(ServeError::VertexOutOfRange {
                    id: v,
                    n: pin.num_vertices(),
                })
            }
        }
        Request::Unsubscribe { v } => {
            if state.subs.remove(&v).is_some() {
                Response::Unsubscribed { v }
            } else {
                Response::Error(ServeError::NotSubscribed(v))
            }
        }
        Request::ViewAdd { .. } | Request::ViewDrop { .. } | Request::Views => unavailable("views"),
        Request::Follow { .. } => unavailable("follow"),
        Request::Quit => {
            reply(out, reorder, &Response::Bye)?;
            return Ok(true);
        }
    };
    reply(out, reorder, &resp)?;
    Ok(false)
}

fn shard_checked(pin: &ShardPin<'_>, u: u32, v: u32) -> Result<(), ServeError> {
    let n = pin.num_vertices();
    for id in [u, v] {
        if id as usize >= n {
            return Err(ServeError::VertexOutOfRange { id, n });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::GraphBuilder;

    fn ring_graph(n: usize) -> DynGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        let mut g = GraphBuilder::new(n).edges(edges).build_dyn().unwrap();
        add_self_loops(&mut g);
        g
    }

    /// Two disconnected cliques split exactly at the block boundary:
    /// no crossing edges.
    fn two_blocks() -> DynGraph {
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        for u in 4..8u32 {
            for v in 4..8u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let mut g = GraphBuilder::new(8).edges(edges).build_dyn().unwrap();
        add_self_loops(&mut g);
        g
    }

    fn opts() -> PagerankOptions {
        PagerankOptions::default().with_threads(1)
    }

    #[test]
    fn no_crossing_edges_skip_the_exchange_entirely() {
        let router =
            ShardRouter::new(two_blocks(), Algorithm::DfLF, opts(), ShardSpec::new(2)).unwrap();
        assert_eq!(router.exchange(), 0);
        assert!(router.corr.read().unwrap().is_none());
        let single = UpdateSession::new(two_blocks(), Algorithm::DfLF, opts());
        let pin = router.pin();
        for v in 0..8u32 {
            assert_eq!(
                pin.rank(v).to_bits(),
                single.rank(v).to_bits(),
                "vertex {v} differs from the unsharded session"
            );
        }
        router.shutdown();
    }

    #[test]
    fn crossing_ring_corrections_converge_to_the_unsharded_ranks() {
        let router =
            ShardRouter::new(ring_graph(12), Algorithm::DfLF, opts(), ShardSpec::new(3)).unwrap();
        let single = UpdateSession::new(ring_graph(12), Algorithm::DfLF, opts());
        let pin = router.pin();
        for v in 0..12u32 {
            let diff = (pin.rank(v) - single.rank(v)).abs();
            assert!(
                diff < 1e-9,
                "vertex {v}: sharded {} vs single {} (diff {diff:e})",
                pin.rank(v),
                single.rank(v)
            );
        }
        router.shutdown();
    }

    #[test]
    fn scatter_gather_commit_reports_per_shard_epochs() {
        let router =
            ShardRouter::new(ring_graph(8), Algorithm::DfLF, opts(), ShardSpec::new(4)).unwrap();
        // One edge into shard 0's range and one into shard 2's: shards
        // 1 and 3 must keep epoch 0.
        let mut batch = BatchUpdate::new();
        batch.insertions.push((0, 3));
        batch.insertions.push((4, 7));
        let o = router.commit(batch).unwrap();
        assert_eq!(o.batch, 2);
        assert_eq!(o.epochs, vec![1, 0, 1, 0]);
        let pin = router.pin();
        assert!(pin.has_edge(0, 3) && pin.has_edge(4, 7));
        assert_eq!(pin.num_edges(), 8 + 8 + 2);
        router.shutdown();
    }

    #[test]
    fn sharded_client_speaks_v2_and_refuses_views_and_follow() {
        let router =
            ShardRouter::new(ring_graph(8), Algorithm::DfLF, opts(), ShardSpec::new(2)).unwrap();
        let script = "hello\nviews\nfollow\nview add ego 1\ntopk 2 ego\nquit\n";
        let mut out = Vec::new();
        serve_shard_client(&router, script.as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "hello lfpr/2 algo=DFLF shards=2 strategy=block caps=core,subs"
        );
        assert_eq!(lines[1], "err views unavailable on a sharded server");
        assert_eq!(lines[2], "err follow unavailable on a sharded server");
        assert_eq!(lines[3], "err views unavailable on a sharded server");
        assert_eq!(lines[4], "err views unavailable on a sharded server");
        assert_eq!(lines[5], "bye");
        router.shutdown();
    }

    #[test]
    fn stats_reports_queue_depths_and_summed_edges() {
        let router =
            ShardRouter::new(ring_graph(9), Algorithm::DfLF, opts(), ShardSpec::new(3)).unwrap();
        let script = "insert 0 2\nbatch\nstats\nquit\n";
        let mut out = Vec::new();
        serve_shard_client(&router, script.as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let stats = out
            .lines()
            .find(|l| l.starts_with("stats "))
            .expect("no stats reply");
        assert!(stats.contains(" m=19 "), "bad edge sum in {stats:?}");
        assert!(stats.contains("epochs=1,0,0"), "bad epochs in {stats:?}");
        assert!(stats.ends_with("queues=0,0,0"), "bad queues in {stats:?}");
        router.shutdown();
    }
}
