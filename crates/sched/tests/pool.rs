//! Integration stress tests for the persistent worker pool: one pool
//! instance reused across hundreds of heterogeneous runs, interleaved
//! with panics and thread-count changes — the usage profile of a
//! benchmark process sweeping many PageRank configurations.

use lfpr_sched::pool::WorkerPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

#[test]
fn one_pool_hundreds_of_runs_varying_closure_types() {
    let pool = WorkerPool::new();
    let mut checks = 0usize;

    for round in 0..120u64 {
        // Closure type 1: pure function of the thread id, returns usize.
        let ids = pool.run(4, |t| t * 2);
        assert_eq!(ids, vec![0, 2, 4, 6]);

        // Closure type 2: borrows round-local stack data, returns String.
        let labels = [format!("a{round}"), "b".into(), "c".into(), "d".into()];
        let tagged = pool.run(4, |t| format!("{}:{t}", labels[t]));
        assert_eq!(tagged[0], format!("a{round}:0"));
        assert_eq!(tagged[3], "d:3");

        // Closure type 3: shared atomic accumulation, returns ().
        let sum = AtomicU64::new(0);
        pool.run(4, |t| {
            for i in 0..100u64 {
                sum.fetch_add(i + t as u64, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4 * 4950 + 100 * 6);

        // Closure type 4: varying team width, returns a heap value.
        let width = 2 + (round as usize % 5); // 2..=6 threads
        let vecs = pool.run(width, |t| vec![t; t]);
        assert_eq!(vecs.len(), width);
        assert!(vecs.iter().enumerate().all(|(t, v)| v.len() == t));

        checks += 4;
    }

    assert_eq!(checks, 480);
    // The team was spawned once and only grew to the widest run.
    assert_eq!(pool.spawned_workers(), 5);
}

#[test]
fn panics_interleaved_with_normal_runs_do_not_wedge_the_pool() {
    let pool = WorkerPool::new();
    let completed = AtomicUsize::new(0);
    for i in 0..50usize {
        if i % 7 == 3 {
            let r = catch_unwind(AssertUnwindSafe(|| {
                pool.run(4, |t| {
                    if t == i % 4 {
                        panic!("injected panic in run {i}");
                    }
                })
            }));
            assert!(r.is_err(), "run {i} must propagate its panic");
        } else {
            let out = pool.run(4, |t| t + i);
            assert_eq!(out, vec![i, i + 1, i + 2, i + 3]);
            completed.fetch_add(1, Ordering::Relaxed);
        }
    }
    assert_eq!(completed.load(Ordering::Relaxed), 43);
}

#[test]
fn heavy_reuse_with_contention_keeps_results_ordered() {
    // The bb/lf engines depend on results arriving in thread-id order;
    // hammer that invariant across many short runs.
    let pool = WorkerPool::new();
    for _ in 0..200 {
        let out = pool.run(8, |t| {
            // Unequal work so finish order != id order.
            std::hint::black_box((0..(8 - t) * 500).sum::<usize>());
            t
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}
