//! Property-based tests for the scheduling and fault-injection
//! primitives.

use lfpr_sched::chunks::{ChunkCursor, ChunkPolicy};
use lfpr_sched::fault::{crashed_set, FaultAction, FaultPlan};
use lfpr_sched::rounds::RoundCursors;
use lfpr_sched::stats::geometric_mean;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Decode one of the three chunk policies from drawn integers, with
/// parameters spanning degenerate (1) through larger-than-range sizes.
fn decode_policy(sel: u8, base: usize) -> ChunkPolicy {
    match sel % 3 {
        0 => ChunkPolicy::Fixed(base),
        1 => ChunkPolicy::Guided { min: base },
        _ => ChunkPolicy::DegreeWeighted { chunk: base },
    }
}

/// Synthetic skewed out-degree: a few hubs, a power-ish tail, zeros.
fn degree_of(v: usize) -> usize {
    match v % 97 {
        0 => 500,
        k if k < 10 => 40,
        k if k < 60 => 3,
        _ => 0,
    }
}

proptest! {
    /// A cursor partitions its range exactly, for any (len, chunk) pair.
    #[test]
    fn cursor_partitions_range(len in 0usize..5000, chunk in 1usize..512) {
        let c = ChunkCursor::new(len);
        let mut seen = vec![false; len];
        while let Some(r) = c.next_chunk(chunk) {
            for i in r {
                prop_assert!(!seen[i], "index {} claimed twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&x| x), "range not fully covered");
    }

    /// Concurrent claiming covers every index exactly once.
    #[test]
    fn cursor_concurrent_exactly_once(
        len in 1usize..20_000,
        chunk in 1usize..256,
        threads in 2usize..6,
    ) {
        let c = ChunkCursor::new(len);
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    while let Some(r) = c.next_chunk(chunk) {
                        for i in r {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// Rounds are independent index spaces, for every chunk policy.
    #[test]
    fn rounds_independent(
        len in 1usize..2000,
        rounds in 1usize..8,
        sel in 0u8..3,
        base in 1usize..128,
    ) {
        let plan = decode_policy(sel, base).plan_weighted(len, 4, degree_of);
        let rc = RoundCursors::new(plan, rounds);
        // Drain even rounds only.
        for r in (0..rounds).step_by(2) {
            while rc.next_chunk(r).is_some() {}
        }
        for r in 0..rounds {
            if r % 2 == 0 {
                prop_assert!(rc.round(r).is_drained());
            } else {
                prop_assert!(!rc.round(r).is_drained() || len == 0);
            }
        }
    }

    /// Every chunk policy compiles into a plan that partitions `0..len`
    /// exactly — contiguous, non-empty chunks, jointly covering the
    /// range — for any (policy, len, threads) combination.
    #[test]
    fn every_policy_partitions_range(
        sel in 0u8..3,
        base in 1usize..4096,
        len in 0usize..30_000,
        threads in 1usize..16,
    ) {
        let policy = decode_policy(sel, base);
        for plan in [
            policy.plan(len, threads),
            policy.plan_weighted(len, threads, degree_of),
        ] {
            prop_assert_eq!(plan.len(), len);
            let mut pos = 0usize;
            let n = plan.num_chunks();
            for i in 0..n {
                let r = plan.chunk(i);
                prop_assert_eq!(r.start, pos, "gap/overlap at chunk {}", i);
                prop_assert!(r.end > r.start, "empty chunk {}", i);
                pos = r.end;
            }
            prop_assert_eq!(pos, len, "range not fully covered");
        }
    }

    /// Satellite acceptance: under 8-thread contention, a cursor over
    /// any policy's plan hands out every index exactly once.
    #[test]
    fn every_policy_claims_exactly_once_contended(
        sel in 0u8..3,
        base in 1usize..2048,
        len in 1usize..25_000,
    ) {
        let plan = decode_policy(sel, base).plan_weighted(len, 8, degree_of);
        let cursor = plan.cursor();
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cursor = &cursor;
                let hits = &hits;
                s.spawn(move || {
                    while let Some(r) = cursor.next_chunk() {
                        for i in r {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        prop_assert!(cursor.is_drained());
    }

    /// The crashed subset is deterministic in the seed, has the right
    /// size, and contains no duplicates.
    #[test]
    fn crashed_set_properties(seed in 0u64..10_000, nt in 1usize..128, k in 0usize..160) {
        let a = crashed_set(seed, nt, k);
        let b = crashed_set(seed, nt, k);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), k.min(nt));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), a.len());
        prop_assert!(a.iter().all(|&t| t < nt));
    }

    /// Fault streams are deterministic per (seed, thread) and crash at
    /// most once, never after `max_crash_point` work units.
    #[test]
    fn fault_stream_deterministic(seed in 0u64..1000, t in 0usize..8) {
        let plan = FaultPlan::with_crashes(8, 64, seed); // everyone crashes
        let mut a = plan.thread_faults(t, 8);
        let mut b = plan.thread_faults(t, 8);
        let mut crash_at = None;
        for i in 0..200u64 {
            let x = a.on_work_unit();
            let y = b.on_work_unit();
            prop_assert_eq!(x, y, "divergence at step {}", i);
            if x == FaultAction::Crash && crash_at.is_none() {
                crash_at = Some(i);
            }
        }
        let at = crash_at.expect("with 8/8 crashed every thread must crash");
        prop_assert!(at < 64, "crash at {} exceeds max_crash_point", at);
    }

    /// Geometric mean lies between min and max and is scale-equivariant.
    #[test]
    fn geomean_properties(xs in prop::collection::vec(1e-6f64..1e6, 1..20), k in 1e-3f64..1e3) {
        let g = geometric_mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= lo * 0.999999 && g <= hi * 1.000001, "g = {}", g);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let gs = geometric_mean(&scaled).unwrap();
        prop_assert!((gs / g / k - 1.0).abs() < 1e-9);
    }
}
