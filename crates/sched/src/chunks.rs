//! Dynamic chunk scheduling via an atomic cursor.
//!
//! The OpenMP idiom `#pragma omp for schedule(dynamic, 2048)` hands each
//! requesting thread the next unclaimed chunk of 2048 loop indices.
//! [`ChunkCursor`] reproduces that with a single `fetch_add`: wait-free
//! for every calling thread, hence suitable for the lock-free algorithms.
//! A thread that stalls *after* claiming a chunk blocks nobody — other
//! threads keep claiming the remaining chunks; the claimed-but-unfinished
//! vertices are re-covered in the next iteration by the algorithm's
//! convergence flags (paper §4.4).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default chunk size — the paper uses 2048 (§5.1.2).
pub const DEFAULT_CHUNK: usize = 2048;

/// A wait-free dynamic scheduler over the index range `0..len`.
#[derive(Debug)]
pub struct ChunkCursor {
    len: usize,
    next: AtomicUsize,
}

impl ChunkCursor {
    /// Create a cursor over `0..len`.
    pub fn new(len: usize) -> Self {
        ChunkCursor {
            len,
            next: AtomicUsize::new(0),
        }
    }

    /// Claim the next chunk of at most `chunk_size` indices. Returns
    /// `None` when the range is exhausted. Wait-free (one `fetch_add`).
    #[inline]
    pub fn next_chunk(&self, chunk_size: usize) -> Option<Range<usize>> {
        debug_assert!(chunk_size > 0);
        let start = self.next.fetch_add(chunk_size, Ordering::Relaxed);
        if start >= self.len {
            None
        } else {
            Some(start..(start + chunk_size).min(self.len))
        }
    }

    /// Whether all indices have been claimed (not necessarily processed).
    #[inline]
    pub fn is_drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.len
    }

    /// Total length of the index range.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reset the cursor for reuse (single-threaded phases only).
    pub fn reset(&mut self) {
        *self.next.get_mut() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn covers_range_exactly_once_single_thread() {
        let c = ChunkCursor::new(100);
        let mut seen = [0u8; 100];
        while let Some(r) = c.next_chunk(7) {
            for i in r {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&x| x == 1));
        assert!(c.is_drained());
    }

    #[test]
    fn empty_range_yields_nothing() {
        let c = ChunkCursor::new(0);
        assert!(c.next_chunk(8).is_none());
        assert!(c.is_drained());
        assert!(c.is_empty());
    }

    #[test]
    fn chunk_larger_than_range() {
        let c = ChunkCursor::new(5);
        assert_eq!(c.next_chunk(100), Some(0..5));
        assert_eq!(c.next_chunk(100), None);
    }

    #[test]
    fn concurrent_claims_partition_the_range() {
        let n = 100_000;
        let c = Arc::new(ChunkCursor::new(n));
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let sum = Arc::clone(&sum);
                let count = Arc::clone(&count);
                s.spawn(move || {
                    while let Some(r) = c.next_chunk(64) {
                        for i in r {
                            sum.fetch_add(i as u64, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), n);
        let expect = (n as u64 - 1) * n as u64 / 2;
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut c = ChunkCursor::new(10);
        while c.next_chunk(4).is_some() {}
        c.reset();
        assert_eq!(c.next_chunk(4), Some(0..4));
    }
}
