//! Dynamic chunk scheduling via an atomic cursor.
//!
//! The OpenMP idiom `#pragma omp for schedule(dynamic, 2048)` hands each
//! requesting thread the next unclaimed chunk of 2048 loop indices.
//! [`ChunkCursor`] reproduces that with a single `fetch_add`: wait-free
//! for every calling thread, hence suitable for the lock-free algorithms.
//! A thread that stalls *after* claiming a chunk blocks nobody — other
//! threads keep claiming the remaining chunks; the claimed-but-unfinished
//! vertices are re-covered in the next iteration by the algorithm's
//! convergence flags (paper §4.4).
//!
//! On top of the fixed-stride cursor, [`ChunkPolicy`] generalizes *how*
//! the index range is cut into chunks without giving up the wait-free
//! claim: every policy is compiled once per run into an immutable
//! [`ChunkPlan`] (either a fixed stride or a precomputed boundary
//! table), and a [`PlanCursor`] claims chunks from the plan with a
//! single `fetch_add` — chunk *sizes* vary, the claim protocol does not.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default chunk size — the paper uses 2048 (§5.1.2).
pub const DEFAULT_CHUNK: usize = 2048;

/// Default minimum chunk for [`ChunkPolicy::Guided`]: small enough to
/// smooth load at the tail, large enough to amortize the claim.
pub const DEFAULT_GUIDED_MIN: usize = 64;

/// A wait-free dynamic scheduler over the index range `0..len`.
#[derive(Debug)]
pub struct ChunkCursor {
    len: usize,
    next: AtomicUsize,
}

impl ChunkCursor {
    /// Create a cursor over `0..len`.
    pub fn new(len: usize) -> Self {
        ChunkCursor {
            len,
            next: AtomicUsize::new(0),
        }
    }

    /// Claim the next chunk of at most `chunk_size` indices. Returns
    /// `None` when the range is exhausted. Wait-free (at most one load
    /// plus one `fetch_add`).
    ///
    /// The early-return on a drained cursor is load-bearing, not an
    /// optimization: without it every post-drain poll keeps incrementing
    /// `next`, so a long-lived claimant spinning on an exhausted cursor
    /// could wrap `usize` and hand out duplicate chunks. With the check,
    /// `next` overshoots `len` by at most `threads × chunk_size`.
    #[inline]
    pub fn next_chunk(&self, chunk_size: usize) -> Option<Range<usize>> {
        debug_assert!(chunk_size > 0);
        if self.next.load(Ordering::Relaxed) >= self.len {
            return None;
        }
        let start = self.next.fetch_add(chunk_size, Ordering::Relaxed);
        if start >= self.len {
            None
        } else {
            Some(start..(start + chunk_size).min(self.len))
        }
    }

    /// Whether all indices have been claimed (not necessarily processed).
    #[inline]
    pub fn is_drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.len
    }

    /// Total length of the index range.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reset the cursor for reuse (single-threaded phases only).
    pub fn reset(&mut self) {
        *self.next.get_mut() = 0;
    }
}

/// How a run's index range is cut into dynamically claimed chunks.
///
/// Every policy compiles into a [`ChunkPlan`] whose chunks are claimed
/// wait-free (one `fetch_add` per claim), preserving the paper's
/// lock-freedom and crash-stop story — only the chunk *boundaries*
/// differ:
///
/// | policy | boundaries | best for |
/// |--------|-----------|----------|
/// | `Fixed(c)` | stride `c` (paper: 2048) | fidelity; uniform-degree graphs |
/// | `Guided { min }` | `remaining/(2·threads)`, geometrically shrinking, ≥ `min` | low claim traffic up front, fine-grained balance at the tail |
/// | `DegreeWeighted { chunk }` | cut at equal shares of `Σ work(v)` (CSR out-degree) | skewed RMAT/web graphs where one 2048-vertex chunk can carry 100× the edge work of another |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkPolicy {
    /// Fixed-size chunks of the given vertex count (`schedule(dynamic, c)`).
    Fixed(usize),
    /// Geometrically shrinking chunks, never smaller than `min`
    /// (`schedule(guided, min)`).
    Guided {
        /// Lower bound on the chunk size.
        min: usize,
    },
    /// Chunk boundaries placed so each chunk carries an approximately
    /// equal amount of *edge* work, computed from a per-index weight
    /// (1 + out-degree for CSR vertex loops). `chunk` is the vertex-count
    /// hint that fixes the number of chunks (`len / chunk`, like Fixed).
    DegreeWeighted {
        /// Average vertices per chunk; determines the chunk count.
        chunk: usize,
    },
}

impl Default for ChunkPolicy {
    fn default() -> Self {
        ChunkPolicy::Fixed(DEFAULT_CHUNK)
    }
}

impl ChunkPolicy {
    /// The base chunk size of the policy: the fixed stride, the guided
    /// minimum, or the degree-weighted vertex-count hint. Used where a
    /// plain stride is still needed (edge-batch cursors, per-chunk
    /// convergence flags).
    pub fn base_chunk(&self) -> usize {
        match *self {
            ChunkPolicy::Fixed(c) => c,
            ChunkPolicy::Guided { min } => min,
            ChunkPolicy::DegreeWeighted { chunk } => chunk,
        }
    }

    /// Validate policy parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.base_chunk() == 0 {
            return Err(format!("chunk policy parameter must be positive: {self}"));
        }
        Ok(())
    }

    /// Compile the policy into a plan over `0..len` for a team of
    /// `threads`. `DegreeWeighted` needs per-index weights; this
    /// weight-free form degrades it to `Fixed(chunk)` (documented
    /// fallback for index spaces with no degree structure, e.g. edge
    /// batches) — use [`ChunkPolicy::plan_weighted`] for vertex loops.
    pub fn plan(&self, len: usize, threads: usize) -> ChunkPlan {
        match *self {
            ChunkPolicy::Fixed(chunk) => ChunkPlan::fixed(len, chunk),
            ChunkPolicy::DegreeWeighted { chunk } => ChunkPlan::fixed(len, chunk),
            ChunkPolicy::Guided { min } => {
                let min = min.max(1);
                let threads = threads.max(1);
                let mut bounds = Vec::new();
                bounds.push(0usize);
                let mut pos = 0usize;
                while pos < len {
                    let step = ((len - pos) / (2 * threads)).max(min).min(len - pos);
                    pos += step;
                    bounds.push(pos);
                }
                ChunkPlan::from_boundaries(bounds)
            }
        }
    }

    /// Compile the policy with a per-index work weight (for vertex
    /// loops: `1 + out_degree(v)`). Only `DegreeWeighted` consults the
    /// weights; the other policies defer to [`ChunkPolicy::plan`].
    pub fn plan_weighted(
        &self,
        len: usize,
        threads: usize,
        weight: impl Fn(usize) -> usize,
    ) -> ChunkPlan {
        let ChunkPolicy::DegreeWeighted { chunk } = *self else {
            return self.plan(len, threads);
        };
        let chunk = chunk.max(1);
        let num_chunks = len.div_ceil(chunk).max(1);
        if num_chunks <= 1 {
            return ChunkPlan::fixed(len, chunk);
        }
        let total: u64 = (0..len).map(|v| weight(v) as u64).sum();
        if total == 0 {
            return ChunkPlan::fixed(len, chunk);
        }
        // Cut at the k/num_chunks work quantiles: boundary k is placed
        // after the first vertex whose prefix work reaches k·total/N.
        // A single heavy vertex may cover several quantiles; it still
        // produces exactly one cut (chunks are never empty).
        let mut bounds = Vec::with_capacity(num_chunks + 1);
        bounds.push(0usize);
        let mut acc: u64 = 0;
        let mut k: u64 = 1;
        let n_chunks = num_chunks as u64;
        for v in 0..len {
            acc += weight(v) as u64;
            if k < n_chunks && acc as u128 * n_chunks as u128 >= k as u128 * total as u128 {
                bounds.push(v + 1);
                while k < n_chunks && acc as u128 * n_chunks as u128 >= k as u128 * total as u128 {
                    k += 1;
                }
            }
        }
        if *bounds.last().unwrap() != len {
            bounds.push(len);
        }
        ChunkPlan::from_boundaries(bounds)
    }
}

impl std::fmt::Display for ChunkPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkPolicy::Fixed(c) => write!(f, "fixed:{c}"),
            ChunkPolicy::Guided { min } => write!(f, "guided:{min}"),
            ChunkPolicy::DegreeWeighted { chunk } => write!(f, "degree:{chunk}"),
        }
    }
}

impl std::str::FromStr for ChunkPolicy {
    type Err = String;

    /// Parse `fixed[:c]`, `guided[:min]`, or `degree[:chunk]`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (name, param) = match s.split_once(':') {
            Some((n, p)) => {
                let v: usize = p
                    .parse()
                    .map_err(|_| format!("bad chunk parameter in {s:?}"))?;
                (n, Some(v))
            }
            None => (s, None),
        };
        let policy = match name.to_ascii_lowercase().as_str() {
            "fixed" => ChunkPolicy::Fixed(param.unwrap_or(DEFAULT_CHUNK)),
            "guided" => ChunkPolicy::Guided {
                min: param.unwrap_or(DEFAULT_GUIDED_MIN),
            },
            "degree" | "degree-weighted" => ChunkPolicy::DegreeWeighted {
                chunk: param.unwrap_or(DEFAULT_CHUNK),
            },
            other => return Err(format!("unknown chunk policy: {other}")),
        };
        policy.validate()?;
        Ok(policy)
    }
}

/// An immutable chunking of `0..len`, compiled once per run and shared
/// (cheaply, via `Arc`) by every per-round cursor. Either a fixed stride
/// (chunk `i` is pure arithmetic) or a precomputed boundary table
/// (chunk `i` = `bounds[i]..bounds[i+1]`).
#[derive(Debug, Clone)]
pub struct ChunkPlan {
    len: usize,
    kind: PlanKind,
}

#[derive(Debug, Clone)]
enum PlanKind {
    Fixed { chunk: usize },
    Bounds(Arc<[usize]>),
}

impl ChunkPlan {
    /// Fixed-stride plan (the paper's `schedule(dynamic, chunk)`).
    pub fn fixed(len: usize, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        ChunkPlan {
            len,
            kind: PlanKind::Fixed { chunk },
        }
    }

    /// Plan from an ascending boundary list starting at 0 and ending at
    /// the range length (`[0]` alone means an empty range).
    pub fn from_boundaries(bounds: Vec<usize>) -> Self {
        assert!(
            !bounds.is_empty() && bounds[0] == 0,
            "boundaries must start at 0"
        );
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "must be ascending");
        ChunkPlan {
            len: *bounds.last().unwrap(),
            kind: PlanKind::Bounds(bounds.into()),
        }
    }

    /// Total length of the index range.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks the plan cuts the range into.
    pub fn num_chunks(&self) -> usize {
        match &self.kind {
            PlanKind::Fixed { chunk } => self.len.div_ceil(*chunk),
            PlanKind::Bounds(b) => b.len() - 1,
        }
    }

    /// The half-open range of chunk `i` (`i < num_chunks`).
    pub fn chunk(&self, i: usize) -> Range<usize> {
        match &self.kind {
            PlanKind::Fixed { chunk } => {
                let start = i * chunk;
                start..(start + chunk).min(self.len)
            }
            PlanKind::Bounds(b) => b[i]..b[i + 1],
        }
    }

    /// A fresh wait-free cursor over this plan (shares the boundary
    /// table, owns only the claim counter).
    pub fn cursor(&self) -> PlanCursor {
        PlanCursor {
            plan: self.clone(),
            next: AtomicUsize::new(0),
        }
    }
}

/// A wait-free dynamic scheduler over a [`ChunkPlan`]: claims whole
/// plan-chunks with a single `fetch_add` on the chunk ordinal, so the
/// claim protocol is identical to [`ChunkCursor`] regardless of how
/// irregular the chunk sizes are.
#[derive(Debug)]
pub struct PlanCursor {
    plan: ChunkPlan,
    next: AtomicUsize,
}

impl PlanCursor {
    /// Claim the next chunk. `None` once all chunks are claimed.
    /// Wait-free: at most one load plus one `fetch_add`, with the same
    /// drained-cursor early return as [`ChunkCursor::next_chunk`] so
    /// spinning claimants cannot wrap the counter.
    #[inline]
    pub fn next_chunk(&self) -> Option<Range<usize>> {
        let n = self.plan.num_chunks();
        if self.next.load(Ordering::Relaxed) >= n {
            return None;
        }
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            None
        } else {
            Some(self.plan.chunk(i))
        }
    }

    /// Whether all chunks have been claimed (not necessarily processed).
    #[inline]
    pub fn is_drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.plan.num_chunks()
    }

    /// The plan this cursor claims from.
    pub fn plan(&self) -> &ChunkPlan {
        &self.plan
    }

    /// Rewind the cursor so the whole plan can be claimed again.
    /// `&mut self` guarantees no thread is claiming concurrently — this
    /// is the between-runs reuse hook for persistent workspaces, not
    /// part of the wait-free claim protocol.
    pub fn reset(&mut self) {
        *self.next.get_mut() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn covers_range_exactly_once_single_thread() {
        let c = ChunkCursor::new(100);
        let mut seen = [0u8; 100];
        while let Some(r) = c.next_chunk(7) {
            for i in r {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&x| x == 1));
        assert!(c.is_drained());
    }

    #[test]
    fn empty_range_yields_nothing() {
        let c = ChunkCursor::new(0);
        assert!(c.next_chunk(8).is_none());
        assert!(c.is_drained());
        assert!(c.is_empty());
    }

    #[test]
    fn chunk_larger_than_range() {
        let c = ChunkCursor::new(5);
        assert_eq!(c.next_chunk(100), Some(0..5));
        assert_eq!(c.next_chunk(100), None);
    }

    #[test]
    fn concurrent_claims_partition_the_range() {
        let n = 100_000;
        let c = Arc::new(ChunkCursor::new(n));
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let sum = Arc::clone(&sum);
                let count = Arc::clone(&count);
                s.spawn(move || {
                    while let Some(r) = c.next_chunk(64) {
                        for i in r {
                            sum.fetch_add(i as u64, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), n);
        let expect = (n as u64 - 1) * n as u64 / 2;
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut c = ChunkCursor::new(10);
        while c.next_chunk(4).is_some() {}
        c.reset();
        assert_eq!(c.next_chunk(4), Some(0..4));
    }

    #[test]
    fn drained_cursor_counter_saturates() {
        // Satellite fix: polling an exhausted cursor must not keep
        // growing the counter (a spinner could wrap usize otherwise).
        let c = ChunkCursor::new(10);
        while c.next_chunk(4).is_some() {}
        let after_drain = c.next.load(Ordering::Relaxed);
        for _ in 0..1000 {
            assert_eq!(c.next_chunk(4), None);
        }
        assert_eq!(c.next.load(Ordering::Relaxed), after_drain);
    }

    fn collect_chunks(plan: &ChunkPlan) -> Vec<Range<usize>> {
        let cur = plan.cursor();
        let mut out = Vec::new();
        while let Some(r) = cur.next_chunk() {
            out.push(r);
        }
        out
    }

    fn assert_partitions(plan: &ChunkPlan, len: usize) {
        let chunks = collect_chunks(plan);
        let mut pos = 0;
        for r in &chunks {
            assert_eq!(r.start, pos, "gap or overlap at {pos}");
            assert!(r.end > r.start, "empty chunk at {pos}");
            pos = r.end;
        }
        assert_eq!(pos, len, "range not fully covered");
        assert_eq!(chunks.len(), plan.num_chunks());
    }

    #[test]
    fn fixed_plan_partitions() {
        assert_partitions(&ChunkPolicy::Fixed(7).plan(100, 4), 100);
        assert_partitions(&ChunkPolicy::Fixed(2048).plan(100, 4), 100);
        assert_partitions(&ChunkPolicy::Fixed(1).plan(0, 4), 0);
    }

    #[test]
    fn guided_plan_shrinks_and_partitions() {
        let plan = ChunkPolicy::Guided { min: 8 }.plan(10_000, 4);
        assert_partitions(&plan, 10_000);
        let chunks = collect_chunks(&plan);
        // First chunk is remaining/(2·threads), later chunks shrink and
        // bottom out at min.
        assert_eq!(chunks[0].len(), 10_000 / 8);
        for w in chunks.windows(2) {
            assert!(w[1].len() <= w[0].len(), "guided chunks must not grow");
        }
        assert!(
            chunks.last().unwrap().len() <= 8,
            "tail must bottom out at min"
        );
    }

    #[test]
    fn degree_weighted_balances_edge_work() {
        // Heavily skewed weights: vertex 0 carries half the total work.
        let n = 4096;
        let w = |v: usize| if v == 0 { n } else { 1 };
        let plan = ChunkPolicy::DegreeWeighted { chunk: 512 }.plan_weighted(n, 4, w);
        assert_partitions(&plan, n);
        let chunks = collect_chunks(&plan);
        assert_eq!(chunks.len(), plan.num_chunks());
        // The hub chunk must be tiny (the hub alone fills its work
        // budget), and no chunk's work may exceed ~2 budgets.
        let total: usize = (0..n).map(w).sum();
        let budget = total / plan.num_chunks();
        assert!(
            chunks[0].len() < 512,
            "hub chunk not shrunk: {:?}",
            chunks[0]
        );
        for r in &chunks[1..] {
            let work: usize = r.clone().map(w).sum();
            assert!(work <= 2 * budget + n, "chunk {r:?} overloaded: {work}");
        }
    }

    #[test]
    fn degree_weighted_uniform_matches_fixed_count() {
        let plan = ChunkPolicy::DegreeWeighted { chunk: 100 }.plan_weighted(1000, 4, |_| 3);
        assert_partitions(&plan, 1000);
        assert_eq!(plan.num_chunks(), 10);
    }

    #[test]
    fn degree_weighted_without_weights_degrades_to_fixed() {
        let plan = ChunkPolicy::DegreeWeighted { chunk: 64 }.plan(1000, 4);
        assert_partitions(&plan, 1000);
        assert_eq!(plan.chunk(0), 0..64);
    }

    #[test]
    fn plan_cursor_concurrent_claims_partition() {
        let plan = ChunkPolicy::Guided { min: 16 }.plan(50_000, 8);
        let cur = plan.cursor();
        let hits: Vec<AtomicUsize> = (0..50_000).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cur = &cur;
                let hits = &hits;
                s.spawn(move || {
                    while let Some(r) = cur.next_chunk() {
                        for i in r {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert!(cur.is_drained());
    }

    #[test]
    fn plan_cursor_counter_saturates() {
        let plan = ChunkPolicy::Fixed(4).plan(10, 2);
        let cur = plan.cursor();
        while cur.next_chunk().is_some() {}
        let after = cur.next.load(Ordering::Relaxed);
        for _ in 0..1000 {
            assert_eq!(cur.next_chunk(), None);
        }
        assert_eq!(cur.next.load(Ordering::Relaxed), after);
    }

    #[test]
    fn policy_parsing_roundtrip() {
        for s in ["fixed:2048", "guided:64", "degree:512"] {
            let p: ChunkPolicy = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert_eq!(
            "fixed".parse::<ChunkPolicy>().unwrap(),
            ChunkPolicy::Fixed(DEFAULT_CHUNK)
        );
        assert_eq!(
            "guided".parse::<ChunkPolicy>().unwrap(),
            ChunkPolicy::Guided {
                min: DEFAULT_GUIDED_MIN
            }
        );
        assert_eq!(
            "degree".parse::<ChunkPolicy>().unwrap(),
            ChunkPolicy::DegreeWeighted {
                chunk: DEFAULT_CHUNK
            }
        );
        assert!("fixed:0".parse::<ChunkPolicy>().is_err());
        assert!("frobnicate".parse::<ChunkPolicy>().is_err());
        assert!("fixed:xyz".parse::<ChunkPolicy>().is_err());
    }

    #[test]
    fn base_chunk_per_policy() {
        assert_eq!(ChunkPolicy::Fixed(10).base_chunk(), 10);
        assert_eq!(ChunkPolicy::Guided { min: 5 }.base_chunk(), 5);
        assert_eq!(ChunkPolicy::DegreeWeighted { chunk: 9 }.base_chunk(), 9);
        assert_eq!(ChunkPolicy::default(), ChunkPolicy::Fixed(DEFAULT_CHUNK));
    }
}
