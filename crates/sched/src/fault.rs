//! Fault injection: random thread delays and crash-stop failures.
//!
//! Reproduces §5.1.6 of the paper:
//!
//! * **Delays** — *"We simulate a random thread delay such that it can
//!   occur after computing the rank of any vertex in an iteration with a
//!   certain probability. This random thread delay affects all threads
//!   uniformly."* Probabilities in Figure 8 range from 1e-9 to 1e-6 per
//!   vertex computation (expressed there as sleeps-per-iteration,
//!   `p·|V|`), with sleep durations of 50/100/200 ms.
//! * **Crashes** — *"We similarly simulate a random thread crash by
//!   setting a per-thread crashed flag, which signals that particular
//!   thread to stop its execution deterministically (crash-stop model)."*
//!   Crashed threads stop cleanly at a random point during computation;
//!   they corrupt no memory (no byzantine behavior).
//!
//! Fault decisions are made by a per-thread deterministic RNG derived
//! from the plan seed and the thread id, so every experiment is exactly
//! reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Random-delay specification (soft faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySpec {
    /// Probability of a sleep after each vertex-rank computation.
    pub probability: f64,
    /// Sleep duration (the paper uses 50, 100, 200 ms).
    pub duration: Duration,
}

/// Crash-stop specification (hard faults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// How many of the team's threads will crash (paper: 0, 1, 2, 4,
    /// 8..56 of 64).
    pub num_crashed: usize,
    /// Upper bound of the uniformly random work point (counted in vertex
    /// computations) at which a flagged thread stops. The paper crashes
    /// threads "at a random point in time during PageRank computation";
    /// this should be on the order of one iteration's work per thread.
    pub max_crash_point: u64,
}

/// A complete fault plan for one algorithm run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Optional random delays.
    pub delay: Option<DelaySpec>,
    /// Optional crash-stop failures.
    pub crash: Option<CrashSpec>,
    /// Seed for all fault randomness.
    pub seed: u64,
}

impl FaultPlan {
    /// The no-fault plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether any fault is configured.
    pub fn is_active(&self) -> bool {
        self.delay.is_some() || self.crash.is_some()
    }

    /// Plan with random delays only.
    pub fn with_delays(probability: f64, duration: Duration, seed: u64) -> Self {
        FaultPlan {
            delay: Some(DelaySpec {
                probability,
                duration,
            }),
            crash: None,
            seed,
        }
    }

    /// Plan with crash-stop failures only.
    pub fn with_crashes(num_crashed: usize, max_crash_point: u64, seed: u64) -> Self {
        FaultPlan {
            delay: None,
            crash: Some(CrashSpec {
                num_crashed,
                max_crash_point,
            }),
            seed,
        }
    }

    /// Derive the fault state for one thread of a team of `num_threads`.
    ///
    /// Which threads crash is chosen by a seeded shuffle of the thread
    /// ids, so the crashed subset is random but reproducible.
    pub fn thread_faults(&self, thread_id: usize, num_threads: usize) -> ThreadFaults {
        let mut rng = SmallRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(thread_id as u64),
        );
        let crash_at = self.crash.and_then(|c| {
            let crashed = crashed_set(self.seed, num_threads, c.num_crashed);
            if crashed.contains(&thread_id) {
                Some(rng.gen_range(0..c.max_crash_point.max(1)))
            } else {
                None
            }
        });
        ThreadFaults {
            delay: self.delay,
            crash_at,
            work_done: 0,
            crashed: false,
            rng,
        }
    }
}

/// The reproducible set of thread ids flagged to crash.
pub fn crashed_set(seed: u64, num_threads: usize, num_crashed: usize) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..num_threads).collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FF_EE00_DEAD_BEEF);
    // Fisher–Yates prefix shuffle.
    let k = num_crashed.min(num_threads);
    for i in 0..k {
        let j = rng.gen_range(i..num_threads);
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids
}

/// What the fault framework tells a worker thread to do after a unit of
/// work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Keep going.
    Continue,
    /// Sleep for the given duration, then keep going (soft fault).
    Delay(Duration),
    /// Stop executing immediately (crash-stop; the thread must return).
    Crash,
}

/// Per-thread fault state. Threads call [`ThreadFaults::on_work_unit`]
/// after each vertex-rank computation and obey the returned action.
#[derive(Debug, Clone)]
pub struct ThreadFaults {
    delay: Option<DelaySpec>,
    crash_at: Option<u64>,
    work_done: u64,
    crashed: bool,
    rng: SmallRng,
}

impl ThreadFaults {
    /// Report one unit of work (one vertex rank computed); receive the
    /// fault action to apply. Once `Crash` is returned, it is returned
    /// forever (crash-stop is permanent).
    #[inline]
    pub fn on_work_unit(&mut self) -> FaultAction {
        if self.crashed {
            return FaultAction::Crash;
        }
        self.work_done += 1;
        if let Some(at) = self.crash_at {
            if self.work_done >= at {
                self.crashed = true;
                return FaultAction::Crash;
            }
        }
        if let Some(d) = self.delay {
            // One branch + one RNG draw per vertex; SmallRng keeps this
            // cheap enough to leave enabled unconditionally.
            if d.probability > 0.0 && self.rng.gen::<f64>() < d.probability {
                return FaultAction::Delay(d.duration);
            }
        }
        FaultAction::Continue
    }

    /// Convenience: perform the action (sleep on `Delay`); returns `true`
    /// if the thread must stop (crash).
    #[inline]
    pub fn tick(&mut self) -> bool {
        match self.on_work_unit() {
            FaultAction::Continue => false,
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                false
            }
            FaultAction::Crash => true,
        }
    }

    /// Whether this thread has crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Units of work performed so far.
    pub fn work_done(&self) -> u64 {
        self.work_done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fault_plan_always_continues() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        let mut tf = plan.thread_faults(0, 4);
        for _ in 0..10_000 {
            assert_eq!(tf.on_work_unit(), FaultAction::Continue);
        }
    }

    #[test]
    fn delay_rate_matches_probability() {
        let plan = FaultPlan::with_delays(0.01, Duration::from_millis(1), 42);
        let mut tf = plan.thread_faults(0, 1);
        let mut delays = 0;
        let n = 100_000;
        for _ in 0..n {
            if matches!(tf.on_work_unit(), FaultAction::Delay(_)) {
                delays += 1;
            }
        }
        let rate = delays as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.003, "rate {rate}");
    }

    #[test]
    fn crash_happens_once_and_is_permanent() {
        let plan = FaultPlan::with_crashes(1, 100, 7);
        // Find the crashed thread in a team of 1 — must be thread 0.
        let mut tf = plan.thread_faults(0, 1);
        let mut crashed_at = None;
        for i in 0..1000u64 {
            if tf.on_work_unit() == FaultAction::Crash {
                crashed_at = Some(i);
                break;
            }
        }
        let at = crashed_at.expect("must crash within max_crash_point");
        assert!(at < 100);
        assert!(tf.is_crashed());
        assert_eq!(tf.on_work_unit(), FaultAction::Crash);
    }

    #[test]
    fn crashed_subset_has_requested_size_and_is_deterministic() {
        let a = crashed_set(3, 64, 8);
        let b = crashed_set(3, 64, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "no duplicate thread ids");
        assert!(sorted.iter().all(|&t| t < 64));
        // Different seed gives a different subset (overwhelmingly likely).
        let c = crashed_set(4, 64, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn crash_count_capped_at_team_size() {
        assert_eq!(crashed_set(1, 4, 100).len(), 4);
    }

    #[test]
    fn non_crashed_threads_never_crash() {
        let plan = FaultPlan::with_crashes(2, 50, 11);
        let crashed = crashed_set(11, 8, 2);
        for t in 0..8 {
            let mut tf = plan.thread_faults(t, 8);
            let mut saw_crash = false;
            for _ in 0..500 {
                if tf.on_work_unit() == FaultAction::Crash {
                    saw_crash = true;
                    break;
                }
            }
            assert_eq!(saw_crash, crashed.contains(&t), "thread {t}");
        }
    }

    #[test]
    fn tick_sleeps_and_reports_crash() {
        let plan = FaultPlan::with_crashes(1, 1, 5);
        let mut tf = plan.thread_faults(plan.thread_faults(0, 1).is_crashed() as usize, 1);
        // crash point < 1 means first work unit crashes
        assert!(tf.tick());
    }
}
