//! Per-iteration cursors implementing OpenMP `for nowait` semantics.
//!
//! In the paper's lock-free algorithms, the PageRank iteration loop is a
//! sequence of work-sharing constructs with `nowait`: all running threads
//! cooperatively drain iteration *i*'s vertex range, but a thread that
//! finishes early proceeds to iteration *i+1* immediately — threads can
//! legitimately occupy **different iterations at the same time** (that is
//! what makes the algorithm barrier-free, Figure 2(b)).
//!
//! [`RoundCursors`] realizes this with one [`PlanCursor`] per iteration,
//! all claiming from the same precompiled [`ChunkPlan`]. Cursors are
//! allocated lazily in blocks of [`ROUND_BLOCK`]: dynamic runs converge
//! in a handful of rounds, so eagerly materializing all
//! `max_iterations` (500) cursors per run — as the seed did — wastes
//! allocation on every benchmark iteration. The first block is built
//! eagerly (the hot path for converging runs never allocates); deeper
//! blocks are installed on demand with a lock-free CAS on an atomic
//! spine pointer, so a stalled thread can never block another thread's
//! claim — the wait-free fetch-add claim itself is untouched.

use crate::chunks::{ChunkPlan, PlanCursor};
use crate::stats::RoundStats;
use std::ops::Range;
use std::sync::atomic::{AtomicPtr, Ordering};

/// Rounds per lazily allocated cursor block. 32 covers virtually every
/// converging run (dynamic updates finish in <10 rounds) in the single
/// eager block while keeping worst-case spine length at
/// `500/32 ≈ 16` pointers.
pub const ROUND_BLOCK: usize = 32;

/// A stack of per-iteration chunk cursors over the same index range.
#[derive(Debug)]
pub struct RoundCursors {
    plan: ChunkPlan,
    max_rounds: usize,
    /// `spine[b]` points to the cursors for rounds
    /// `b*ROUND_BLOCK .. (b+1)*ROUND_BLOCK` once some thread needed them.
    spine: Box<[AtomicPtr<Block>]>,
    stats: RoundStats,
}

#[derive(Debug)]
struct Block {
    cursors: Vec<PlanCursor>,
}

impl RoundCursors {
    /// Create cursors for up to `max_rounds` iterations over `plan`.
    /// Only the first [`ROUND_BLOCK`] rounds are materialized eagerly.
    pub fn new(plan: ChunkPlan, max_rounds: usize) -> Self {
        let num_blocks = max_rounds.div_ceil(ROUND_BLOCK);
        let spine: Box<[AtomicPtr<Block>]> = (0..num_blocks)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        let rc = RoundCursors {
            plan,
            max_rounds,
            spine,
            stats: RoundStats::new(),
        };
        if max_rounds > 0 {
            rc.block(0); // eager first block: converging runs stay allocation-free
        }
        rc
    }

    /// Number of rounds claimable through this set.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// The shared chunk plan.
    pub fn plan(&self) -> &ChunkPlan {
        &self.plan
    }

    /// 1 + the highest round any thread has touched (0 before first claim).
    pub fn peak_rounds(&self) -> usize {
        self.stats.peak_rounds()
    }

    /// Number of currently materialized cursor blocks (test/stats hook).
    pub fn allocated_blocks(&self) -> usize {
        self.spine
            .iter()
            .filter(|p| !p.load(Ordering::Acquire).is_null())
            .count()
    }

    fn block(&self, b: usize) -> &Block {
        let p = self.spine[b].load(Ordering::Acquire);
        if !p.is_null() {
            return unsafe { &*p };
        }
        // Materialize the block and race to install it. Losing the race
        // just frees our copy — no thread ever waits on another here
        // (lock-free growth; the claim path itself stays wait-free).
        let lo = b * ROUND_BLOCK;
        let hi = ((b + 1) * ROUND_BLOCK).min(self.max_rounds);
        let fresh = Box::into_raw(Box::new(Block {
            cursors: (lo..hi).map(|_| self.plan.cursor()).collect(),
        }));
        match self.spine[b].compare_exchange(
            std::ptr::null_mut(),
            fresh,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => unsafe { &*fresh },
            Err(winner) => {
                drop(unsafe { Box::from_raw(fresh) });
                unsafe { &*winner }
            }
        }
    }

    /// Rewind every materialized cursor (and the round stats) so the
    /// same set can drive another run — the reuse hook for persistent
    /// update sessions, which would otherwise re-allocate the spine and
    /// first cursor block on every batch. `&mut self` guarantees no
    /// claim is in flight; lazily allocated deep blocks are kept.
    pub fn reset(&mut self) {
        for p in self.spine.iter_mut() {
            let ptr = *p.get_mut();
            if !ptr.is_null() {
                for cursor in unsafe { &mut (*ptr).cursors }.iter_mut() {
                    cursor.reset();
                }
            }
        }
        self.stats.reset();
    }

    /// Claim the next chunk of round `round`. `None` when that round's
    /// range is fully claimed.
    #[inline]
    pub fn next_chunk(&self, round: usize) -> Option<Range<usize>> {
        self.round(round).next_chunk()
    }

    /// Access a specific round's cursor.
    #[inline]
    pub fn round(&self, round: usize) -> &PlanCursor {
        assert!(round < self.max_rounds, "round {round} out of range");
        self.stats.record_round(round);
        &self.block(round / ROUND_BLOCK).cursors[round % ROUND_BLOCK]
    }
}

impl Drop for RoundCursors {
    fn drop(&mut self) {
        for p in self.spine.iter() {
            let ptr = p.load(Ordering::Acquire);
            if !ptr.is_null() {
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunks::ChunkPolicy;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fixed(len: usize, chunk: usize) -> ChunkPlan {
        ChunkPlan::fixed(len, chunk)
    }

    #[test]
    fn rounds_are_independent() {
        let rc = RoundCursors::new(fixed(10, 4), 3);
        // Drain round 0 fully.
        while rc.next_chunk(0).is_some() {}
        // Round 1 is untouched.
        assert_eq!(rc.next_chunk(1), Some(0..4));
        assert_eq!(rc.max_rounds(), 3);
    }

    #[test]
    fn threads_can_occupy_different_rounds() {
        // A fast thread drains rounds 0..k while a "slow" one is still in
        // round 0; nothing blocks.
        let rc = RoundCursors::new(fixed(100, 8), 5);
        let slow_got = rc.next_chunk(0); // slow thread claims and stalls
        assert!(slow_got.is_some());
        std::thread::scope(|s| {
            let rc = &rc;
            s.spawn(move || {
                for round in 0..5 {
                    while rc.next_chunk(round).is_some() {}
                }
            });
        });
        // Fast thread finished all rounds; slow thread's claim is still
        // its own — no index was handed out twice within round 0.
        assert!(rc.round(0).is_drained());
    }

    #[test]
    fn full_coverage_per_round_under_contention() {
        let rc = RoundCursors::new(fixed(5000, 64), 2);
        let hits = (0..5000).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rc = &rc;
                let hits = &hits;
                s.spawn(move || {
                    for round in 0..2 {
                        while let Some(r) = rc.next_chunk(round) {
                            for i in r {
                                hits[i].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 2));
    }

    #[test]
    fn allocation_is_lazy_beyond_first_block() {
        // The seed eagerly built all 500 cursors per run; now only the
        // first block exists until a thread actually reaches deeper.
        let rc = RoundCursors::new(fixed(100, 8), 500);
        assert_eq!(rc.allocated_blocks(), 1);
        assert_eq!(rc.peak_rounds(), 0);
        rc.next_chunk(3);
        assert_eq!(rc.allocated_blocks(), 1);
        assert_eq!(rc.peak_rounds(), 4);
        rc.next_chunk(ROUND_BLOCK); // first round of block 1
        assert_eq!(rc.allocated_blocks(), 2);
        rc.next_chunk(499); // deep round: only its block materializes
        assert_eq!(rc.allocated_blocks(), 3);
        assert_eq!(rc.peak_rounds(), 500);
    }

    #[test]
    fn concurrent_deep_round_growth_is_safe() {
        let rc = RoundCursors::new(fixed(10_000, 16), 256);
        let claimed = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let rc = &rc;
                let claimed = &claimed;
                s.spawn(move || {
                    // Everyone races to the same fresh blocks.
                    for round in (0..256).step_by(17) {
                        if let Some(r) = rc.next_chunk(round) {
                            claimed.fetch_add(r.len(), Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(claimed.load(Ordering::Relaxed) > 0);
        // Every stepped-on round claims from one shared cursor: block
        // count is bounded by the spine length, nothing leaked or torn.
        assert!(rc.allocated_blocks() <= rc.spine.len());
    }

    #[test]
    fn guided_plan_rounds_share_boundaries() {
        let plan = ChunkPolicy::Guided { min: 8 }.plan(1000, 4);
        let rc = RoundCursors::new(plan, 3);
        // Every round starts from the same precompiled boundary table.
        let firsts: Vec<_> = (0..3).map(|round| rc.next_chunk(round).unwrap()).collect();
        assert_eq!(firsts[0], firsts[1]);
        assert_eq!(firsts[1], firsts[2]);
    }

    #[test]
    fn reset_rewinds_all_materialized_rounds() {
        let mut rc = RoundCursors::new(fixed(20, 4), 64);
        while rc.next_chunk(0).is_some() {}
        rc.next_chunk(ROUND_BLOCK); // materialize block 1
        assert_eq!(rc.allocated_blocks(), 2);
        assert!(rc.round(0).is_drained());
        rc.reset();
        assert_eq!(rc.peak_rounds(), 0);
        assert_eq!(rc.next_chunk(0), Some(0..4), "round 0 claimable again");
        assert_eq!(rc.next_chunk(ROUND_BLOCK), Some(0..4));
        assert_eq!(rc.allocated_blocks(), 2, "blocks kept for reuse");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn round_beyond_max_rejected() {
        let rc = RoundCursors::new(fixed(10, 4), 2);
        rc.next_chunk(2);
    }
}
