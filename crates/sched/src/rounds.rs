//! Per-iteration cursors implementing OpenMP `for nowait` semantics.
//!
//! In the paper's lock-free algorithms, the PageRank iteration loop is a
//! sequence of work-sharing constructs with `nowait`: all running threads
//! cooperatively drain iteration *i*'s vertex range, but a thread that
//! finishes early proceeds to iteration *i+1* immediately — threads can
//! legitimately occupy **different iterations at the same time** (that is
//! what makes the algorithm barrier-free, Figure 2(b)).
//!
//! [`RoundCursors`] realizes this with one [`ChunkCursor`] per iteration,
//! pre-allocated up to `MAX_ITERATIONS` (500 in the paper, §5.1.2), so no
//! allocation or synchronization beyond a `fetch_add` happens on the hot
//! path. Memory cost is one `AtomicUsize` + length per round — trivial.

use crate::chunks::ChunkCursor;
use std::ops::Range;

/// A stack of per-iteration chunk cursors over the same index range.
#[derive(Debug)]
pub struct RoundCursors {
    rounds: Vec<ChunkCursor>,
}

impl RoundCursors {
    /// Create cursors for `max_rounds` iterations over `0..len`.
    pub fn new(len: usize, max_rounds: usize) -> Self {
        let rounds = (0..max_rounds).map(|_| ChunkCursor::new(len)).collect();
        RoundCursors { rounds }
    }

    /// Number of pre-allocated rounds.
    pub fn max_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Claim the next chunk of round `round`. `None` when that round's
    /// range is fully claimed.
    #[inline]
    pub fn next_chunk(&self, round: usize, chunk_size: usize) -> Option<Range<usize>> {
        self.rounds[round].next_chunk(chunk_size)
    }

    /// Access a specific round's cursor.
    #[inline]
    pub fn round(&self, round: usize) -> &ChunkCursor {
        &self.rounds[round]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn rounds_are_independent() {
        let rc = RoundCursors::new(10, 3);
        // Drain round 0 fully.
        while rc.next_chunk(0, 4).is_some() {}
        // Round 1 is untouched.
        assert_eq!(rc.next_chunk(1, 4), Some(0..4));
        assert_eq!(rc.max_rounds(), 3);
    }

    #[test]
    fn threads_can_occupy_different_rounds() {
        // A fast thread drains rounds 0..k while a "slow" one is still in
        // round 0; nothing blocks.
        let rc = RoundCursors::new(100, 5);
        let slow_got = rc.next_chunk(0, 8); // slow thread claims and stalls
        assert!(slow_got.is_some());
        std::thread::scope(|s| {
            let rc = &rc;
            s.spawn(move || {
                for round in 0..5 {
                    while rc.next_chunk(round, 8).is_some() {}
                }
            });
        });
        // Fast thread finished all rounds; slow thread's claim is still
        // its own — no index was handed out twice within round 0.
        assert!(rc.round(0).is_drained());
    }

    #[test]
    fn full_coverage_per_round_under_contention() {
        let rc = RoundCursors::new(5000, 2);
        let hits = (0..5000).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rc = &rc;
                let hits = &hits;
                s.spawn(move || {
                    while let Some(r) = rc.next_chunk(1, 64) {
                        for i in r {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
