//! Small measurement utilities shared by the experiment harnesses.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Concurrent high-water mark of the rounds a run actually touched.
///
/// Dynamic runs converge in a handful of rounds while `max_iterations`
/// is 500; [`crate::rounds::RoundCursors`] uses this to size its lazy
/// block allocation and to report how deep a run really went.
#[derive(Debug, Default)]
pub struct RoundStats {
    /// `1 + highest round index recorded`; 0 = no round touched yet.
    peak: AtomicUsize,
}

impl RoundStats {
    /// Fresh tracker with no rounds recorded.
    pub fn new() -> Self {
        RoundStats::default()
    }

    /// Record that `round` was entered. Sits on the chunk-claim hot
    /// path, so the common case (round already recorded) is a single
    /// relaxed load; the `fetch_max` RMW only fires the first few times
    /// a new deepest round is entered.
    #[inline]
    pub fn record_round(&self, round: usize) {
        if self.peak.load(Ordering::Relaxed) <= round {
            self.peak.fetch_max(round + 1, Ordering::Relaxed);
        }
    }

    /// Number of rounds touched so far (= 1 + highest recorded index).
    pub fn peak_rounds(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Forget all recorded rounds (between-runs workspace reuse).
    pub fn reset(&mut self) {
        *self.peak.get_mut() = 0;
    }
}

/// Geometric mean of strictly positive samples; the paper averages
/// runtimes across graphs this way (§5.1.5). Returns `None` for empty or
/// non-positive input.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Geometric mean of durations (seconds domain).
pub fn geometric_mean_durations(ds: &[Duration]) -> Option<Duration> {
    let secs: Vec<f64> = ds.iter().map(|d| d.as_secs_f64()).collect();
    geometric_mean(&secs).map(Duration::from_secs_f64)
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Maximum of an f64 slice (NaN-free input assumed).
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Run `f` repeatedly and return the minimum wall time over `reps`
/// repetitions along with the last result. Minimum-of-N is the standard
/// noise-rejection estimator for short parallel kernels.
pub fn min_time_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    assert!(reps > 0);
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let r = f();
        best = best.min(t0.elapsed());
        last = Some(r);
    }
    (best, last.unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basic() {
        let g = geometric_mean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn geometric_mean_durations_basic() {
        let g =
            geometric_mean_durations(&[Duration::from_secs(1), Duration::from_secs(4)]).unwrap();
        assert!((g.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_max() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(max(&[1.0, 5.0, 3.0]), Some(5.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn min_time_of_runs_all_reps() {
        let mut count = 0;
        let (_, r) = min_time_of(5, || {
            count += 1;
            count
        });
        assert_eq!(count, 5);
        assert_eq!(r, 5);
    }
}
