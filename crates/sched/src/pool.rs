//! Persistent worker pool — spawn the team once, park between runs.
//!
//! [`crate::executor::run_threads`] spawns and joins a fresh OS thread
//! team for **every** call. A single PageRank run amortizes that, but
//! the experiment harnesses execute thousands of short dynamic-update
//! runs per process (the Figure 7 batch-fraction sweep alone runs every
//! approach on every graph at seven fractions), and on small affected
//! sets the spawn/join cost rivals the kernel itself.
//!
//! [`WorkerPool`] keeps one team alive for the whole process: workers
//! are spawned on first use (and when a run requests more threads than
//! ever before), park between jobs, and receive borrowed closures via a
//! scoped handoff — the same `f(thread_id) -> R` contract as
//! `run_threads`, with **zero** thread creation on the hot path.
//!
//! ## Handoff protocol
//!
//! A job is a stack-allocated header holding a type-erased pointer to
//! the caller's closure, a countdown of unfinished workers, and the
//! submitting thread's handle. Submission stores the header pointer
//! into each participating worker's slot (release) and unparks it; the
//! worker swaps the pointer out (acquire), runs its share under
//! `catch_unwind`, decrements the countdown, and — if it was last —
//! unparks the submitter. The submitter runs thread 0's share itself,
//! then parks until the countdown reaches zero, so the borrowed closure
//! provably outlives every use (the same guarantee `std::thread::scope`
//! gives, without the spawn).
//!
//! Worker panics are caught, stashed in the job header, and re-raised
//! on the submitting thread after all workers finish — identical
//! fail-fast behavior to `run_threads`, and the pool stays usable
//! afterwards. The paper's crash-stop fault model does **not** use
//! panics (a crashed thread returns normally), so fault experiments are
//! unaffected.
//!
//! Runs are serialized on an internal lock: the pool models the paper's
//! "one team per process" OpenMP runtime, not a general task scheduler.
//! A nested `run` from inside another run — whether from a worker's
//! share or from the submitter's own thread-0 share — falls back to
//! spawning scoped threads rather than deadlocking on that lock.

use crate::executor::run_threads;
use parking_lot::Mutex;
use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{self, JoinHandle, Thread};

/// How an engine obtains its thread team for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Spawn and join a fresh scoped team per run (the seed behavior;
    /// simplest, and what the paper's per-run timing model assumes).
    #[default]
    Spawn,
    /// Dispatch onto the process-wide persistent [`WorkerPool`]: no
    /// spawn/join on the hot path, threads stay warm across runs.
    Pool,
}

impl ExecMode {
    /// Run `f(thread_id)` on `num_threads` threads under this mode and
    /// collect the per-thread results in thread-id order.
    pub fn run<R, F>(self, num_threads: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match self {
            ExecMode::Spawn => run_threads(num_threads, f),
            ExecMode::Pool => global_pool().run(num_threads, f),
        }
    }
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecMode::Spawn => "spawn",
            ExecMode::Pool => "pool",
        })
    }
}

impl std::str::FromStr for ExecMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "spawn" => Ok(ExecMode::Spawn),
            "pool" => Ok(ExecMode::Pool),
            other => Err(format!("unknown executor: {other} (spawn|pool)")),
        }
    }
}

/// The process-wide pool used by [`ExecMode::Pool`]. Created empty on
/// first use; workers are spawned lazily as runs request them and live
/// until process exit.
pub fn global_pool() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(WorkerPool::new)
}

thread_local! {
    /// Set inside pool workers (permanently) and on submitting threads
    /// (for the duration of a `run`) so a nested `run` — from a worker's
    /// share *or* from the submitter's own thread-0 share — detects it
    /// would deadlock on the submission lock and spawns instead.
    static IN_POOL_CONTEXT: Cell<bool> = const { Cell::new(false) };
}

/// Unwind-safe reset of the submitter's [`IN_POOL_CONTEXT`] flag: `run`
/// can exit by `resume_unwind`, which must not leave the flag stuck.
struct SubmitterGuard;

impl SubmitterGuard {
    fn enter() -> Self {
        IN_POOL_CONTEXT.with(|c| c.set(true));
        SubmitterGuard
    }
}

impl Drop for SubmitterGuard {
    fn drop(&mut self) {
        IN_POOL_CONTEXT.with(|c| c.set(false));
    }
}

/// Type-erased job header, stack-allocated in [`WorkerPool::run`] and
/// borrowed by workers strictly until `remaining` hits zero.
struct Job {
    /// Trampoline restoring the concrete closure type.
    run: unsafe fn(*const (), usize),
    /// The caller's wrapped closure, lifetime-erased. Valid until
    /// `remaining` reaches 0 — the submitter blocks until then.
    data: *const (),
    /// Workers still running (excludes the submitter's own share).
    remaining: AtomicUsize,
    /// Submitting thread, unparked by the last finishing worker.
    caller: Thread,
    /// First worker panic, re-raised on the submitter.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

unsafe impl Sync for Job {}

unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), thread_id: usize) {
    let f = unsafe { &*(data as *const F) };
    f(thread_id);
}

/// Monomorphize [`trampoline`] for an unnameable closure type.
fn trampoline_for<F: Fn(usize) + Sync>(_f: &F) -> unsafe fn(*const (), usize) {
    trampoline::<F>
}

/// One worker's mailbox: a single job pointer slot plus shutdown flag.
struct Slot {
    job: AtomicPtr<Job>,
    shutdown: AtomicBool,
}

struct Worker {
    slot: Arc<Slot>,
    /// Handle used to unpark the worker; `None` only transiently in Drop.
    handle: Option<JoinHandle<()>>,
}

/// A persistent team of parked worker threads (see module docs).
pub struct WorkerPool {
    /// Serializes runs and guards lazy worker growth. Worker `i` in the
    /// vec executes thread id `i + 1`; thread 0 is the submitter.
    inner: Mutex<Vec<Worker>>,
}

impl WorkerPool {
    /// Create an empty pool; workers are spawned on demand by `run`.
    pub fn new() -> Self {
        WorkerPool {
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Number of live workers (grows monotonically, never shrinks).
    pub fn spawned_workers(&self) -> usize {
        self.inner.lock().len()
    }

    /// Run `f(thread_id)` for ids `0..num_threads` and collect results
    /// in id order. Thread 0 runs on the calling thread; ids `1..` run
    /// on pool workers. Semantics match
    /// [`run_threads`]: worker panics
    /// propagate to the caller, and `num_threads == 1` runs inline.
    pub fn run<R, F>(&self, num_threads: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        assert!(num_threads > 0, "need at least one thread");
        if num_threads == 1 {
            return vec![f(0)];
        }
        if IN_POOL_CONTEXT.with(|c| c.get()) {
            // Nested use — from a worker's share or from the submitter's
            // own thread-0 share — would deadlock on the run lock;
            // degrade to the scoped-spawn executor.
            return run_threads(num_threads, f);
        }
        let _submitting = SubmitterGuard::enter();

        // Per-thread result slots; slot t is written only by thread t.
        let slots: Vec<ResultSlot<R>> = (0..num_threads).map(|_| ResultSlot::new()).collect();
        let call = |t: usize| {
            let r = f(t);
            unsafe { slots[t].put(r) };
        };

        let mut inner = self.inner.lock();
        Self::ensure_workers(&mut inner, num_threads - 1);

        let job = Job {
            run: trampoline_for(&call),
            data: &call as *const _ as *const (),
            remaining: AtomicUsize::new(num_threads - 1),
            caller: thread::current(),
            panic: Mutex::new(None),
        };
        let job_ptr = &job as *const Job as *mut Job;
        for w in &inner[..num_threads - 1] {
            w.slot.job.store(job_ptr, Ordering::Release);
            w.handle
                .as_ref()
                .expect("worker handle present outside Drop")
                .thread()
                .unpark();
        }

        // Thread 0's share runs here; a panic is deferred until every
        // worker has finished with the borrowed closure.
        let own = catch_unwind(AssertUnwindSafe(|| call(0)));
        while job.remaining.load(Ordering::Acquire) > 0 {
            thread::park();
        }
        // All workers are done with `call`/`job`; safe to unwind now.
        if let Some(payload) = job.panic.lock().take() {
            resume_unwind(payload);
        }
        if let Err(payload) = own {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(t, s)| {
                s.into_inner()
                    .unwrap_or_else(|| panic!("pool thread {t} produced no result"))
            })
            .collect()
    }

    fn ensure_workers(workers: &mut Vec<Worker>, want: usize) {
        while workers.len() < want {
            let id = workers.len() + 1;
            let slot = Arc::new(Slot {
                job: AtomicPtr::new(ptr::null_mut()),
                shutdown: AtomicBool::new(false),
            });
            let wslot = Arc::clone(&slot);
            let handle = thread::Builder::new()
                .name(format!("lfpr-pool-{id}"))
                .spawn(move || worker_loop(wslot, id))
                .expect("failed to spawn pool worker");
            workers.push(Worker {
                slot,
                handle: Some(handle),
            });
        }
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let mut workers = std::mem::take(&mut *self.inner.lock());
        for w in &workers {
            w.slot.shutdown.store(true, Ordering::Release);
        }
        for w in &mut workers {
            if let Some(h) = w.handle.take() {
                h.thread().unpark();
                let _ = h.join();
            }
        }
    }
}

fn worker_loop(slot: Arc<Slot>, thread_id: usize) {
    IN_POOL_CONTEXT.with(|c| c.set(true));
    loop {
        let job_ptr = slot.job.swap(ptr::null_mut(), Ordering::Acquire);
        if job_ptr.is_null() {
            if slot.shutdown.load(Ordering::Acquire) {
                return;
            }
            thread::park();
            continue;
        }
        // The submitter keeps `job` (and the closure it points to) alive
        // until `remaining` reaches zero, which this worker signals only
        // after its last use of either — see the decrement below.
        let job = unsafe { &*job_ptr };
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
            (job.run)(job.data, thread_id)
        }));
        if let Err(payload) = outcome {
            let mut p = job.panic.lock();
            if p.is_none() {
                *p = Some(payload);
            }
        }
        // Copy what the completion signal needs *before* the decrement:
        // the moment `remaining` hits zero the submitter may free `job`.
        let caller = job.caller.clone();
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            caller.unpark();
        }
    }
}

/// One thread's result cell; index `t` is written exclusively by thread
/// `t` while the submitter blocks, so the unsynchronized interior write
/// is race-free (the `remaining` countdown orders it before the read).
struct ResultSlot<R>(UnsafeCell<Option<R>>);

unsafe impl<R: Send> Sync for ResultSlot<R> {}

impl<R> ResultSlot<R> {
    fn new() -> Self {
        ResultSlot(UnsafeCell::new(None))
    }

    /// # Safety
    /// Must be called at most once, by the single thread owning this slot.
    unsafe fn put(&self, r: R) {
        unsafe { *self.0.get() = Some(r) };
    }

    fn into_inner(self) -> Option<R> {
        self.0.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_thread_id_order() {
        let pool = WorkerPool::new();
        let out = pool.run(8, |t| t * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(pool.spawned_workers(), 7);
    }

    #[test]
    fn single_thread_runs_inline_without_workers() {
        let pool = WorkerPool::new();
        let tid = thread::current().id();
        let same = pool.run(1, move |_| thread::current().id() == tid);
        assert_eq!(same, vec![true]);
        assert_eq!(pool.spawned_workers(), 0);
    }

    #[test]
    fn workers_are_reused_not_respawned() {
        let pool = WorkerPool::new();
        for i in 0..50u64 {
            let sum = AtomicU64::new(0);
            pool.run(4, |t| {
                sum.fetch_add(i + t as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 4 * i + 6);
        }
        assert_eq!(pool.spawned_workers(), 3);
    }

    #[test]
    fn pool_grows_when_asked_for_more_threads() {
        let pool = WorkerPool::new();
        pool.run(2, |_| ());
        assert_eq!(pool.spawned_workers(), 1);
        pool.run(6, |_| ());
        assert_eq!(pool.spawned_workers(), 5);
        pool.run(3, |_| ()); // smaller run reuses a subset
        assert_eq!(pool.spawned_workers(), 5);
    }

    #[test]
    fn workers_can_borrow_stack_data() {
        let pool = WorkerPool::new();
        let data = [1u64, 2, 3, 4];
        let doubled = pool.run(4, |t| data[t] * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |t| {
                if t == 2 {
                    panic!("boom from worker");
                }
                t
            })
        }));
        assert!(caught.is_err(), "worker panic must reach the submitter");
        // The pool must still work after a propagated panic.
        assert_eq!(pool.run(4, |t| t), vec![0, 1, 2, 3]);
    }

    #[test]
    fn submitter_panic_waits_for_workers_then_propagates() {
        let pool = WorkerPool::new();
        let finished = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |t| {
                if t == 0 {
                    panic!("boom from submitter share");
                }
                thread::sleep(std::time::Duration::from_millis(20));
                finished.fetch_add(1, Ordering::SeqCst);
            })
        }));
        assert!(caught.is_err());
        // Workers must have completed before the unwind (the closure
        // was still borrowed): all 3 non-submitter shares finished.
        assert_eq!(finished.load(Ordering::SeqCst), 3);
        assert_eq!(pool.run(2, |t| t), vec![0, 1]);
    }

    #[test]
    fn concurrent_submitters_serialize_safely() {
        let pool = Arc::new(WorkerPool::new());
        let total = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = &total;
                s.spawn(move || {
                    for _ in 0..25 {
                        pool.run(3, |t| {
                            total.fetch_add(t as u64 + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        // 4 submitters × 25 runs × (1+2+3)
        assert_eq!(total.load(Ordering::Relaxed), 4 * 25 * 6);
    }

    #[test]
    fn nested_run_from_worker_falls_back_to_spawn() {
        let pool = WorkerPool::new();
        let out = pool.run(2, |t| {
            if t == 1 {
                // Would deadlock on the run lock without the fallback.
                global_pool_free_nested_sum()
            } else {
                0
            }
        });
        assert_eq!(out[1], 3);
    }

    fn global_pool_free_nested_sum() -> usize {
        // Any pool (not just the global one) must detect worker context.
        let inner = WorkerPool::new();
        inner.run(3, |t| t).into_iter().sum()
    }

    #[test]
    fn nested_run_from_submitter_share_falls_back_to_spawn() {
        // Thread 0 of a run executes on the submitting thread, which
        // holds the run lock — a nested run there must spawn, not
        // self-deadlock.
        let pool = WorkerPool::new();
        let out = pool.run(2, |t| {
            if t == 0 {
                pool.run(3, |u| u + 1).into_iter().sum()
            } else {
                0
            }
        });
        assert_eq!(out[0], 6);
        // And the flag must reset: a fresh top-level run still pools.
        assert_eq!(pool.run(2, |t| t), vec![0, 1]);
    }

    #[test]
    fn exec_mode_parsing_and_dispatch() {
        assert_eq!("spawn".parse::<ExecMode>().unwrap(), ExecMode::Spawn);
        assert_eq!("pool".parse::<ExecMode>().unwrap(), ExecMode::Pool);
        assert!("fibers".parse::<ExecMode>().is_err());
        assert_eq!(ExecMode::default(), ExecMode::Spawn);
        assert_eq!(ExecMode::Spawn.to_string(), "spawn");
        assert_eq!(ExecMode::Pool.to_string(), "pool");
        for mode in [ExecMode::Spawn, ExecMode::Pool] {
            let out = mode.run(4, |t| t + 1);
            assert_eq!(out, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new();
        pool.run(4, |t| t);
        drop(pool); // must not hang or leak panics
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn zero_threads_rejected() {
        WorkerPool::new().run(0, |_| ());
    }
}
