//! # lfpr-sched — lock-free scheduling, instrumented barriers, faults
//!
//! This crate is the Rust substitute for the OpenMP runtime machinery the
//! paper relies on:
//!
//! | OpenMP construct | This crate |
//! |------------------|-----------|
//! | `#pragma omp parallel` | [`executor::run_threads`] (scoped threads) |
//! | `schedule(dynamic, 2048)` | [`chunks::ChunkCursor`] (atomic fetch-add) |
//! | `for ... nowait` across iterations | [`rounds::RoundCursors`] (one cursor per iteration; fast threads run ahead) |
//! | implicit iteration barrier | [`barrier::InstrumentedBarrier`] (sense-reversing, wait-time accounting, stall detection) |
//!
//! plus the **fault-injection framework** of §5.1.6: random thread delays
//! (a per-vertex sleep probability, uniform across threads) and the
//! crash-stop model (a per-thread crashed flag that deterministically
//! stops the thread at a random point during computation).
//!
//! Everything on the lock-free path uses only atomic fetch-add/load/store —
//! no locks, no blocking — so a stalled thread can never prevent another
//! thread from acquiring work. The barrier (used only by the `*BB`
//! baselines) is intentionally blocking; its stall detector exists so the
//! crash experiments (Figure 9) can report "did not finish" instead of
//! hanging the harness.

pub mod barrier;
pub mod chunks;
pub mod executor;
pub mod fault;
pub mod rounds;
pub mod stats;

pub use barrier::{BarrierOutcome, BarrierStall, InstrumentedBarrier};
pub use chunks::ChunkCursor;
pub use executor::run_threads;
pub use fault::{CrashSpec, DelaySpec, FaultAction, FaultPlan, ThreadFaults};
pub use rounds::RoundCursors;
