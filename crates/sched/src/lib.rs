//! # lfpr-sched — lock-free scheduling, instrumented barriers, faults
//!
//! This crate is the Rust substitute for the OpenMP runtime machinery the
//! paper relies on:
//!
//! | OpenMP construct | This crate |
//! |------------------|-----------|
//! | `#pragma omp parallel` | [`executor::run_threads`] (scoped threads) or [`pool::WorkerPool`] (persistent parked team, zero spawn on the hot path) |
//! | `schedule(dynamic, 2048)` | [`chunks::ChunkCursor`] (atomic fetch-add) |
//! | `schedule(guided)` / degree-aware splitting | [`chunks::ChunkPolicy`] → precompiled [`chunks::ChunkPlan`], claimed wait-free by [`chunks::PlanCursor`] |
//! | `for ... nowait` across iterations | [`rounds::RoundCursors`] (one cursor per iteration; fast threads run ahead) |
//! | implicit iteration barrier | [`barrier::InstrumentedBarrier`] (sense-reversing, wait-time accounting, stall detection) |
//!
//! plus the **fault-injection framework** of §5.1.6: random thread delays
//! (a per-vertex sleep probability, uniform across threads) and the
//! crash-stop model (a per-thread crashed flag that deterministically
//! stops the thread at a random point during computation).
//!
//! Everything on the lock-free path uses only atomic fetch-add/load/store —
//! no locks, no blocking — so a stalled thread can never prevent another
//! thread from acquiring work. The barrier (used only by the `*BB`
//! baselines) is intentionally blocking; its stall detector exists so the
//! crash experiments (Figure 9) can report "did not finish" instead of
//! hanging the harness.

pub mod barrier;
pub mod chunks;
pub mod executor;
pub mod fault;
pub mod pool;
pub mod rounds;
pub mod stats;

pub use barrier::{BarrierOutcome, BarrierStall, InstrumentedBarrier};
pub use chunks::{ChunkCursor, ChunkPlan, ChunkPolicy, PlanCursor};
pub use executor::run_threads;
pub use fault::{CrashSpec, DelaySpec, FaultAction, FaultPlan, ThreadFaults};
pub use pool::{global_pool, ExecMode, WorkerPool};
pub use rounds::RoundCursors;

/// A complete per-run scheduling choice: how the vertex range is cut
/// into chunks ([`ChunkPolicy`]) and where the thread team comes from
/// ([`ExecMode`]). The default — `Fixed(2048)` chunks on freshly
/// spawned scoped threads — reproduces the paper's configuration
/// (§5.1.2) exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Schedule {
    /// Chunk-boundary policy for the dynamic vertex loops.
    pub policy: ChunkPolicy,
    /// Thread-team executor for the parallel regions.
    pub executor: ExecMode,
}

impl Schedule {
    /// The paper-fidelity schedule: spawn-per-run + fixed 2048 chunks.
    pub fn paper() -> Self {
        Schedule::default()
    }

    /// Persistent pool + the given chunk policy — the fast path for
    /// benchmark processes running many updates.
    pub fn pooled(policy: ChunkPolicy) -> Self {
        Schedule {
            policy,
            executor: ExecMode::Pool,
        }
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}+{}", self.executor, self.policy)
    }
}
