//! Scoped thread-team execution — the `#pragma omp parallel` substitute.
//!
//! [`run_threads`] spawns a fixed team of OS threads and runs the same
//! closure on each, passing the thread id (0-based, like
//! `omp_get_thread_num()`). It returns each thread's result in id order.
//! Scoped threads let workers borrow the graph snapshot and shared atomic
//! vectors without `Arc` churn.

/// Run `f(thread_id)` on `num_threads` scoped threads and collect the
/// per-thread results in thread-id order.
///
/// Panics in workers propagate to the caller (fail fast in tests); the
/// crash-stop model of the fault framework does **not** use panics — a
/// crashed thread returns normally after setting its flag.
pub fn run_threads<R, F>(num_threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(num_threads > 0, "need at least one thread");
    if num_threads == 1 {
        // Run inline: keeps single-threaded baselines (Figure 6, 1-thread
        // case) free of spawn overhead and trivially deterministic.
        return vec![f(0)];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..num_threads)
            .map(|t| {
                let f = &f;
                s.spawn(move || f(t))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// The number of hardware threads available, used as the default team
/// size (the paper uses one thread per core, §5.1.2).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_thread_id_order() {
        let out = run_threads(8, |t| t * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_thread_runs_inline() {
        let tid = std::thread::current().id();
        let same = run_threads(1, move |_| std::thread::current().id() == tid);
        assert_eq!(same, vec![true]);
    }

    #[test]
    fn all_threads_actually_run() {
        let counter = AtomicUsize::new(0);
        run_threads(16, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn workers_can_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let sums = run_threads(4, |t| data[t] * 2);
        assert_eq!(sums, vec![2, 4, 6, 8]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn zero_threads_rejected() {
        run_threads(0, |_| ());
    }
}
