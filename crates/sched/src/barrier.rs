//! Generation-counted barrier with wait-time accounting and stall
//! detection — the instrumented stand-in for OpenMP's implicit iteration
//! barrier.
//!
//! Two features beyond `std::sync::Barrier` are required by the paper's
//! experiments:
//!
//! 1. **Wait-time accounting** (Figure 1): the per-thread time spent
//!    blocked at the barrier is accumulated so the harness can report
//!    "thread wait time at barriers can make up to 73% of total execution
//!    time".
//! 2. **Stall detection** (Figures 3, 9): under the crash-stop model a
//!    barrier-based algorithm deadlocks — *"DFBB fails to complete the
//!    computation even if a single thread crashes"*. Real deadlock would
//!    hang the harness, so `wait` takes a timeout and reports
//!    [`BarrierStall`], which the `*BB` algorithms convert into a
//!    "did not finish" result.
//!
//! The barrier also supports **deregistration**: a thread that crashes
//! *between* barrier episodes (it will never arrive again) can be counted
//! out, which models OpenMP threads exiting the team. The paper's
//! experiments crash threads mid-iteration, in which case the remaining
//! threads stall — exactly the behavior reproduced here.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// What a successful barrier wait returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// This thread was the last to arrive and released the others.
    Leader,
    /// This thread waited and was released by the leader.
    Follower,
}

/// Error: the barrier did not release within the stall timeout — some
/// participant has crashed or is indefinitely delayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierStall {
    /// How long this thread waited before giving up.
    pub waited: Duration,
    /// Barrier generation in which the stall occurred.
    pub generation: u64,
}

impl std::fmt::Display for BarrierStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "barrier stalled in generation {} after {:?} (participant crashed or delayed)",
            self.generation, self.waited
        )
    }
}

impl std::error::Error for BarrierStall {}

struct State {
    arrived: usize,
    parties: usize,
    generation: u64,
}

/// A reusable barrier for a fixed team of threads, with per-thread wait
/// accounting and stall detection.
pub struct InstrumentedBarrier {
    state: Mutex<State>,
    cv: Condvar,
    /// Cumulative nanoseconds each thread spent blocked here.
    wait_ns: Vec<AtomicU64>,
    stall_timeout: Duration,
}

impl InstrumentedBarrier {
    /// A barrier for `parties` threads with the given stall timeout.
    pub fn new(parties: usize, stall_timeout: Duration) -> Self {
        assert!(parties > 0);
        InstrumentedBarrier {
            state: Mutex::new(State {
                arrived: 0,
                parties,
                generation: 0,
            }),
            cv: Condvar::new(),
            wait_ns: (0..parties).map(|_| AtomicU64::new(0)).collect(),
            stall_timeout,
        }
    }

    /// Block until all registered parties arrive. `thread_id` indexes the
    /// wait-time account. Returns [`BarrierStall`] if the barrier does not
    /// release within the stall timeout.
    pub fn wait(&self, thread_id: usize) -> Result<BarrierOutcome, BarrierStall> {
        let start = Instant::now();
        let mut st = self.state.lock();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived >= st.parties {
            st.arrived = 0;
            st.generation += 1;
            drop(st);
            self.cv.notify_all();
            self.record_wait(thread_id, start);
            return Ok(BarrierOutcome::Leader);
        }
        loop {
            let timed_out = self
                .cv
                .wait_until(&mut st, Instant::now() + self.stall_timeout)
                .timed_out();
            if st.generation != gen {
                drop(st);
                self.record_wait(thread_id, start);
                return Ok(BarrierOutcome::Follower);
            }
            if timed_out {
                // Withdraw our arrival so a later retry (or deregister)
                // leaves the count consistent.
                st.arrived -= 1;
                let generation = st.generation;
                drop(st);
                let waited = start.elapsed();
                self.record_wait(thread_id, start);
                return Err(BarrierStall { waited, generation });
            }
        }
    }

    /// Remove one party (a thread that exited the team cleanly). Wakes
    /// waiters if the departure completes the current generation.
    pub fn deregister(&self) {
        let mut st = self.state.lock();
        assert!(st.parties > 0);
        st.parties -= 1;
        if st.parties > 0 && st.arrived >= st.parties {
            st.arrived = 0;
            st.generation += 1;
            drop(st);
            self.cv.notify_all();
        }
    }

    /// Cumulative time thread `thread_id` has spent blocked at this
    /// barrier.
    pub fn wait_time(&self, thread_id: usize) -> Duration {
        Duration::from_nanos(self.wait_ns[thread_id].load(Ordering::Relaxed))
    }

    /// Sum of all threads' wait times.
    pub fn total_wait_time(&self) -> Duration {
        self.wait_ns
            .iter()
            .map(|w| Duration::from_nanos(w.load(Ordering::Relaxed)))
            .sum()
    }

    /// Maximum single-thread wait time.
    pub fn max_wait_time(&self) -> Duration {
        self.wait_ns
            .iter()
            .map(|w| Duration::from_nanos(w.load(Ordering::Relaxed)))
            .max()
            .unwrap_or_default()
    }

    fn record_wait(&self, thread_id: usize, start: Instant) {
        let ns = start.elapsed().as_nanos() as u64;
        self.wait_ns[thread_id].fetch_add(ns, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn releases_all_parties() {
        let b = InstrumentedBarrier::new(4, Duration::from_secs(5));
        let phase = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = &b;
                let phase = &phase;
                s.spawn(move || {
                    for round in 0..10 {
                        // All threads must observe the same round count at
                        // each barrier episode.
                        assert!(phase.load(Ordering::SeqCst) >= round);
                        b.wait(t).unwrap();
                        phase.fetch_max(round + 1, Ordering::SeqCst);
                        b.wait(t).unwrap();
                    }
                });
            }
        });
        assert_eq!(phase.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn exactly_one_leader_per_generation() {
        let b = InstrumentedBarrier::new(3, Duration::from_secs(5));
        let leaders = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..3 {
                let b = &b;
                let leaders = &leaders;
                s.spawn(move || {
                    if b.wait(t).unwrap() == BarrierOutcome::Leader {
                        leaders.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stall_detected_when_party_never_arrives() {
        let b = InstrumentedBarrier::new(2, Duration::from_millis(50));
        // Only one of two parties arrives.
        let err = b.wait(0).unwrap_err();
        assert!(err.waited >= Duration::from_millis(50));
        assert_eq!(err.generation, 0);
    }

    #[test]
    fn wait_time_is_accounted() {
        let b = InstrumentedBarrier::new(2, Duration::from_secs(5));
        std::thread::scope(|s| {
            let b = &b;
            s.spawn(move || {
                b.wait(0).unwrap();
            });
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                b.wait(1).unwrap();
            });
        });
        // Thread 0 waited ~30ms for thread 1; thread 1 (leader) ~0.
        assert!(
            b.wait_time(0) >= Duration::from_millis(25),
            "{:?}",
            b.wait_time(0)
        );
        assert!(b.wait_time(1) < Duration::from_millis(25));
        assert!(b.total_wait_time() >= b.max_wait_time());
    }

    #[test]
    fn deregister_releases_waiters() {
        let b = InstrumentedBarrier::new(2, Duration::from_secs(5));
        std::thread::scope(|s| {
            let b = &b;
            s.spawn(move || {
                // Arrives and waits; released when the other party
                // deregisters instead of arriving.
                assert!(b.wait(0).is_ok());
            });
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                b.deregister();
            });
        });
    }

    #[test]
    fn reusable_across_generations() {
        let b = InstrumentedBarrier::new(2, Duration::from_secs(5));
        std::thread::scope(|s| {
            for t in 0..2 {
                let b = &b;
                s.spawn(move || {
                    for _ in 0..100 {
                        b.wait(t).unwrap();
                    }
                });
            }
        });
    }
}
