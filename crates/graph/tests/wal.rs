//! Write-ahead-log durability properties: whatever `WalWriter` appends,
//! `read_wal` replays bit-for-bit — and *any* byte-level corruption of
//! the tail (torn write, bit flip, garbage) stops replay cleanly at the
//! last intact record instead of panicking or inventing records.

use lfpr_graph::io::wal::{read_wal, FsyncPolicy, WalRecord, WalWriter};
use lfpr_graph::BatchUpdate;
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_path(stem: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lfpr_waltest_{}_{stem}.log", std::process::id()))
}

fn write_all(path: &PathBuf, records: &[WalRecord]) -> u64 {
    let mut w = WalWriter::create(path, FsyncPolicy::Never).expect("create wal");
    for rec in records {
        w.append(rec).expect("append");
    }
    w.bytes()
}

/// A name in the view-name wire grammar, derived from a seed (no
/// regex strategies in the vendored proptest).
fn gen_name(seed: u64, len: usize) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
    let mut s = String::new();
    s.push(FIRST[(seed % FIRST.len() as u64) as usize] as char);
    let mut x = seed;
    for _ in 1..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s.push(REST[((x >> 33) % REST.len() as u64) as usize] as char);
    }
    s
}

/// A record sequence with all three kinds, view names in the wire
/// grammar, and weights that exercise f64 bit patterns (stored via
/// `to_bits`, so any finite value must survive).
fn records_strategy() -> impl Strategy<Value = Vec<WalRecord>> {
    let edge = (0u32..1_000_000, 0u32..1_000_000);
    let source = (0u32..1_000_000, -1e300f64..1e300);
    let record = (
        (0usize..3, 0u64..1_000_000, 0u64..u64::MAX, 1usize..13),
        prop::collection::vec(edge.clone(), 0..8),
        prop::collection::vec(edge, 0..8),
        prop::collection::vec(source, 0..4),
    )
        .prop_map(
            |((kind, epoch, seed, len), deletions, insertions, sources)| {
                let name = gen_name(seed, len);
                match kind {
                    0 => WalRecord::Commit {
                        epoch,
                        batch: BatchUpdate {
                            deletions,
                            insertions,
                        },
                    },
                    1 => WalRecord::ViewAdd {
                        epoch,
                        name,
                        sources,
                    },
                    _ => WalRecord::ViewDrop { epoch, name },
                }
            },
        );
    prop::collection::vec(record, 0..12)
}

proptest! {
    /// write → read is the identity: every record comes back `==`
    /// (f64 weights survive via `to_bits`), the tail is clean, and the
    /// reported lengths agree with the writer.
    #[test]
    fn write_then_read_replays_bit_exactly(records in records_strategy()) {
        let path = tmp_path("roundtrip");
        let bytes = write_all(&path, &records);
        let replay = read_wal(&path).expect("read wal");
        prop_assert_eq!(replay.truncated, None);
        prop_assert_eq!(replay.valid_len, bytes);
        prop_assert_eq!(replay.total_len, bytes);
        let got: Vec<WalRecord> = replay.records.into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(got, records);
        std::fs::remove_file(&path).ok();
    }

    /// Truncating the file to ANY length — every frame boundary and
    /// every mid-record offset — replays a prefix of the original
    /// records and flags exactly the torn tail, never panicking and
    /// never yielding a record that was not written.
    #[test]
    fn truncation_at_every_byte_stops_cleanly(records in records_strategy()) {
        let path = tmp_path("trunc");
        let bytes = write_all(&path, &records) as usize;
        let full = std::fs::read(&path).expect("read bytes");
        // Sweep all lengths for small logs; sample stride 7 for bigger
        // ones so the property stays fast.
        let stride = if bytes <= 256 { 1 } else { 7 };
        for cut in (0..bytes).step_by(stride) {
            std::fs::write(&path, &full[..cut]).expect("write cut");
            let replay = read_wal(&path).expect("torn wal must still read");
            prop_assert!(replay.valid_len <= cut as u64);
            prop_assert_eq!(replay.total_len, cut as u64);
            if (replay.valid_len as usize) < cut {
                prop_assert!(replay.truncated.is_some(), "cut {cut}: tail not flagged");
            }
            // Replayed records are a prefix of what was written.
            for ((_, got), want) in replay.records.iter().zip(&records) {
                prop_assert_eq!(got, want);
            }
            prop_assert!(replay.records.len() <= records.len());
        }
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any single byte makes replay stop at (or before) the
    /// damaged frame — the checksum catches it — and records before the
    /// flip survive untouched.
    #[test]
    fn bit_flips_are_caught_by_the_checksum(records in records_strategy(), seed in 0usize..997) {
        let path = tmp_path("flip");
        let bytes = write_all(&path, &records) as usize;
        // Flip one byte somewhere past the header.
        let header = 8usize;
        if bytes > header {
            let mut bad = std::fs::read(&path).expect("read bytes");
            let pos = header + seed % (bytes - header);
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).expect("write flipped");
            let replay = read_wal(&path).expect("flipped wal must still read");
            prop_assert!(replay.truncated.is_some(), "flip at {pos} undetected");
            prop_assert!((replay.valid_len as usize) <= pos);
            for ((_, got), want) in replay.records.iter().zip(&records) {
                prop_assert_eq!(got, want);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// `open_append` at the intact length drops the torn tail on disk
    /// and appending continues the log as if the tear never happened.
    #[test]
    fn append_after_torn_tail_heals_the_log(records in records_strategy(), extra in 0usize..40) {
        let path = tmp_path("heal");
        let bytes = write_all(&path, &records) as usize;
        // Tear mid-way through the last frame (or append garbage when
        // the log is empty).
        let mut data = std::fs::read(&path).expect("read bytes");
        if extra == 0 {
            data.truncate(bytes.saturating_sub(3));
        } else {
            data.extend(std::iter::repeat_n(0xA5, extra));
        }
        std::fs::write(&path, &data).expect("write torn");
        let replay = read_wal(&path).expect("read torn");
        let intact = replay.records.len();
        let mut w = WalWriter::open_append(&path, FsyncPolicy::Never, replay.valid_len)
            .expect("open append");
        let appended = WalRecord::ViewDrop {
            epoch: 999,
            name: "healed".into(),
        };
        w.append(&appended).expect("append after heal");
        drop(w);
        let healed = read_wal(&path).expect("read healed");
        prop_assert_eq!(healed.truncated, None);
        prop_assert_eq!(healed.records.len(), intact + 1);
        prop_assert_eq!(&healed.records.last().unwrap().1, &appended);
        std::fs::remove_file(&path).ok();
    }
}

/// A header-only (or empty / garbage-headed) file is not a valid log
/// but must never panic the reader.
#[test]
fn hostile_headers_are_rejected_not_fatal() {
    let path = tmp_path("hostile");
    for bytes in [
        &b""[..],
        &b"LFPR"[..],
        &b"LFPRWAL1"[..],
        &b"NOTAWAL!xxxxxxx"[..],
        &[0xFFu8; 64][..],
    ] {
        std::fs::write(&path, bytes).unwrap();
        let replay = read_wal(&path).expect("hostile header must still read");
        assert!(replay.records.is_empty());
        if bytes.len() != 8 || bytes != b"LFPRWAL1" {
            assert!(replay.truncated.is_some() || bytes.is_empty());
        }
    }
    std::fs::remove_file(&path).ok();
}
