//! Property tests for the incremental delta-snapshot path.
//!
//! The invariant that makes the whole update pipeline trustworthy:
//! `Snapshot::apply_batch` (CSR splicing) is **extensionally identical**
//! to the full rebuild (`DynGraph::apply_batch` + `snapshot()`), for any
//! valid batch over any graph — out-CSR, in-CSR, and the cached
//! out-degree array all compare equal (`Snapshot: PartialEq`). The same
//! holds transitively for `DynGraph`'s coherent cached snapshot across
//! arbitrary batch sequences.

use lfpr_graph::{BatchSpec, BatchUpdate, DynGraph, Snapshot};
use proptest::prelude::*;

/// Build a valid graph from arbitrary drawn data: ids clamped into
/// `0..n`, duplicates removed by `from_edges`.
fn graph_from(n: usize, raw: &[(u32, u32)]) -> DynGraph {
    let edges: Vec<(u32, u32)> = raw
        .iter()
        .map(|&(u, v)| (u % n as u32, v % n as u32))
        .collect();
    DynGraph::from_edges(n, edges).expect("clamped ids are in range")
}

proptest! {
    /// Incremental patch ≡ full rebuild for a random generated batch
    /// over a random graph.
    #[test]
    fn apply_batch_equals_full_rebuild(
        n in 2usize..80,
        raw in proptest::collection::vec((0u32..100, 0u32..100), 0..300),
        fraction in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let mut g = graph_from(n, &raw);
        let prev = g.snapshot();
        let batch = BatchSpec::mixed(fraction, seed).generate(&g);
        let incremental = prev.apply_batch(&batch).expect("generated batch is valid");
        g.apply_batch(&batch).expect("generated batch is valid");
        prop_assert_eq!(&incremental, &g.snapshot());
        // Degrees patched, not recomputed — spot-check against the graph.
        for v in 0..n as u32 {
            prop_assert_eq!(incremental.out_degree(v) as usize, g.out_degree(v));
        }
    }

    /// A chain of batches keeps the graph's coherent cached snapshot
    /// equal to a from-scratch rebuild at every step (including buffer
    /// recycling through `recycle_snapshot`).
    #[test]
    fn cached_snapshot_coherent_across_batch_chains(
        n in 2usize..60,
        raw in proptest::collection::vec((0u32..80, 0u32..80), 0..200),
        seeds in proptest::collection::vec(0u64..1000, 1..6),
    ) {
        let mut g = graph_from(n, &raw);
        let mut retired = Some(g.snapshot_shared());
        for seed in seeds {
            let batch = BatchSpec::mixed(0.1, seed).generate(&g);
            g.apply_batch(&batch).expect("generated batch is valid");
            if let Some(prev) = retired.take() {
                g.recycle_snapshot(prev);
            }
            let shared = g.snapshot_shared();
            prop_assert_eq!(shared.as_ref(), &g.snapshot());
            retired = Some(shared);
        }
    }

    /// Delete-then-reinsert of the same edge inside one batch nets to
    /// "present" on both paths.
    #[test]
    fn delete_reinsert_roundtrip(
        n in 2usize..40,
        raw in proptest::collection::vec((0u32..50, 0u32..50), 1..120),
    ) {
        let mut g = graph_from(n, &raw);
        if g.num_edges() > 0 {
            let (u, v) = g.edges().next().unwrap();
            let prev = g.snapshot();
            let batch = BatchUpdate {
                deletions: vec![(u, v)],
                insertions: vec![(u, v)],
            };
            let incremental = prev.apply_batch(&batch).expect("net no-op batch is valid");
            prop_assert_eq!(&incremental, &prev);
            g.apply_batch(&batch).expect("net no-op batch is valid");
            prop_assert_eq!(incremental, g.snapshot());
        }
    }

    /// Invalid batches are rejected without corrupting either path:
    /// `Snapshot::apply_batch` errors and `DynGraph::apply_batch` stays
    /// all-or-nothing.
    #[test]
    fn invalid_batches_rejected_consistently(
        n in 2usize..40,
        raw in proptest::collection::vec((0u32..50, 0u32..50), 0..120),
        u in 0u32..50,
        v in 0u32..50,
    ) {
        let mut g = graph_from(n, &raw);
        let (u, v) = (u % n as u32, v % n as u32);
        let prev = g.snapshot();
        let before = g.clone();
        let bad = if g.has_edge(u, v) {
            BatchUpdate::insert_only(vec![(u, v)])
        } else {
            BatchUpdate::delete_only(vec![(u, v)])
        };
        prop_assert!(prev.apply_batch(&bad).is_err());
        prop_assert!(g.apply_batch(&bad).is_err());
        prop_assert_eq!(g, before);
    }
}

#[test]
fn snapshot_apply_batch_handles_boundary_vertices() {
    // First and last vertices touched: exercises the splice's prefix,
    // gap, and tail copies.
    let g = DynGraph::from_edges(5, vec![(0, 4), (4, 0), (2, 2)]).unwrap();
    let prev = g.snapshot();
    let batch = BatchUpdate {
        deletions: vec![(0, 4), (4, 0)],
        insertions: vec![(0, 1), (4, 3), (4, 2)],
    };
    let next = prev.apply_batch(&batch).unwrap();
    let mut g2 = g.clone();
    g2.apply_batch(&batch).unwrap();
    assert_eq!(next, g2.snapshot());
    assert_eq!(next.out(4), &[2, 3]);
    assert_eq!(next.in_(0), &[] as &[u32]);
}

#[test]
fn empty_graph_and_empty_batch() {
    let g = DynGraph::new(3);
    let prev = g.snapshot();
    let next = prev.apply_batch(&BatchUpdate::new()).unwrap();
    assert_eq!(next, prev);
    let empty = Snapshot::from_edges(0, &[]);
    assert_eq!(empty.apply_batch(&BatchUpdate::new()).unwrap(), empty);
}
