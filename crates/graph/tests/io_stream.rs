//! Property and fuzz tests for the streaming ingestion subsystem.
//!
//! Three invariants pin the subsystem down:
//!
//! 1. **Roundtrip identity** — any graph written by `write_edge_list` or
//!    the fixture writers and read back through the streaming loader is
//!    the *identical* `DynGraph`, including trailing isolated vertices
//!    (the SNAP `# Nodes:` header / mtx size line carry `n`).
//! 2. **Streaming ≡ BufRead** — the parallel byte-chunk parser and the
//!    seed line-by-line parser accept the same inputs and build the same
//!    graphs, for every fixture format, thread count, and chunk size.
//! 3. **Hostile input safety** — truncated, padded, garbage, and
//!    absurdly-sized inputs error cleanly instead of parsing silently or
//!    pre-allocating unbounded memory.

use lfpr_graph::io::{
    fixtures, read_edge_list, read_edge_list_buffered, read_matrix_market,
    read_matrix_market_buffered, stream, write_edge_list, GraphFormat, StreamOptions,
};
use lfpr_graph::{DynGraph, Edge};
use proptest::prelude::*;
use std::path::PathBuf;

fn tmp_path(stem: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lfpr_iostream_{}_{stem}.{ext}", std::process::id()))
}

/// Build a valid graph from arbitrary drawn data: ids are clamped into
/// `0..n`, duplicates removed by construction.
fn graph_from(n: usize, raw: &[(u32, u32)]) -> DynGraph {
    let edges: Vec<Edge> = raw
        .iter()
        .map(|&(u, v)| (u % n as u32, v % n as u32))
        .collect();
    DynGraph::from_edges(n, edges).expect("clamped ids are in range")
}

/// Streaming parse configurations that must all agree: inline, small
/// team, oversplit chunks (min_chunk 1 puts nearly every line in its
/// own chunk).
fn stream_configs() -> Vec<StreamOptions> {
    vec![
        StreamOptions {
            threads: 1,
            min_chunk_bytes: 1,
        },
        StreamOptions {
            threads: 3,
            min_chunk_bytes: 1,
        },
        StreamOptions {
            threads: 4,
            min_chunk_bytes: 64,
        },
        StreamOptions::default(),
    ]
}

proptest! {
    /// write_edge_list → streaming reader is the identity, for every
    /// parser configuration, and matches the BufRead loader.
    #[test]
    fn snap_roundtrip_identity(
        n in 1usize..120,
        raw in prop::collection::vec((0u32..200, 0u32..200), 0..300),
    ) {
        let g = graph_from(n, &raw);
        let path = tmp_path("snap_rt", "txt");
        write_edge_list(&path, &g).unwrap();
        let buffered = read_edge_list_buffered(&path).unwrap();
        prop_assert_eq!(&g, &buffered, "BufRead roundtrip");
        for opts in stream_configs() {
            let streamed = stream::load_graph_with(&path, GraphFormat::Snap, &opts).unwrap();
            prop_assert_eq!(&g, &streamed, "streaming roundtrip under {:?}", opts);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Fixture writer (mtx) → streaming reader is the identity and
    /// matches the BufRead loader.
    #[test]
    fn mtx_roundtrip_identity(
        n in 1usize..120,
        raw in prop::collection::vec((0u32..200, 0u32..200), 0..300),
    ) {
        let g = graph_from(n, &raw);
        let path = tmp_path("mtx_rt", "mtx");
        fixtures::write_mtx(&path, &g).unwrap();
        let buffered = read_matrix_market_buffered(&path).unwrap();
        prop_assert_eq!(&g, &buffered, "BufRead roundtrip");
        for opts in stream_configs() {
            let streamed = stream::load_graph_with(&path, GraphFormat::Mtx, &opts).unwrap();
            prop_assert_eq!(&g, &streamed, "streaming roundtrip under {:?}", opts);
        }
        std::fs::remove_file(&path).ok();
    }

    /// Noise injection: blank lines, comments, `\r\n` endings, and
    /// trailing columns sprinkled through a SNAP body change nothing —
    /// and chunk boundaries falling inside the noise (min_chunk 1)
    /// produce empty or comment-only chunks that parse to nothing.
    #[test]
    fn snap_parsing_survives_interleaved_noise(
        n in 1usize..60,
        raw in prop::collection::vec((0u32..100, 0u32..100), 1..120),
        noise_every in 1usize..5,
        crlf_sel in 0u8..2,
    ) {
        let crlf = crlf_sel == 1;
        let g = graph_from(n, &raw);
        let eol = if crlf { "\r\n" } else { "\n" };
        let mut text = format!("# Nodes: {} Edges: {}{eol}", g.num_vertices(), g.num_edges());
        for (i, (u, v)) in g.edges().enumerate() {
            if i % noise_every == 0 {
                text.push_str(eol);
                text.push_str("# interleaved comment");
                text.push_str(eol);
                text.push_str("% more noise 123");
                text.push_str(eol);
            }
            // Tolerated third column on some lines.
            if i % 3 == 0 {
                text.push_str(&format!("{u} {v} 17{eol}"));
            } else {
                text.push_str(&format!("  {u}\t{v}{eol}"));
            }
        }
        for opts in stream_configs() {
            let (pn, edges) = stream::parse_snap_bytes(text.as_bytes(), &opts).unwrap();
            let parsed = DynGraph::from_edges(pn, edges).unwrap();
            prop_assert_eq!(&g, &parsed);
        }
    }
}

#[test]
fn streaming_equals_buffered_on_every_fixture() {
    use lfpr_graph::generators::{erdos_renyi, grid_road, kmer_chain, rmat, RmatParams};
    let graphs: Vec<(&str, DynGraph)> = vec![
        ("er", erdos_renyi(200, 1400, 3)),
        ("road", grid_road(300, 4)),
        ("kmer", kmer_chain(250, 5)),
        ("web", rmat(150, 2000, RmatParams::web(), false, 6)),
        ("empty", DynGraph::new(17)),
    ];
    let dir = std::env::temp_dir().join(format!("lfpr_iostream_fixt_{}", std::process::id()));
    for (name, g) in &graphs {
        for format in [GraphFormat::Snap, GraphFormat::Mtx] {
            let path = fixtures::write_fixture(&dir, name, format, g).unwrap();
            let buffered = match format {
                GraphFormat::Snap => read_edge_list_buffered(&path),
                GraphFormat::Mtx => read_matrix_market_buffered(&path),
            }
            .unwrap();
            assert_eq!(g, &buffered, "{name}/{format}: buffered");
            let default_stream = match format {
                GraphFormat::Snap => read_edge_list(&path),
                GraphFormat::Mtx => read_matrix_market(&path),
            }
            .unwrap();
            assert_eq!(g, &default_stream, "{name}/{format}: default streaming");
            for opts in stream_configs() {
                let streamed = stream::load_graph_with(&path, format, &opts).unwrap();
                assert_eq!(g, &streamed, "{name}/{format}: streaming {opts:?}");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_mtx_file_rejected_by_both_loaders() {
    let g = graph_from(40, &[(1, 2), (3, 4), (5, 6), (7, 8), (9, 10)]);
    let path = tmp_path("trunc", "mtx");
    fixtures::write_mtx(&path, &g).unwrap();
    // Chop the last line off: the entry count no longer matches nnz.
    let text = std::fs::read_to_string(&path).unwrap();
    let truncated = text.trim_end().rsplit_once('\n').unwrap().0;
    std::fs::write(&path, truncated).unwrap();
    let es = read_matrix_market(&path).unwrap_err();
    let eb = read_matrix_market_buffered(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(es.to_string().contains("declares"), "{es}");
    assert!(eb.to_string().contains("declares"), "{eb}");
}

#[test]
fn garbage_inputs_rejected_by_both_loaders() {
    for (ext, contents) in [
        ("txt", "0 1\nnot an edge\n2 3\n"),
        ("txt", "0\n"),
        ("txt", "0 99999999999\n"),
        (
            "mtx",
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 x\n",
        ),
        (
            "mtx",
            "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 5.0\n",
        ),
        (
            "mtx",
            "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2 1.0 0.0\n",
        ),
        (
            "mtx",
            "%%MatrixMarket matrix coordinate pattern general\n2 2\n1 2\n",
        ),
        ("mtx", ""),
    ] {
        let path = tmp_path("garbage", ext);
        std::fs::write(&path, contents).unwrap();
        let (streamed, buffered) = if ext == "mtx" {
            (
                read_matrix_market(&path),
                read_matrix_market_buffered(&path),
            )
        } else {
            (read_edge_list(&path), read_edge_list_buffered(&path))
        };
        std::fs::remove_file(&path).ok();
        assert!(streamed.is_err(), "streaming must reject {contents:?}");
        assert!(buffered.is_err(), "buffered must reject {contents:?}");
    }
}

#[test]
fn hostile_nnz_declaration_is_safe() {
    // nnz = usize::MAX must fail on the count check in both loaders
    // without attempting the pre-allocation.
    let path = tmp_path("hostile", "mtx");
    std::fs::write(
        &path,
        format!(
            "%%MatrixMarket matrix coordinate pattern symmetric\n4 4 {}\n1 2\n",
            usize::MAX
        ),
    )
    .unwrap();
    assert!(read_matrix_market(&path).is_err());
    assert!(read_matrix_market_buffered(&path).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_and_comment_only_files() {
    let path = tmp_path("empty", "txt");
    std::fs::write(&path, "").unwrap();
    let g = read_edge_list(&path).unwrap();
    assert_eq!(g.num_vertices(), 0);
    std::fs::write(&path, "# nothing here\n% nor here\n\n\n").unwrap();
    let g = read_edge_list(&path).unwrap();
    assert_eq!(g.num_vertices(), 0);
    // A header with no edges is a legal all-isolated graph.
    std::fs::write(&path, "# Nodes: 12 Edges: 0\n").unwrap();
    let g = read_edge_list(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(g.num_vertices(), 12);
    assert_eq!(g.num_edges(), 0);
}

#[test]
fn snap_header_preserves_isolated_vertices_through_cli_path() {
    // The seed dropped vertices beyond max_id+1; Table-1-style SNAP
    // inputs list `# Nodes:` precisely because of trailing isolates.
    let path = tmp_path("isolated", "txt");
    std::fs::write(&path, "# Nodes: 100 Edges: 2\n0 1\n1 2\n").unwrap();
    let streamed = read_edge_list(&path).unwrap();
    let buffered = read_edge_list_buffered(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(streamed.num_vertices(), 100);
    assert_eq!(streamed, buffered);
}
