//! Property tests pinning the gap-aware store to the packed-snapshot
//! oracle.
//!
//! The invariant the gapped storage engine lives or dies by: after any
//! sequence of valid batches, [`GappedGraph`] is **extensionally
//! identical** to the packed [`Snapshot`] maintained by CSR splicing —
//! the same out-runs, in-runs, and out-degrees, in the same order (the
//! kernels' float accumulation order rides on neighbor order, so "same
//! set" is not enough). `to_snapshot` must round-trip into an equal
//! packed snapshot, and the slack accounting must track the true edge
//! count across granule rebuilds.

use lfpr_graph::{BatchSpec, BatchUpdate, DynGraph, GappedGraph, NeighborRuns};
use proptest::prelude::*;

/// Build a valid graph from arbitrary drawn data: ids clamped into
/// `0..n`, duplicates removed by `from_edges`.
fn graph_from(n: usize, raw: &[(u32, u32)]) -> DynGraph {
    let edges: Vec<(u32, u32)> = raw
        .iter()
        .map(|&(u, v)| (u % n as u32, v % n as u32))
        .collect();
    DynGraph::from_edges(n, edges).expect("clamped ids are in range")
}

proptest! {
    /// Gapped store ≡ packed oracle across a chain of random churn
    /// batches: runs, degrees, materialization, and slack accounting.
    #[test]
    fn gapped_store_tracks_packed_oracle_under_churn(
        n in 2usize..60,
        raw in proptest::collection::vec((0u32..80, 0u32..80), 0..250),
        seeds in proptest::collection::vec(0u64..1000, 1..8),
        fraction in 0.02f64..0.3,
    ) {
        let mut g = graph_from(n, &raw);
        let mut oracle = g.snapshot();
        let mut gapped = GappedGraph::from_snapshot(&oracle);
        for seed in seeds {
            let batch = BatchSpec::mixed(fraction, seed).generate(&g);
            g.apply_batch(&batch).expect("generated batch is valid");
            oracle = oracle.apply_batch(&batch).expect("generated batch is valid");
            gapped.apply_batch(&batch).expect("valid on the oracle");
            // Run-level equality in both directions, plus degrees.
            for v in 0..n as u32 {
                prop_assert_eq!(gapped.out(v), oracle.out(v));
                prop_assert_eq!(gapped.in_(v), oracle.in_(v));
                prop_assert_eq!(
                    NeighborRuns::out_degree(&gapped, v),
                    oracle.out_degree(v)
                );
            }
            prop_assert_eq!(gapped.num_edges(), oracle.num_edges());
            // Materialized equality: the packed round-trip of the
            // gapped runs is the oracle, byte for byte.
            prop_assert_eq!(&gapped.to_snapshot(), &oracle);
            // Slack accounting: both directions stored, never
            // overfull.
            let s = gapped.slack_stats();
            prop_assert_eq!(s.edges as usize, 2 * oracle.num_edges());
            prop_assert!(s.edges <= s.slots);
            prop_assert!(s.occupancy_permille() <= 1000);
        }
    }

    /// Delete-then-reinsert of one edge inside a batch nets to
    /// "present" on the gapped path exactly as on the packed path.
    #[test]
    fn gapped_delete_reinsert_is_net_noop(
        n in 2usize..40,
        raw in proptest::collection::vec((0u32..50, 0u32..50), 1..120),
    ) {
        let g = graph_from(n, &raw);
        let oracle = g.snapshot();
        if oracle.num_edges() > 0 {
            let mut gapped = GappedGraph::from_snapshot(&oracle);
            let (u, v) = g.edges().next().unwrap();
            let batch = BatchUpdate {
                deletions: vec![(u, v)],
                insertions: vec![(u, v)],
            };
            gapped.apply_batch(&batch).expect("net no-op batch is valid");
            prop_assert_eq!(&gapped.to_snapshot(), &oracle);
        }
    }
}

#[test]
fn heavy_single_vertex_growth_rebuilds_and_stays_exact() {
    // Pour edges into one vertex until its granule's slack is gone:
    // rebuilds must fire and the runs must stay equal to the oracle.
    let g = DynGraph::from_edges(300, vec![(0, 1)]).unwrap();
    let mut oracle = g.snapshot();
    let mut gapped = GappedGraph::from_snapshot(&oracle);
    let batch = BatchUpdate {
        deletions: vec![],
        insertions: (2..250u32).map(|v| (0, v)).collect(),
    };
    oracle = oracle.apply_batch(&batch).unwrap();
    gapped.apply_batch(&batch).unwrap();
    assert_eq!(gapped.to_snapshot(), oracle);
    let s = gapped.slack_stats();
    assert!(s.rebuilds > 0, "249 inserts into one run must rebalance");
    assert_eq!(s.edges as usize, 2 * oracle.num_edges());
}
