//! R-MAT (recursive matrix) Kronecker-style generator.
//!
//! R-MAT recursively subdivides the adjacency matrix into quadrants with
//! probabilities (a, b, c, d), producing the heavy-tailed degree
//! distributions characteristic of web crawls and social networks — the
//! LAW and SNAP classes of Table 2.

use crate::digraph::DynGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities. Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability (controls hub strength).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl RmatParams {
    /// Web-crawl-like: strongly skewed (hubs with enormous in-degree),
    /// like the LAW graphs (indochina-2004, uk-2005, sk-2005, …).
    pub fn web() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }

    /// Social-network-like: denser core, milder skew (com-LiveJournal,
    /// com-Orkut).
    pub fn social() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            d: 0.11,
        }
    }

    /// Validate that probabilities are non-negative and sum to ~1.
    pub fn is_valid(&self) -> bool {
        let s = self.a + self.b + self.c + self.d;
        self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0 && (s - 1.0).abs() < 1e-9
    }
}

/// Generate an R-MAT graph with `n` vertices (rounded up to a power of
/// two internally, then filtered) and up to `m` distinct edges.
/// If `symmetric`, each sampled edge is added in both directions
/// (Table 2's undirected graphs get "two directed edges for each edge").
pub fn rmat(n: usize, m: usize, params: RmatParams, symmetric: bool, seed: u64) -> DynGraph {
    assert!(params.is_valid(), "RMAT params must sum to 1");
    let mut g = DynGraph::new(n);
    if n < 2 || m == 0 {
        return g;
    }
    let levels = (usize::BITS - (n - 1).leading_zeros()) as usize; // ceil(log2 n)
    let mut rng = StdRng::seed_from_u64(seed);
    let mut placed = 0usize;
    let mut attempts = 0usize;
    let cap = m * 64 + 4096;
    // Slight per-level noise keeps the generated matrix from having the
    // exact self-similar artifacts of noiseless R-MAT (standard practice).
    while placed < m && attempts < cap {
        attempts += 1;
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..levels {
            let r: f64 = rng.gen();
            let jitter: f64 = 0.95 + 0.1 * rng.gen::<f64>();
            let a = params.a * jitter;
            let b = params.b;
            let c = params.c;
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u >= n || v >= n || u == v {
            continue;
        }
        let (u, v) = (u as u32, v as u32);
        if g.insert_edge_if_absent(u, v).expect("in range") {
            placed += 1;
        }
        if symmetric && g.insert_edge_if_absent(v, u).expect("in range") {
            placed += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_presets_valid() {
        assert!(RmatParams::web().is_valid());
        assert!(RmatParams::social().is_valid());
        assert!(!RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5
        }
        .is_valid());
    }

    #[test]
    fn generates_requested_scale() {
        let g = rmat(1000, 8000, RmatParams::web(), false, 3);
        assert_eq!(g.num_vertices(), 1000);
        // R-MAT duplicates collide on hubs; expect most of m placed.
        assert!(g.num_edges() > 6000, "placed {}", g.num_edges());
    }

    #[test]
    fn symmetric_graphs_are_symmetric() {
        let g = rmat(500, 3000, RmatParams::social(), true, 4);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "missing reverse of ({u},{v})");
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = rmat(2048, 20_000, RmatParams::web(), false, 5);
        let s = g.snapshot();
        let max_in = (0..2048u32).map(|v| s.in_degree(v)).max().unwrap();
        let avg_in = g.num_edges() as f64 / 2048.0;
        // A web-like hub should have in-degree far above the mean —
        // uniform graphs would concentrate near the mean.
        assert!(
            (max_in as f64) > 8.0 * avg_in,
            "max in-degree {max_in} vs avg {avg_in:.1}: not skewed"
        );
    }

    #[test]
    fn deterministic() {
        let a = rmat(256, 2000, RmatParams::web(), false, 6);
        let b = rmat(256, 2000, RmatParams::web(), false, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops() {
        let g = rmat(128, 1000, RmatParams::web(), false, 7);
        for v in 0..128u32 {
            assert!(!g.has_edge(v, v));
        }
    }
}
