//! Synthetic graph generators standing in for the paper's datasets.
//!
//! The paper evaluates on 12 SuiteSparse graphs (Table 2: web graphs,
//! social networks, road networks, protein k-mer graphs; 37 M – 1.98 B
//! edges) and 2 SNAP temporal graphs (Table 1). Those inputs are
//! impractical to ship; per the substitution rule we generate graphs of
//! the **same structural classes** at laptop scale:
//!
//! * **web-like** — RMAT with skewed parameters (a≫d): heavy-tailed
//!   in/out degrees, local clustering, high average degree (~25).
//! * **social** — RMAT, denser and slightly less skewed (avg degree ~75
//!   for the com-Orkut analogue), symmetrized.
//! * **road** — 2D grid with perturbed connectivity: degree ≈ 3, enormous
//!   diameter, symmetrized. DF shines here per §5.2.2.
//! * **k-mer** — long chains with occasional branching: degree ≈ 3, long
//!   paths (GenBank k-mer graphs are de-Bruijn-like).
//! * **temporal** — timestamped preferential-attachment streams with
//!   duplicate edges, replayed as insert-only batches (Table 1 protocol).
//!
//! What the DF-vs-ND comparison depends on — degree distribution shape,
//! diameter class, and sparsity — is preserved; absolute scale is not.

pub mod erdos_renyi;
pub mod grid;
pub mod kmer;
pub mod rmat;
pub mod temporal;

pub use erdos_renyi::erdos_renyi;
pub use grid::grid_road;
pub use kmer::kmer_chain;
pub use rmat::{rmat, RmatParams};
pub use temporal::{temporal_stream, TemporalGraph};

use crate::digraph::DynGraph;
use crate::selfloops::add_self_loops;

/// Structural class of a generated graph (mirrors Table 2's four groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphClass {
    /// LAW web crawls: directed, skewed, high degree.
    Web,
    /// SNAP social networks: undirected (symmetrized), dense.
    Social,
    /// DIMACS10 road networks: undirected, degree ~3, huge diameter.
    Road,
    /// GenBank protein k-mer graphs: undirected, degree ~3, long chains.
    Kmer,
}

/// A named entry of the scaled-down Table-2 suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Name mirroring the paper's dataset (e.g. "indochina-2004*").
    pub name: &'static str,
    /// Structural class.
    pub class: GraphClass,
    /// Scaled vertex count.
    pub n: usize,
    /// Target (directed) edge count before self-loops.
    pub m: usize,
    /// Whether the paper marks the original as directed (`*` in Table 2).
    pub directed: bool,
}

impl SuiteEntry {
    /// Generate the graph (self-loops added, dead-end free).
    pub fn generate(&self, seed: u64) -> DynGraph {
        let mut g = match self.class {
            GraphClass::Web => rmat(self.n, self.m, RmatParams::web(), false, seed),
            GraphClass::Social => rmat(self.n, self.m, RmatParams::social(), true, seed),
            GraphClass::Road => grid_road(self.n, seed),
            GraphClass::Kmer => kmer_chain(self.n, seed),
        };
        add_self_loops(&mut g);
        g
    }
}

/// The 12-graph suite mirroring Table 2, scaled ~1000× down so the full
/// batch-fraction sweep (Figure 7) runs on a commodity machine. Relative
/// proportions between the graphs (vertex/edge ratios, degree classes)
/// follow the table.
pub fn table2_suite() -> Vec<SuiteEntry> {
    use GraphClass::*;
    vec![
        SuiteEntry {
            name: "indochina-2004*",
            class: Web,
            n: 7_400,
            m: 199_000,
            directed: true,
        },
        SuiteEntry {
            name: "arabic-2005*",
            class: Web,
            n: 22_700,
            m: 654_000,
            directed: true,
        },
        SuiteEntry {
            name: "uk-2005*",
            class: Web,
            n: 39_500,
            m: 961_000,
            directed: true,
        },
        SuiteEntry {
            name: "webbase-2001*",
            class: Web,
            n: 118_000,
            m: 1_110_000,
            directed: true,
        },
        SuiteEntry {
            name: "it-2004*",
            class: Web,
            n: 41_300,
            m: 1_180_000,
            directed: true,
        },
        SuiteEntry {
            name: "sk-2005*",
            class: Web,
            n: 50_600,
            m: 1_980_000,
            directed: true,
        },
        SuiteEntry {
            name: "com-LiveJournal",
            class: Social,
            n: 4_000,
            m: 73_400,
            directed: false,
        },
        SuiteEntry {
            name: "com-Orkut",
            class: Social,
            n: 3_070,
            m: 237_000,
            directed: false,
        },
        SuiteEntry {
            name: "asia_osm",
            class: Road,
            n: 12_000,
            m: 37_400,
            directed: false,
        },
        SuiteEntry {
            name: "europe_osm",
            class: Road,
            n: 50_900,
            m: 159_000,
            directed: false,
        },
        SuiteEntry {
            name: "kmer_A2a",
            class: Kmer,
            n: 171_000,
            m: 531_000,
            directed: false,
        },
        SuiteEntry {
            name: "kmer_V1r",
            class: Kmer,
            n: 214_000,
            m: 679_000,
            directed: false,
        },
    ]
}

/// A reduced 4-graph suite (one per class) for quick benches and tests.
pub fn mini_suite() -> Vec<SuiteEntry> {
    use GraphClass::*;
    vec![
        SuiteEntry {
            name: "web-mini*",
            class: Web,
            n: 4_000,
            m: 100_000,
            directed: true,
        },
        SuiteEntry {
            name: "social-mini",
            class: Social,
            n: 2_000,
            m: 120_000,
            directed: false,
        },
        SuiteEntry {
            name: "road-mini",
            class: Road,
            n: 6_000,
            m: 18_000,
            directed: false,
        },
        SuiteEntry {
            name: "kmer-mini",
            class: Kmer,
            n: 8_000,
            m: 24_000,
            directed: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfloops::all_have_self_loops;

    #[test]
    fn suite_has_twelve_entries() {
        assert_eq!(table2_suite().len(), 12);
    }

    #[test]
    fn mini_suite_generates_valid_graphs() {
        for entry in mini_suite() {
            let g = entry.generate(1);
            assert_eq!(g.num_vertices(), entry.n, "{}", entry.name);
            assert!(all_have_self_loops(&g), "{}", entry.name);
            assert_eq!(g.snapshot().dead_end_count(), 0, "{}", entry.name);
            // Edge count should be in the right ballpark (generators are
            // probabilistic; self-loops add n edges).
            assert!(
                g.num_edges() >= entry.n,
                "{}: too few edges ({})",
                entry.name,
                g.num_edges()
            );
        }
    }

    #[test]
    fn classes_have_distinct_density() {
        let suite = mini_suite();
        let deg = |e: &SuiteEntry| {
            let g = e.generate(2);
            g.num_edges() as f64 / g.num_vertices() as f64
        };
        let social = deg(&suite[1]);
        let road = deg(&suite[2]);
        assert!(
            social > 4.0 * road,
            "social ({social:.1}) should be much denser than road ({road:.1})"
        );
    }
}
