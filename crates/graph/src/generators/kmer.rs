//! Protein k-mer-like graphs: long chains with sparse branching.
//!
//! GenBank k-mer graphs (kmer_A2a, kmer_V1r in Table 2) are de-Bruijn-ish:
//! average degree ≈ 3.1 with long filamentary paths. We model them as a
//! union of vertex-disjoint chains whose ends are stitched with random
//! branch edges, symmetrized.

use crate::digraph::DynGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a k-mer-like chain graph with `n` vertices.
///
/// Vertices are partitioned into chains of random length 32–256; chain
/// neighbors are connected bidirectionally, then `0.05 · n` extra branch
/// edges are added between random vertices (biased toward chain ends) to
/// reach the Davg ≈ 3.1 of the GenBank graphs.
pub fn kmer_chain(n: usize, seed: u64) -> DynGraph {
    let mut g = DynGraph::new(n);
    if n < 2 {
        return g;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Chains.
    let mut v = 0usize;
    while v + 1 < n {
        let len = rng.gen_range(32..=256).min(n - v);
        for i in 0..len - 1 {
            let (a, b) = ((v + i) as u32, (v + i + 1) as u32);
            let _ = g.insert_edge_if_absent(a, b);
            let _ = g.insert_edge_if_absent(b, a);
        }
        v += len;
    }
    // Branch edges: ~0.05 n undirected extras. GenBank k-mer graphs have
    // |E| ≈ 3.1|V| including self-loops, i.e. ~1.05 undirected edges per
    // vertex: the chains supply ~0.99, branches the rest.
    let extras = n * 5 / 100;
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extras && attempts < extras * 32 + 64 {
        attempts += 1;
        let a = rng.gen_range(0..n) as u32;
        let b = rng.gen_range(0..n) as u32;
        if a == b {
            continue;
        }
        if g.insert_edge_if_absent(a, b).expect("in range") {
            let _ = g.insert_edge_if_absent(b, a);
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_matches_kmer_class() {
        let g = kmer_chain(20_000, 1);
        let davg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(davg > 1.8 && davg < 2.6, "Davg = {davg:.2}");
    }

    #[test]
    fn symmetric() {
        let g = kmer_chain(2000, 2);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn chains_are_connected_locally() {
        let g = kmer_chain(1000, 3);
        // Most consecutive pairs inside a chain are connected; sample the
        // start of the graph (first chain is at least 32 long).
        let connected = (0..31).filter(|&i| g.has_edge(i, i + 1)).count();
        assert!(connected >= 30, "only {connected}/31 chain links present");
    }

    #[test]
    fn deterministic() {
        assert_eq!(kmer_chain(500, 7), kmer_chain(500, 7));
    }
}
