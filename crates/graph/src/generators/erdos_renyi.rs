//! Erdős–Rényi G(n, m) random digraphs (uniform edge placement).
//!
//! Used as a structure-free baseline in tests and ablations; the paper's
//! dataset classes are all *non*-uniform, which is exactly why ER is a
//! useful control: frontier growth on ER has no hubs to amplify it.

use crate::digraph::DynGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a uniform random digraph with `n` vertices and (up to) `m`
/// distinct directed edges, no self-loops. Deterministic in `seed`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> DynGraph {
    let mut g = DynGraph::new(n);
    if n < 2 {
        return g;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let max_m = n * (n - 1);
    let m = m.min(max_m);
    let mut placed = 0usize;
    // Rejection sampling is fine while the graph is sparse (m << n^2).
    let mut attempts = 0usize;
    let cap = m * 32 + 1024;
    while placed < m && attempts < cap {
        attempts += 1;
        let u = rng.gen_range(0..n) as u32;
        let v = rng.gen_range(0..n) as u32;
        if u == v {
            continue;
        }
        if g.insert_edge_if_absent(u, v).expect("in range") {
            placed += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_when_sparse() {
        let g = erdos_renyi(100, 500, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(50, 300, 2);
        for v in 0..50u32 {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(80, 400, 9), erdos_renyi(80, 400, 9));
        assert_ne!(erdos_renyi(80, 400, 9), erdos_renyi(80, 400, 10));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(erdos_renyi(0, 10, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(1, 10, 1).num_edges(), 0);
        // Requesting more edges than possible caps at n(n-1).
        let g = erdos_renyi(3, 100, 1);
        assert_eq!(g.num_edges(), 6);
    }
}
