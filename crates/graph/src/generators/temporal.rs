//! Timestamped temporal edge streams (Table 1 substitutes).
//!
//! The paper's two real-world dynamic graphs — wiki-talk-temporal
//! (1.14 M vertices, 7.83 M temporal edges, 3.31 M static) and
//! sx-stackoverflow (2.60 M / 63.4 M / 36.2 M) — are interaction streams:
//! timestamped directed edges **with duplicates** (|ET| ≫ |E|). We
//! generate streams with the same two signatures:
//!
//! 1. heavy-tailed activity (preferential attachment on both endpoints),
//! 2. a duplicate ratio |ET|/|E| matched per dataset (≈ 2.4 for
//!    wiki-talk, ≈ 1.75 for sx-stackoverflow).
//!
//! The experiment protocol (§5.1.4) is reproduced exactly: load the first
//! 90 % of the stream as the initial graph, then replay the rest as
//! insert-only batches of size 1e-4·|ET| or 1e-3·|ET|.

use crate::batch::BatchUpdate;
use crate::digraph::DynGraph;
use crate::selfloops::add_self_loops;
use crate::types::Edge;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A timestamped directed edge stream over a fixed vertex set.
#[derive(Debug, Clone)]
pub struct TemporalGraph {
    /// Number of vertices.
    pub n: usize,
    /// The full stream in timestamp order (duplicates included).
    pub stream: Vec<Edge>,
    /// Dataset-style name.
    pub name: String,
}

impl TemporalGraph {
    /// Number of temporal edges |ET| (with duplicates).
    pub fn temporal_edge_count(&self) -> usize {
        self.stream.len()
    }

    /// Number of static edges |E| (distinct pairs).
    pub fn static_edge_count(&self) -> usize {
        let mut e = self.stream.clone();
        e.sort_unstable();
        e.dedup();
        e.len()
    }

    /// Split the stream per §5.1.4: build the initial graph from the first
    /// `preload` fraction (default 0.9), self-loops added; return the
    /// graph and the remaining stream tail.
    pub fn preload(&self, preload: f64) -> (DynGraph, &[Edge]) {
        let cut = ((self.stream.len() as f64) * preload) as usize;
        let mut g = DynGraph::new(self.n);
        for &(u, v) in &self.stream[..cut] {
            if u != v {
                let _ = g.insert_edge_if_absent(u, v);
            }
        }
        add_self_loops(&mut g);
        (g, &self.stream[cut..])
    }

    /// Cut the stream tail into insert-only batches of `batch_size`
    /// temporal edges each. Duplicate edges and edges already present are
    /// dropped *per batch at application time* (callers filter against the
    /// live graph with [`filter_new_edges`]).
    pub fn tail_batches<'a>(&self, tail: &'a [Edge], batch_size: usize) -> Vec<&'a [Edge]> {
        if batch_size == 0 {
            return Vec::new();
        }
        tail.chunks(batch_size).collect()
    }
}

/// Keep only the edges of `chunk` that are not yet in `g` (and are not
/// self-loops), deduplicated — the valid insert-only [`BatchUpdate`] for
/// replaying a temporal chunk.
pub fn filter_new_edges(g: &DynGraph, chunk: &[Edge]) -> BatchUpdate {
    let mut seen = std::collections::HashSet::with_capacity(chunk.len());
    let mut ins = Vec::new();
    for &(u, v) in chunk {
        if u != v && !g.has_edge(u, v) && seen.insert((u, v)) {
            ins.push((u, v));
        }
    }
    BatchUpdate::insert_only(ins)
}

/// Generate a preferential-attachment interaction stream.
///
/// * `n` — vertex count,
/// * `et` — temporal edge count (|ET|),
/// * `dup_ratio` — target |ET|/|E| (≥ 1; higher = more repeat
///   interactions, like wiki-talk's 2.37),
/// * `seed` — determinism.
pub fn temporal_stream(
    name: &str,
    n: usize,
    et: usize,
    dup_ratio: f64,
    seed: u64,
) -> TemporalGraph {
    assert!(dup_ratio >= 1.0, "dup_ratio must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stream = Vec::with_capacity(et);
    // Endpoint pool implementing preferential attachment: every emitted
    // edge pushes its endpoints, so high-activity vertices are redrawn
    // more often (Yule process).
    let mut pool: Vec<u32> = (0..n as u32).collect();
    let mut distinct: std::collections::HashSet<Edge> =
        std::collections::HashSet::with_capacity(et);
    while stream.len() < et {
        // Closed-loop control: re-send when the running |ET|/|E| ratio is
        // below target, otherwise mint a fresh distinct edge. This keeps
        // the final ratio within a few percent of `dup_ratio` regardless
        // of how often preferential draws collide with existing edges.
        let current_ratio = if distinct.is_empty() {
            1.0
        } else {
            (stream.len() + 1) as f64 / distinct.len() as f64
        };
        let want_repeat = !stream.is_empty() && current_ratio < dup_ratio;
        let (u, v) = if want_repeat {
            // Re-send an earlier interaction (uniform over history).
            stream[rng.gen_range(0..stream.len())]
        } else {
            // Fresh distinct edge via preferential attachment; bounded
            // rejection against collisions with existing edges.
            let mut fresh = None;
            for _ in 0..64 {
                let u = pool[rng.gen_range(0..pool.len())];
                let v = pool[rng.gen_range(0..pool.len())];
                if u != v && !distinct.contains(&(u, v)) {
                    fresh = Some((u, v));
                    break;
                }
            }
            match fresh {
                Some(e) => e,
                // Graph is saturated; fall back to a repeat.
                None => stream[rng.gen_range(0..stream.len())],
            }
        };
        distinct.insert((u, v));
        stream.push((u, v));
        pool.push(u);
        pool.push(v);
    }
    TemporalGraph {
        n,
        stream,
        name: name.to_string(),
    }
}

/// The two Table-1 substitutes at ~1/100 scale (same |V| : |ET| : |E|
/// proportions as the paper's datasets).
pub fn table1_graphs(seed: u64) -> Vec<TemporalGraph> {
    table1_graphs_scaled(seed, 1.0)
}

/// [`table1_graphs`] with vertex/edge counts further multiplied by
/// `scale` (the bench binaries' `--scale` flag; CI smoke uses < 1).
pub fn table1_graphs_scaled(seed: u64, scale: f64) -> Vec<TemporalGraph> {
    let sv = |n: usize| ((n as f64 * scale) as usize).max(64);
    let se = |m: usize| ((m as f64 * scale) as usize).max(128);
    vec![
        // wiki-talk-temporal: 1.14M / 7.83M / 3.31M → dup ratio 2.37
        temporal_stream("wiki-talk-temporal", sv(11_400), se(78_300), 2.37, seed),
        // sx-stackoverflow: 2.60M / 63.4M / 36.2M → dup ratio 1.75
        temporal_stream("sx-stackoverflow", sv(26_000), se(634_000), 1.75, seed + 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_has_requested_length() {
        let t = temporal_stream("t", 1000, 20_000, 2.0, 1);
        assert_eq!(t.temporal_edge_count(), 20_000);
    }

    #[test]
    fn duplicate_ratio_close_to_target() {
        let t = temporal_stream("t", 2000, 50_000, 2.4, 2);
        let ratio = t.temporal_edge_count() as f64 / t.static_edge_count() as f64;
        assert!(
            (ratio - 2.4).abs() < 0.5,
            "ratio {ratio:.2} not close to 2.4"
        );
    }

    #[test]
    fn preload_builds_valid_graph() {
        let t = temporal_stream("t", 500, 10_000, 2.0, 3);
        let (g, tail) = t.preload(0.9);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(tail.len(), 1000);
        assert_eq!(g.snapshot().dead_end_count(), 0);
    }

    #[test]
    fn filter_new_edges_is_applicable() {
        let t = temporal_stream("t", 500, 10_000, 2.0, 4);
        let (mut g, tail) = t.preload(0.9);
        for chunk in t.tail_batches(tail, 100) {
            let batch = filter_new_edges(&g, chunk);
            for &(u, v) in &batch.insertions {
                assert!(!g.has_edge(u, v));
                assert_ne!(u, v);
            }
            g.apply_batch(&batch).unwrap();
        }
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let t = temporal_stream("t", 2000, 40_000, 1.5, 5);
        let mut counts = vec![0usize; 2000];
        for &(u, _) in &t.stream {
            counts[u as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let avg = t.stream.len() as f64 / 2000.0;
        assert!((max as f64) > 5.0 * avg, "max {max} vs avg {avg:.1}");
    }

    #[test]
    fn table1_proportions() {
        let gs = table1_graphs(1);
        assert_eq!(gs.len(), 2);
        assert_eq!(gs[0].name, "wiki-talk-temporal");
        assert!(gs[1].temporal_edge_count() > gs[0].temporal_edge_count());
    }

    #[test]
    fn deterministic() {
        let a = temporal_stream("t", 300, 5000, 2.0, 6);
        let b = temporal_stream("t", 300, 5000, 2.0, 6);
        assert_eq!(a.stream, b.stream);
    }
}
