//! Road-network-like graphs: perturbed 2D grids.
//!
//! DIMACS10 road networks (asia_osm, europe_osm) have average degree ≈ 3.1
//! and enormous diameter — rank perturbations propagate slowly, which is
//! exactly the regime where the paper says DF "performs well on road
//! networks … (sparse)" (§5.2.2). A 2D grid with a random fraction of
//! edges removed and a few shortcuts reproduces degree ≈ 3 and
//! diameter Θ(√n).

use crate::digraph::DynGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a symmetrized road-like network with approximately `n`
/// vertices (rounded to a full `rows × cols` grid).
///
/// Construction: 4-neighbor grid, keep each undirected lattice edge with
/// probability 0.53 — OSM graphs have |E| ≈ 3.1·|V| *including* the
/// self-loops the paper adds, i.e. ~1.05 undirected lattice edges per
/// vertex — then add `n/200` long-range shortcuts (highways).
pub fn grid_road(n: usize, seed: u64) -> DynGraph {
    let mut g = DynGraph::new(n);
    if n == 0 {
        return g;
    }
    let side = (n as f64).sqrt().round().max(1.0) as usize;
    let (rows, cols) = (n.div_ceil(side).max(1), side);
    let mut rng = StdRng::seed_from_u64(seed);
    // The last grid row may be partial; any id >= n is skipped, so the
    // graph has exactly n vertices.
    let id = |r: usize, c: usize| r * cols + c;
    let keep_p = 0.53;
    for r in 0..rows {
        for c in 0..cols {
            if id(r, c) >= n {
                continue;
            }
            if c + 1 < cols && id(r, c + 1) < n && rng.gen::<f64>() < keep_p {
                let (a, b) = (id(r, c) as u32, id(r, c + 1) as u32);
                let _ = g.insert_edge_if_absent(a, b);
                let _ = g.insert_edge_if_absent(b, a);
            }
            if r + 1 < rows && id(r + 1, c) < n && rng.gen::<f64>() < keep_p {
                let (a, b) = (id(r, c) as u32, id(r + 1, c) as u32);
                let _ = g.insert_edge_if_absent(a, b);
                let _ = g.insert_edge_if_absent(b, a);
            }
        }
    }
    // Highways: a few long-range shortcuts.
    let shortcuts = (n / 200).max(1);
    let mut added = 0;
    let mut attempts = 0;
    while added < shortcuts && attempts < shortcuts * 32 + 64 {
        attempts += 1;
        let a = rng.gen_range(0..n) as u32;
        let b = rng.gen_range(0..n) as u32;
        if a == b {
            continue;
        }
        if g.insert_edge_if_absent(a, b).expect("in range") {
            let _ = g.insert_edge_if_absent(b, a);
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_matches_road_class() {
        let g = grid_road(10_000, 1);
        let davg = g.num_edges() as f64 / g.num_vertices() as f64;
        // OSM: ~2.1 directed edges per vertex before self-loops
        // (3.1 including them, as Table 2 counts).
        assert!(davg > 1.7 && davg < 2.8, "Davg = {davg:.2}");
    }

    #[test]
    fn symmetric() {
        let g = grid_road(900, 2);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(grid_road(400, 3), grid_road(400, 3));
    }

    #[test]
    fn exact_vertex_count() {
        for n in [1, 4, 100, 6000, 977] {
            assert_eq!(grid_road(n, 4).num_vertices(), n, "n = {n}");
        }
    }
}
