//! Immutable CSR snapshots consumed by the PageRank algorithms.
//!
//! A [`Snapshot`] is a frozen view of a [`DynGraph`](crate::digraph::DynGraph)
//! holding both out-adjacency (for frontier expansion: marking
//! out-neighbors as affected) and in-adjacency (for the pull-style rank
//! computation `R[v] = (1-α)/n + α · Σ R[u]/outdeg(u)` over `u ∈ in(v)`).
//! Out-degrees are cached in a dense array because every in-edge visit
//! divides by the source's out-degree.
//!
//! Snapshots are `Sync` and are shared by reference across worker threads.

use crate::csr::Csr;
use crate::types::{Edge, VertexId};

/// Frozen directed graph with out- and in-CSR plus cached out-degrees.
#[derive(Debug, Clone)]
pub struct Snapshot {
    out_csr: Csr,
    in_csr: Csr,
    out_degree: Vec<u32>,
}

impl Snapshot {
    /// Build from per-vertex sorted out-adjacency lists.
    pub fn from_adjacency(adj: &[Vec<VertexId>]) -> Self {
        let out_csr = Csr::from_adjacency(adj);
        Self::from_out_csr(out_csr)
    }

    /// Build from an edge list (sorted or not; duplicates kept).
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        Self::from_out_csr(Csr::from_edges(n, edges))
    }

    /// Build from an existing out-CSR (computes transpose + degrees).
    pub fn from_out_csr(out_csr: Csr) -> Self {
        let in_csr = out_csr.transpose();
        let n = out_csr.num_vertices();
        let mut out_degree = vec![0u32; n];
        for (v, d) in out_degree.iter_mut().enumerate() {
            *d = out_csr.degree(v as VertexId) as u32;
        }
        Snapshot {
            out_csr,
            in_csr,
            out_degree,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_csr.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_csr.num_edges()
    }

    /// Out-neighbors of `v` (sorted).
    #[inline]
    pub fn out(&self, v: VertexId) -> &[VertexId] {
        self.out_csr.neighbors(v)
    }

    /// In-neighbors of `v` (sorted).
    #[inline]
    pub fn in_(&self, v: VertexId) -> &[VertexId] {
        self.in_csr.neighbors(v)
    }

    /// Cached out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out_degree[v as usize]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_csr.degree(v)
    }

    /// Whether edge `(u, v)` is present.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_csr.has_edge(u, v)
    }

    /// Underlying out-CSR.
    pub fn out_csr(&self) -> &Csr {
        &self.out_csr
    }

    /// Underlying in-CSR.
    pub fn in_csr(&self) -> &Csr {
        &self.in_csr
    }

    /// Iterate all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out_csr.edges()
    }

    /// Number of dead ends (vertices with out-degree zero). After
    /// self-loop elimination (paper §5.1.3) this must be zero.
    pub fn dead_end_count(&self) -> usize {
        self.out_degree.iter().filter(|&&d| d == 0).count()
    }

    /// Average out-degree `|E| / |V|` (the `Davg` column of Table 2).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {0}, 3 isolated
        Snapshot::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 0)])
    }

    #[test]
    fn out_and_in_are_consistent() {
        let s = sample();
        assert_eq!(s.out(0), &[1, 2]);
        assert_eq!(s.in_(2), &[0, 1]);
        assert_eq!(s.in_(0), &[2]);
        assert_eq!(s.in_(3), &[] as &[VertexId]);
    }

    #[test]
    fn degrees_cached_correctly() {
        let s = sample();
        assert_eq!(s.out_degree(0), 2);
        assert_eq!(s.out_degree(3), 0);
        assert_eq!(s.in_degree(2), 2);
    }

    #[test]
    fn dead_end_count() {
        let s = sample();
        assert_eq!(s.dead_end_count(), 1); // vertex 3
        let s2 = Snapshot::from_edges(2, &[(0, 0), (1, 1)]);
        assert_eq!(s2.dead_end_count(), 0);
    }

    #[test]
    fn avg_degree() {
        let s = sample();
        assert!((s.avg_degree() - 1.0).abs() < 1e-12);
        let empty = Snapshot::from_edges(0, &[]);
        assert_eq!(empty.avg_degree(), 0.0);
    }

    #[test]
    fn every_out_edge_has_matching_in_edge() {
        let s = sample();
        for (u, v) in s.edges() {
            assert!(s.in_(v).contains(&u), "({u},{v}) missing from in-CSR");
        }
        let m_in: usize = (0..s.num_vertices() as VertexId)
            .map(|v| s.in_(v).len())
            .sum();
        assert_eq!(m_in, s.num_edges());
    }
}
