//! Immutable CSR snapshots consumed by the PageRank algorithms.
//!
//! A [`Snapshot`] is a frozen view of a [`DynGraph`](crate::digraph::DynGraph)
//! holding both out-adjacency (for frontier expansion: marking
//! out-neighbors as affected) and in-adjacency (for the pull-style rank
//! computation `R[v] = (1-α)/n + α · Σ R[u]/outdeg(u)` over `u ∈ in(v)`).
//! Out-degrees are cached in a dense array because every in-edge visit
//! divides by the source's out-degree.
//!
//! Snapshots are `Sync` and are shared by reference across worker threads.

use crate::batch::BatchUpdate;
use crate::csr::{Csr, RunPatch};
use crate::types::{Edge, GraphError, Result, VertexId};

/// Frozen directed graph with out- and in-CSR plus cached out-degrees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    out_csr: Csr,
    in_csr: Csr,
    out_degree: Vec<u32>,
}

impl Snapshot {
    /// Build from per-vertex sorted out-adjacency lists.
    pub fn from_adjacency(adj: &[Vec<VertexId>]) -> Self {
        let out_csr = Csr::from_adjacency(adj);
        Self::from_out_csr(out_csr)
    }

    /// Build from an edge list (sorted or not; duplicates kept).
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        Self::from_out_csr(Csr::from_edges(n, edges))
    }

    /// Build from an existing out-CSR (computes transpose + degrees).
    pub fn from_out_csr(out_csr: Csr) -> Self {
        let in_csr = out_csr.transpose();
        let n = out_csr.num_vertices();
        let mut out_degree = vec![0u32; n];
        for (v, d) in out_degree.iter_mut().enumerate() {
            *d = out_csr.degree(v as VertexId) as u32;
        }
        Snapshot {
            out_csr,
            in_csr,
            out_degree,
        }
    }

    /// Produce the snapshot of this graph **after** `batch`, patching the
    /// out-CSR, in-CSR, and out-degree array incrementally instead of
    /// rebuilding them from adjacency lists.
    ///
    /// Per-edge work is `O(|Δ| log |Δ| + Σ deg(touched))`; the untouched
    /// bulk of both CSRs is carried over with a handful of bandwidth-bound
    /// `memcpy`s (no transpose, no per-run sorting, no pointer-chasing
    /// over `Vec<Vec<_>>` adjacency) — the delta-snapshot path behind
    /// [`DynGraph::apply_batch`](crate::digraph::DynGraph::apply_batch)
    /// and `lfpr_core`'s `UpdateSession`. The full rebuild
    /// ([`Snapshot::from_adjacency`]) remains the equality-checked oracle.
    ///
    /// The batch must be valid for this snapshot: every deletion present,
    /// every insertion absent (deleting and re-inserting the same edge in
    /// one batch is allowed and nets to "present", matching
    /// `DynGraph::apply_batch`'s deletions-then-insertions order).
    pub fn apply_batch(&self, batch: &BatchUpdate) -> Result<Snapshot> {
        let mut dst = Snapshot::default();
        self.apply_batch_into(batch, &mut dst)?;
        Ok(dst)
    }

    /// [`Snapshot::apply_batch`] writing into `dst`'s buffers (cleared
    /// and reused, so a steady-state update loop stops allocating once
    /// the buffers reach their high-water capacity). On error `dst` is
    /// garbage and must not be read.
    pub fn apply_batch_into(&self, batch: &BatchUpdate, dst: &mut Snapshot) -> Result<()> {
        let n = self.num_vertices();
        for (u, v) in batch.iter_all() {
            for x in [u, v] {
                if x as usize >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: x, n });
                }
            }
        }
        // Sorted forward (by source) and reversed (by target) views.
        let mut del_f = batch.deletions.clone();
        del_f.sort_unstable();
        if let Some(w) = del_f.windows(2).find(|w| w[0] == w[1]) {
            return Err(GraphError::MissingEdge(w[1])); // second delete of one edge
        }
        let mut ins_f = batch.insertions.clone();
        ins_f.sort_unstable();
        if let Some(w) = ins_f.windows(2).find(|w| w[0] == w[1]) {
            return Err(GraphError::DuplicateEdge(w[1]));
        }
        let mut del_r: Vec<Edge> = batch.deletions.iter().map(|&(u, v)| (v, u)).collect();
        del_r.sort_unstable();
        let mut ins_r: Vec<Edge> = batch.insertions.iter().map(|&(u, v)| (v, u)).collect();
        ins_r.sort_unstable();
        let neighbor = |edges: &[Edge]| edges.iter().map(|e| e.1).collect::<Vec<VertexId>>();
        let (del_fn, ins_fn) = (neighbor(&del_f), neighbor(&ins_f));
        let (del_rn, ins_rn) = (neighbor(&del_r), neighbor(&ins_r));
        let patches_out = group_patches(&del_f, &del_fn, &ins_f, &ins_fn);
        let patches_in = group_patches(&del_r, &del_rn, &ins_r, &ins_rn);

        self.out_csr.splice_into(&patches_out, &mut dst.out_csr)?;
        // In-CSR runs are keyed by target, so flip reported edges back
        // into (source, target) orientation. A coherent snapshot can only
        // fail on the out side, but map defensively.
        self.in_csr
            .splice_into(&patches_in, &mut dst.in_csr)
            .map_err(|e| match e {
                GraphError::MissingEdge((a, b)) => GraphError::MissingEdge((b, a)),
                GraphError::DuplicateEdge((a, b)) => GraphError::DuplicateEdge((b, a)),
                other => other,
            })?;
        dst.out_degree.clear();
        dst.out_degree.extend_from_slice(&self.out_degree);
        for p in &patches_out {
            let d = &mut dst.out_degree[p.vertex as usize];
            *d = (*d + p.add.len() as u32) - p.del.len() as u32;
        }
        Ok(())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_csr.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_csr.num_edges()
    }

    /// Out-neighbors of `v` (sorted).
    #[inline]
    pub fn out(&self, v: VertexId) -> &[VertexId] {
        self.out_csr.neighbors(v)
    }

    /// In-neighbors of `v` (sorted).
    #[inline]
    pub fn in_(&self, v: VertexId) -> &[VertexId] {
        self.in_csr.neighbors(v)
    }

    /// Cached out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out_degree[v as usize]
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_csr.degree(v)
    }

    /// Whether edge `(u, v)` is present.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_csr.has_edge(u, v)
    }

    /// Underlying out-CSR.
    pub fn out_csr(&self) -> &Csr {
        &self.out_csr
    }

    /// Underlying in-CSR.
    pub fn in_csr(&self) -> &Csr {
        &self.in_csr
    }

    /// Iterate all edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out_csr.edges()
    }

    /// Number of dead ends (vertices with out-degree zero). After
    /// self-loop elimination (paper §5.1.3) this must be zero.
    pub fn dead_end_count(&self) -> usize {
        self.out_degree.iter().filter(|&&d| d == 0).count()
    }

    /// Average out-degree `|E| / |V|` (the `Davg` column of Table 2).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }
}

/// Merge sorted deletion/insertion edge lists (keyed by first
/// component) into per-vertex [`RunPatch`]es, in ascending vertex order.
/// `*_nbrs` are the second components of the corresponding edge lists.
fn group_patches<'a>(
    del: &[Edge],
    del_nbrs: &'a [VertexId],
    ins: &[Edge],
    ins_nbrs: &'a [VertexId],
) -> Vec<RunPatch<'a>> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < del.len() || j < ins.len() {
        let v = match (del.get(i), ins.get(j)) {
            (Some(&(a, _)), Some(&(b, _))) => a.min(b),
            (Some(&(a, _)), None) => a,
            (None, Some(&(b, _))) => b,
            (None, None) => unreachable!(),
        };
        let i0 = i;
        while i < del.len() && del[i].0 == v {
            i += 1;
        }
        let j0 = j;
        while j < ins.len() && ins[j].0 == v {
            j += 1;
        }
        out.push(RunPatch {
            vertex: v,
            del: &del_nbrs[i0..i],
            add: &ins_nbrs[j0..j],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {0}, 3 isolated
        Snapshot::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 0)])
    }

    #[test]
    fn out_and_in_are_consistent() {
        let s = sample();
        assert_eq!(s.out(0), &[1, 2]);
        assert_eq!(s.in_(2), &[0, 1]);
        assert_eq!(s.in_(0), &[2]);
        assert_eq!(s.in_(3), &[] as &[VertexId]);
    }

    #[test]
    fn degrees_cached_correctly() {
        let s = sample();
        assert_eq!(s.out_degree(0), 2);
        assert_eq!(s.out_degree(3), 0);
        assert_eq!(s.in_degree(2), 2);
    }

    #[test]
    fn dead_end_count() {
        let s = sample();
        assert_eq!(s.dead_end_count(), 1); // vertex 3
        let s2 = Snapshot::from_edges(2, &[(0, 0), (1, 1)]);
        assert_eq!(s2.dead_end_count(), 0);
    }

    #[test]
    fn avg_degree() {
        let s = sample();
        assert!((s.avg_degree() - 1.0).abs() < 1e-12);
        let empty = Snapshot::from_edges(0, &[]);
        assert_eq!(empty.avg_degree(), 0.0);
    }

    #[test]
    fn apply_batch_matches_full_rebuild() {
        use crate::digraph::DynGraph;
        let mut g = DynGraph::from_edges(6, vec![(0, 1), (0, 2), (1, 2), (2, 0), (4, 1)]).unwrap();
        let prev = g.snapshot();
        let batch = BatchUpdate {
            deletions: vec![(0, 2), (4, 1)],
            insertions: vec![(3, 5), (0, 4), (5, 0)],
        };
        let incremental = prev.apply_batch(&batch).unwrap();
        g.apply_batch(&batch).unwrap();
        assert_eq!(incremental, g.snapshot());
        assert_eq!(incremental.out(0), &[1, 4]);
        assert_eq!(incremental.in_(0), &[2, 5]);
        assert_eq!(incremental.out_degree(0), 2);
        assert_eq!(incremental.num_edges(), 6);
    }

    #[test]
    fn apply_batch_delete_then_reinsert_same_edge() {
        let prev = sample();
        let batch = BatchUpdate {
            deletions: vec![(0, 1)],
            insertions: vec![(0, 1)],
        };
        let next = prev.apply_batch(&batch).unwrap();
        assert_eq!(next, prev);
    }

    #[test]
    fn apply_batch_empty_is_identity() {
        let prev = sample();
        assert_eq!(prev.apply_batch(&BatchUpdate::new()).unwrap(), prev);
    }

    #[test]
    fn apply_batch_rejects_invalid() {
        let prev = sample();
        // Deleting a missing edge.
        let b = BatchUpdate::delete_only(vec![(1, 0)]);
        assert_eq!(
            prev.apply_batch(&b).unwrap_err(),
            GraphError::MissingEdge((1, 0))
        );
        // Double-deleting an existing edge.
        let b = BatchUpdate::delete_only(vec![(0, 1), (0, 1)]);
        assert_eq!(
            prev.apply_batch(&b).unwrap_err(),
            GraphError::MissingEdge((0, 1))
        );
        // Inserting a present edge.
        let b = BatchUpdate::insert_only(vec![(0, 1)]);
        assert_eq!(
            prev.apply_batch(&b).unwrap_err(),
            GraphError::DuplicateEdge((0, 1))
        );
        // Duplicate insertion of a new edge.
        let b = BatchUpdate::insert_only(vec![(3, 0), (3, 0)]);
        assert_eq!(
            prev.apply_batch(&b).unwrap_err(),
            GraphError::DuplicateEdge((3, 0))
        );
        // Out-of-range vertex.
        let b = BatchUpdate::insert_only(vec![(0, 9)]);
        assert!(matches!(
            prev.apply_batch(&b).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 9, .. }
        ));
    }

    #[test]
    fn apply_batch_into_reuses_buffers() {
        let prev = sample();
        let mut dst = Snapshot::default();
        prev.apply_batch_into(&BatchUpdate::insert_only(vec![(3, 0)]), &mut dst)
            .unwrap();
        assert_eq!(dst.num_edges(), 5);
        // Second patch into the same scratch: previous contents replaced.
        prev.apply_batch_into(&BatchUpdate::delete_only(vec![(2, 0)]), &mut dst)
            .unwrap();
        assert_eq!(dst.num_edges(), 3);
        assert_eq!(
            dst,
            prev.apply_batch(&BatchUpdate::delete_only(vec![(2, 0)]))
                .unwrap()
        );
    }

    #[test]
    fn every_out_edge_has_matching_in_edge() {
        let s = sample();
        for (u, v) in s.edges() {
            assert!(s.in_(v).contains(&u), "({u},{v}) missing from in-CSR");
        }
        let m_in: usize = (0..s.num_vertices() as VertexId)
            .map(|v| s.in_(v).len())
            .sum();
        assert_eq!(m_in, s.num_edges());
    }
}
