//! Structural statistics used by the Table-1/Table-2 harnesses and for
//! sanity-checking generated graphs against their dataset class.

use crate::snapshot::Snapshot;
use crate::types::VertexId;

/// Degree and connectivity statistics of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count |V|.
    pub n: usize,
    /// Directed edge count |E| (incl. self-loops).
    pub m: usize,
    /// Average out-degree (Table 2's Davg).
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of dead ends (must be 0 after self-loop elimination).
    pub dead_ends: usize,
    /// Number of self-loops.
    pub self_loops: usize,
}

/// Compute [`GraphStats`] in one pass.
pub fn stats(s: &Snapshot) -> GraphStats {
    let n = s.num_vertices();
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut self_loops = 0usize;
    for v in 0..n as VertexId {
        max_out = max_out.max(s.out_degree(v) as usize);
        max_in = max_in.max(s.in_degree(v));
        if s.has_edge(v, v) {
            self_loops += 1;
        }
    }
    GraphStats {
        n,
        m: s.num_edges(),
        avg_out_degree: s.avg_degree(),
        max_out_degree: max_out,
        max_in_degree: max_in,
        dead_ends: s.dead_end_count(),
        self_loops,
    }
}

/// Out-degree histogram with logarithmic (power-of-two) buckets; bucket
/// `i` counts vertices with out-degree in `[2^i, 2^(i+1))` (bucket 0 also
/// holds degree-0 vertices). Useful for verifying heavy-tailed generators.
pub fn degree_histogram(s: &Snapshot) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for v in 0..s.num_vertices() as VertexId {
        let d = s.out_degree(v) as usize;
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize - 1
        };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// Number of vertices reachable from `start` (BFS over out-edges),
/// including `start`. Used in tests to sanity-check generator
/// connectivity and by the Dynamic Traversal analysis.
pub fn reachable_count(s: &Snapshot, start: VertexId) -> usize {
    let n = s.num_vertices();
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[start as usize] = true;
    queue.push_back(start);
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        for &v in s.out(u) {
            if !visited[v as usize] {
                visited[v as usize] = true;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;

    fn sample() -> Snapshot {
        Snapshot::from_edges(4, &[(0, 0), (0, 1), (0, 2), (1, 2), (2, 0), (3, 3)])
    }

    #[test]
    fn stats_basic() {
        let st = stats(&sample());
        assert_eq!(st.n, 4);
        assert_eq!(st.m, 6);
        assert_eq!(st.max_out_degree, 3);
        assert_eq!(st.max_in_degree, 2);
        assert_eq!(st.self_loops, 2);
        assert_eq!(st.dead_ends, 0);
    }

    #[test]
    fn histogram_buckets() {
        let h = degree_histogram(&sample());
        // degrees: 3,1,1,1 → bucket0 (deg<=1): 3 vertices, bucket1 (2-3): 1
        assert_eq!(h, vec![3, 1]);
    }

    #[test]
    fn reachability() {
        let s = sample();
        assert_eq!(reachable_count(&s, 0), 3); // 0,1,2 (3 is isolated loop)
        assert_eq!(reachable_count(&s, 3), 1);
    }
}
