//! # lfpr-graph — dynamic directed-graph substrate
//!
//! This crate provides everything the PageRank algorithms in `lfpr-core`
//! need from a graph system, built from scratch:
//!
//! * an immutable **CSR snapshot** ([`Snapshot`]) with both out- and
//!   in-adjacency plus cached out-degrees (pull-style PageRank iterates over
//!   in-edges and divides by the source's out-degree),
//! * a **mutable dynamic graph** ([`DynGraph`]) supporting batch edge
//!   insertions and deletions, from which read-only snapshots are taken —
//!   the paper (§3.4) assumes interleaved update/compute phases over
//!   read-only snapshots,
//! * **batch-update generation** ([`batch`]) following the paper's protocol
//!   (§5.1.4): an equal mix of uniform-random deletions of existing edges
//!   and insertions of previously absent edges, measured as a fraction of
//!   `|E|`,
//! * **graph generators** ([`generators`]) standing in for the SuiteSparse /
//!   SNAP datasets of Tables 1–2: RMAT web/social graphs, grid road
//!   networks, k-mer chain graphs, Erdős–Rényi graphs, and timestamped
//!   temporal edge streams,
//! * **self-loop dead-end elimination** ([`selfloops`]) as the paper does
//!   (§5.1.3) to avoid the global teleport-rank correction,
//! * **streaming graph ingestion** ([`io`]): mmap + parallel byte-chunk
//!   parsing of SNAP edge lists and MatrixMarket `.mtx` files on the
//!   persistent worker pool, plus real-format fixture writers
//!   ([`io::fixtures`]) so the benches can exercise the full
//!   disk → parse → CSR → kernel path offline.
//!
//! Vertex ids are `u32` (paper §5.1.2) and edge counts `usize`.

pub mod analysis;
pub mod batch;
pub mod builder;
pub mod csr;
pub mod digraph;
pub mod gapped;
pub mod generators;
pub mod io;
pub mod partition;
pub mod reorder;
pub mod runs;
pub mod scc;
pub mod selfloops;
pub mod snapshot;
pub mod types;

pub use batch::{BatchSpec, BatchUpdate};
pub use builder::GraphBuilder;
pub use csr::Csr;
pub use digraph::DynGraph;
pub use gapped::{GappedGraph, PrevRuns, SlackStats};
pub use io::GraphFormat;
pub use partition::{Partition, PartitionStrategy};
pub use reorder::{ReorderStrategy, Reordering};
pub use runs::NeighborRuns;
pub use snapshot::Snapshot;
pub use types::{Edge, VertexId};
