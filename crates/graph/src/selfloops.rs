//! Dead-end elimination via universal self-loops.
//!
//! Dead ends (vertices with no out-links) leak rank; the standard fix adds
//! a global teleport contribution each iteration, which costs a full
//! reduction. The paper (§5.1.3) instead adds a self-loop to **every**
//! vertex: *"We eliminate this overhead by adding self-loops to all the
//! vertices in the graph"* (following Andersen et al. and Langville &
//! Meyer). We do the same, and the batch generator never deletes
//! self-loops, so the invariant holds across updates.

use crate::digraph::DynGraph;
use crate::types::VertexId;

/// Add a self-loop to every vertex that lacks one. Returns how many were
/// added.
pub fn add_self_loops(g: &mut DynGraph) -> usize {
    let mut added = 0;
    for v in 0..g.num_vertices() as VertexId {
        if g.insert_edge_if_absent(v, v).expect("vertex in range") {
            added += 1;
        }
    }
    added
}

/// Check that every vertex has a self-loop (the no-dead-end invariant).
pub fn all_have_self_loops(g: &DynGraph) -> bool {
    (0..g.num_vertices() as VertexId).all(|v| g.has_edge(v, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adds_loops_everywhere() {
        let mut g = DynGraph::new(4);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(1, 1).unwrap(); // pre-existing loop
        let added = add_self_loops(&mut g);
        assert_eq!(added, 3);
        assert!(all_have_self_loops(&g));
        assert_eq!(g.num_edges(), 5);
    }

    #[test]
    fn idempotent() {
        let mut g = DynGraph::new(3);
        add_self_loops(&mut g);
        let m = g.num_edges();
        assert_eq!(add_self_loops(&mut g), 0);
        assert_eq!(g.num_edges(), m);
    }

    #[test]
    fn eliminates_dead_ends() {
        let mut g = DynGraph::new(10);
        g.insert_edge(0, 5).unwrap();
        add_self_loops(&mut g);
        assert_eq!(g.snapshot().dead_end_count(), 0);
    }
}
