//! Fundamental graph types: vertex ids, edges, and error values.

use std::fmt;

/// Vertex identifier. The paper (§5.1.2) uses 32-bit integers for vertex
/// ids; we do the same, which halves adjacency-array memory traffic
/// compared to `usize` on 64-bit machines.
pub type VertexId = u32;

/// A directed edge `(source, target)`.
pub type Edge = (VertexId, VertexId);

/// Errors produced by graph construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex id `>= n`.
    VertexOutOfRange { vertex: VertexId, n: usize },
    /// A deletion referenced an edge that does not exist.
    MissingEdge(Edge),
    /// An insertion referenced an edge that already exists.
    DuplicateEdge(Edge),
    /// Input file could not be parsed.
    Parse(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range (n = {n})")
            }
            GraphError::MissingEdge((u, v)) => {
                write!(f, "edge ({u}, {v}) does not exist")
            }
            GraphError::DuplicateEdge((u, v)) => {
                write!(f, "edge ({u}, {v}) already exists")
            }
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 4 };
        assert!(e.to_string().contains("vertex 9"));
        let e = GraphError::MissingEdge((1, 2));
        assert!(e.to_string().contains("(1, 2)"));
        let e = GraphError::DuplicateEdge((3, 4));
        assert!(e.to_string().contains("already exists"));
        let e = GraphError::Parse("bad line".into());
        assert!(e.to_string().contains("bad line"));
    }

    #[test]
    fn vertex_id_is_u32() {
        // Guard against accidental widening: adjacency arrays double in
        // size if this becomes usize.
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
    }
}
