//! Neighbor-run abstraction over graph storage layouts.
//!
//! The PageRank kernels in `lfpr-core` only ever look at a graph through
//! five operations: vertex/edge counts, the sorted out-run and in-run of a
//! vertex, and cached out-degrees. [`NeighborRuns`] captures exactly that
//! surface so the kernels can iterate either the packed [`Snapshot`] CSR or
//! the gap-aware store ([`crate::gapped::GappedGraph`]) without caring how
//! runs are laid out in memory.
//!
//! Two invariants every implementor must uphold, because the lock-free
//! kernels depend on them for bit-identical single-thread reproducibility:
//!
//! 1. `out(v)` / `in_(v)` return the neighbors as a **contiguous slice
//!    sorted ascending** — pull-style accumulation sums in-neighbors in
//!    slice order, and float addition is not associative.
//! 2. `out_degree(u)` equals `out(u).len()` at all times (the kernels
//!    divide by it without re-deriving the run).

use crate::snapshot::Snapshot;
use crate::types::VertexId;

/// Read-only view of a directed graph as per-vertex sorted neighbor runs.
///
/// See the module docs for the invariants implementors must uphold.
pub trait NeighborRuns: Sync {
    /// Number of vertices `n`; ids are `0..n`.
    fn num_vertices(&self) -> usize;

    /// Number of directed edges `m`.
    fn num_edges(&self) -> usize;

    /// Out-neighbors of `v`, sorted ascending.
    fn out(&self, v: VertexId) -> &[VertexId];

    /// In-neighbors of `v`, sorted ascending.
    fn in_(&self, v: VertexId) -> &[VertexId];

    /// Out-degree of `v` (must equal `self.out(v).len()`).
    fn out_degree(&self, v: VertexId) -> u32;
}

impl NeighborRuns for Snapshot {
    #[inline]
    fn num_vertices(&self) -> usize {
        Snapshot::num_vertices(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        Snapshot::num_edges(self)
    }

    #[inline]
    fn out(&self, v: VertexId) -> &[VertexId] {
        Snapshot::out(self, v)
    }

    #[inline]
    fn in_(&self, v: VertexId) -> &[VertexId] {
        Snapshot::in_(self, v)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> u32 {
        Snapshot::out_degree(self, v)
    }
}

/// Shared snapshots are handed around as `Arc<Snapshot>`; let them be
/// used directly wherever a run view is expected.
impl<G: NeighborRuns + Send + ?Sized> NeighborRuns for std::sync::Arc<G> {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    #[inline]
    fn out(&self, v: VertexId) -> &[VertexId] {
        (**self).out(v)
    }

    #[inline]
    fn in_(&self, v: VertexId) -> &[VertexId] {
        (**self).in_(v)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> u32 {
        (**self).out_degree(v)
    }
}

/// Blanket impl so `&G` works wherever `G: NeighborRuns` is expected.
impl<G: NeighborRuns + ?Sized> NeighborRuns for &G {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    #[inline]
    fn out(&self, v: VertexId) -> &[VertexId] {
        (**self).out(v)
    }

    #[inline]
    fn in_(&self, v: VertexId) -> &[VertexId] {
        (**self).in_(v)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> u32 {
        (**self).out_degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total<G: NeighborRuns>(g: &G) -> usize {
        (0..g.num_vertices() as VertexId)
            .map(|v| g.out(v).len())
            .sum()
    }

    #[test]
    fn snapshot_implements_neighbor_runs() {
        let s = Snapshot::from_edges(4, &[(0, 1), (0, 2), (1, 2), (3, 0)]);
        assert_eq!(NeighborRuns::num_vertices(&s), 4);
        assert_eq!(NeighborRuns::num_edges(&s), 4);
        assert_eq!(NeighborRuns::out(&s, 0), &[1, 2]);
        assert_eq!(NeighborRuns::in_(&s, 2), &[0, 1]);
        assert_eq!(NeighborRuns::out_degree(&s, 0), 2);
        assert_eq!(total(&s), 4);
        // Blanket impl on references compiles and agrees.
        assert_eq!(total(&&s), 4);
    }
}
