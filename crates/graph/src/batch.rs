//! Batch updates Δt = (Δt−, Δt+) and the paper's random-batch generator.
//!
//! §5.1.4 of the paper: *"we take each graph and generate a random batch
//! update consisting of an equal mix of edge deletions and insertions. To
//! prepare the set of edges deleted, we delete each existing edge with a
//! uniform probability. We prepare the set of edges to insert by choosing
//! non-connected pairs of vertices with equal probability. … we ensure
//! that no new vertices are added to or removed from the graph."*
//!
//! Self-loops (added by dead-end elimination) are never deleted, so the
//! "no dead ends" invariant survives every batch.

use crate::digraph::DynGraph;
use crate::types::{Edge, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A batch update: a set of edge deletions Δt− and insertions Δt+.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchUpdate {
    /// Edges removed going from Gt−1 to Gt (must exist in Gt−1).
    pub deletions: Vec<Edge>,
    /// Edges added going from Gt−1 to Gt (must be absent from Gt−1).
    pub insertions: Vec<Edge>,
}

impl BatchUpdate {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insertion-only batch (the temporal-graph experiments of Figure 5).
    pub fn insert_only(insertions: Vec<Edge>) -> Self {
        BatchUpdate {
            deletions: Vec::new(),
            insertions,
        }
    }

    /// Deletion-only batch (the stability experiment, §5.2.3).
    pub fn delete_only(deletions: Vec<Edge>) -> Self {
        BatchUpdate {
            deletions,
            insertions: Vec::new(),
        }
    }

    /// Total number of edge updates |Δt−| + |Δt+|.
    pub fn len(&self) -> usize {
        self.deletions.len() + self.insertions.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The inverse batch: applying `self` then `self.inverse()` restores
    /// the original graph.
    pub fn inverse(&self) -> BatchUpdate {
        BatchUpdate {
            deletions: self.insertions.clone(),
            insertions: self.deletions.clone(),
        }
    }

    /// Iterate over every update edge (deletions first, then insertions),
    /// the order the algorithms scan Δt− ∪ Δt+.
    pub fn iter_all(&self) -> impl Iterator<Item = Edge> + '_ {
        self.deletions.iter().chain(self.insertions.iter()).copied()
    }

    /// Distinct source vertices appearing in the batch, deduplicated.
    pub fn sources(&self) -> Vec<VertexId> {
        let mut s: Vec<VertexId> = self.iter_all().map(|(u, _)| u).collect();
        s.sort_unstable();
        s.dedup();
        s
    }
}

/// Composition of a generated batch: what fraction of the batch is
/// deletions vs insertions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchMix {
    /// Equal mix of deletions and insertions (paper §5.1.4 default).
    Mixed,
    /// Insertions only.
    InsertOnly,
    /// Deletions only.
    DeleteOnly,
}

/// Parameters for random batch generation.
#[derive(Debug, Clone, Copy)]
pub struct BatchSpec {
    /// Batch size as a fraction of `|E|` (paper sweeps 1e-8 … 0.1).
    pub fraction: f64,
    /// Deletion/insertion composition.
    pub mix: BatchMix,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl BatchSpec {
    /// Equal-mix batch of `fraction * |E|` edges.
    pub fn mixed(fraction: f64, seed: u64) -> Self {
        BatchSpec {
            fraction,
            mix: BatchMix::Mixed,
            seed,
        }
    }

    /// Insertion-only batch.
    pub fn insert_only(fraction: f64, seed: u64) -> Self {
        BatchSpec {
            fraction,
            mix: BatchMix::InsertOnly,
            seed,
        }
    }

    /// Deletion-only batch.
    pub fn delete_only(fraction: f64, seed: u64) -> Self {
        BatchSpec {
            fraction,
            mix: BatchMix::DeleteOnly,
            seed,
        }
    }

    /// Generate a batch against the current state of `g`.
    ///
    /// The batch always has at least one edge update (the paper's smallest
    /// fraction, 1e-8 of a 37M-edge graph, is still ≥ 1 edge; on our
    /// scaled-down graphs rounding to zero would degenerate the sweep).
    pub fn generate(&self, g: &DynGraph) -> BatchUpdate {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total = ((g.num_edges() as f64 * self.fraction).round() as usize).max(1);
        let (n_del, n_ins) = match self.mix {
            BatchMix::Mixed => {
                let d = total / 2;
                (d, total - d)
            }
            BatchMix::InsertOnly => (0, total),
            BatchMix::DeleteOnly => (total, 0),
        };
        let deletions = sample_existing_edges(g, n_del, &mut rng);
        let insertions = sample_absent_edges(g, &deletions, n_ins, &mut rng);
        BatchUpdate {
            deletions,
            insertions,
        }
    }
}

/// Uniformly sample `k` distinct existing edges, excluding self-loops
/// (self-loops implement dead-end elimination and must survive batches).
fn sample_existing_edges(g: &DynGraph, k: usize, rng: &mut StdRng) -> Vec<Edge> {
    let n = g.num_vertices();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let mut chosen = Vec::with_capacity(k);
    let mut seen = std::collections::HashSet::with_capacity(k * 2);
    // Rejection-sample via random vertex weighted retry: pick a random
    // vertex, then a random out-neighbor. Vertices with higher degree are
    // oversampled relative to uniform-over-edges, so correct by retrying
    // proportionally: accept with probability deg/maxdeg.
    let max_deg = (0..n as VertexId)
        .map(|v| g.out_degree(v))
        .max()
        .unwrap_or(0);
    if max_deg == 0 {
        return Vec::new();
    }
    let mut attempts = 0usize;
    let attempt_cap = (k * 64 + 1024).saturating_mul(4);
    while chosen.len() < k && attempts < attempt_cap {
        attempts += 1;
        let u = rng.gen_range(0..n) as VertexId;
        let d = g.out_degree(u);
        if d == 0 {
            continue;
        }
        // Degree-proportional acceptance makes the (u, v) draw uniform
        // over edges.
        if rng.gen_range(0..max_deg) >= d {
            continue;
        }
        let v = g.out_neighbors(u)[rng.gen_range(0..d)];
        if u == v {
            continue; // preserve dead-end-elimination self-loops
        }
        if seen.insert((u, v)) {
            chosen.push((u, v));
        }
    }
    chosen
}

/// Uniformly sample `k` distinct vertex pairs that are non-edges in `g`
/// (and not already scheduled for deletion, so the batch stays valid), and
/// not self-loops.
fn sample_absent_edges(g: &DynGraph, deletions: &[Edge], k: usize, rng: &mut StdRng) -> Vec<Edge> {
    let n = g.num_vertices();
    if n < 2 || k == 0 {
        return Vec::new();
    }
    let del: std::collections::HashSet<Edge> = deletions.iter().copied().collect();
    let mut chosen = Vec::with_capacity(k);
    let mut seen = std::collections::HashSet::with_capacity(k * 2);
    let mut attempts = 0usize;
    let attempt_cap = (k * 64 + 1024).saturating_mul(4);
    while chosen.len() < k && attempts < attempt_cap {
        attempts += 1;
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u == v || g.has_edge(u, v) || del.contains(&(u, v)) {
            continue;
        }
        if seen.insert((u, v)) {
            chosen.push((u, v));
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi::erdos_renyi;
    use crate::selfloops::add_self_loops;

    fn test_graph() -> DynGraph {
        let mut g = erdos_renyi(200, 1500, 42);
        add_self_loops(&mut g);
        g
    }

    #[test]
    fn generated_batch_is_valid() {
        let g = test_graph();
        let batch = BatchSpec::mixed(0.01, 7).generate(&g);
        assert!(!batch.is_empty());
        for &(u, v) in &batch.deletions {
            assert!(g.has_edge(u, v), "deletion ({u},{v}) not in graph");
            assert_ne!(u, v, "self-loop scheduled for deletion");
        }
        for &(u, v) in &batch.insertions {
            assert!(!g.has_edge(u, v), "insertion ({u},{v}) already in graph");
            assert_ne!(u, v);
        }
        // Applying must succeed without error.
        let mut g2 = g.clone();
        g2.apply_batch(&batch).unwrap();
    }

    #[test]
    fn equal_mix_split() {
        let g = test_graph();
        let batch = BatchSpec::mixed(0.02, 3).generate(&g);
        let total = batch.len();
        assert!(batch.deletions.len() == total / 2);
        assert!(batch.insertions.len() == total - total / 2);
    }

    #[test]
    fn min_batch_is_one_edge() {
        let g = test_graph();
        let batch = BatchSpec::mixed(1e-12, 3).generate(&g);
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn insert_only_and_delete_only() {
        let g = test_graph();
        let bi = BatchSpec::insert_only(0.01, 5).generate(&g);
        assert!(bi.deletions.is_empty() && !bi.insertions.is_empty());
        let bd = BatchSpec::delete_only(0.01, 5).generate(&g);
        assert!(bd.insertions.is_empty() && !bd.deletions.is_empty());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let g = test_graph();
        let a = BatchSpec::mixed(0.01, 11).generate(&g);
        let b = BatchSpec::mixed(0.01, 11).generate(&g);
        assert_eq!(a, b);
        let c = BatchSpec::mixed(0.01, 12).generate(&g);
        assert_ne!(a, c);
    }

    #[test]
    fn inverse_restores_graph() {
        let g0 = test_graph();
        let mut g = g0.clone();
        let batch = BatchSpec::mixed(0.05, 9).generate(&g);
        g.apply_batch(&batch).unwrap();
        g.apply_batch(&batch.inverse()).unwrap();
        assert_eq!(g, g0);
    }

    #[test]
    fn self_loops_survive_batches() {
        let g0 = test_graph();
        let mut g = g0.clone();
        let batch = BatchSpec::mixed(0.1, 13).generate(&g);
        g.apply_batch(&batch).unwrap();
        for v in 0..g.num_vertices() as VertexId {
            assert!(g.has_edge(v, v), "self-loop of {v} lost");
        }
        assert_eq!(g.snapshot().dead_end_count(), 0);
    }

    #[test]
    fn sources_deduplicated_and_sorted() {
        let b = BatchUpdate {
            deletions: vec![(3, 1), (1, 2)],
            insertions: vec![(3, 4), (0, 5)],
        };
        assert_eq!(b.sources(), vec![0, 1, 3]);
    }
}
