//! Batch-locality vertex reordering: renumber vertices at load time so
//! that structurally close vertices get nearby ids.
//!
//! The session's active filter tracks dirty vertices in 64-wide granules
//! and the gapped store rebalances 64-vertex granules; both profit when
//! the vertices an update batch perturbs share granules. Raw dataset ids
//! carry no locality, so we renumber once at load time and translate ids
//! at the serve boundary (`src/serve.rs`); the wire protocol is untouched
//! and clients keep speaking external (original) ids.
//!
//! Two strategies, both deterministic:
//!
//! * **degree** — descending out-degree, ties by original id. Hubs (which
//!   most batches touch) share the first granules, so the active filter's
//!   dirty set stays dense.
//! * **bfs** — breadth-first from the highest-out-degree vertex, restarting
//!   at the next unvisited vertex in degree order. Neighborhoods become
//!   contiguous id ranges, so the affected ball of a batch edge lands in
//!   few granules (the classic bandwidth-reduction effect).

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::digraph::DynGraph;
use crate::types::VertexId;

/// Which renumbering to apply at load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderStrategy {
    /// Keep original ids (identity mapping; no translation overhead).
    #[default]
    None,
    /// Descending out-degree, ties by original id.
    Degree,
    /// BFS from the max-out-degree vertex; restarts in degree order.
    Bfs,
}

impl FromStr for ReorderStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(ReorderStrategy::None),
            "degree" => Ok(ReorderStrategy::Degree),
            "bfs" => Ok(ReorderStrategy::Bfs),
            other => Err(format!(
                "unknown reorder strategy '{other}' (expected none|degree|bfs)"
            )),
        }
    }
}

impl fmt::Display for ReorderStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReorderStrategy::None => "none",
            ReorderStrategy::Degree => "degree",
            ReorderStrategy::Bfs => "bfs",
        })
    }
}

/// A bijective renumbering of `0..n`.
///
/// `perm[external] = internal` and `inv[internal] = external`. "External"
/// ids are the dataset/client-facing ids; "internal" ids are what every
/// layer behind the serve boundary (graph, session, WAL, checkpoints)
/// uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reordering {
    perm: Vec<VertexId>,
    inv: Vec<VertexId>,
}

impl Reordering {
    /// Build from an external→internal permutation vector. Errors unless
    /// `perm` is a bijection on `0..perm.len()`.
    pub fn from_perm(perm: Vec<VertexId>) -> Result<Self, String> {
        let n = perm.len();
        let mut inv = vec![VertexId::MAX; n];
        for (ext, &int) in perm.iter().enumerate() {
            if int as usize >= n {
                return Err(format!("permutation entry {int} out of range (n = {n})"));
            }
            if inv[int as usize] != VertexId::MAX {
                return Err(format!("permutation maps two vertices to {int}"));
            }
            inv[int as usize] = ext as VertexId;
        }
        Ok(Reordering { perm, inv })
    }

    /// Compute the permutation `strategy` assigns to `g`'s vertices.
    /// Returns `None` for [`ReorderStrategy::None`] — callers skip
    /// translation entirely instead of paying an identity map.
    pub fn compute(strategy: ReorderStrategy, g: &DynGraph) -> Option<Self> {
        let n = g.num_vertices();
        match strategy {
            ReorderStrategy::None => None,
            ReorderStrategy::Degree => {
                let mut order: Vec<VertexId> = (0..n as VertexId).collect();
                order.sort_by_key(|&v| (std::cmp::Reverse(g.out_degree(v)), v));
                Some(Self::from_order(&order))
            }
            ReorderStrategy::Bfs => {
                let mut seed_order: Vec<VertexId> = (0..n as VertexId).collect();
                seed_order.sort_by_key(|&v| (std::cmp::Reverse(g.out_degree(v)), v));
                let mut order = Vec::with_capacity(n);
                let mut visited = vec![false; n];
                let mut queue = VecDeque::new();
                for &seed in &seed_order {
                    if visited[seed as usize] {
                        continue;
                    }
                    visited[seed as usize] = true;
                    queue.push_back(seed);
                    while let Some(u) = queue.pop_front() {
                        order.push(u);
                        for &v in g.out_neighbors(u) {
                            if !visited[v as usize] {
                                visited[v as usize] = true;
                                queue.push_back(v);
                            }
                        }
                    }
                }
                Some(Self::from_order(&order))
            }
        }
    }

    /// `order[i]` = the external vertex that becomes internal id `i`.
    fn from_order(order: &[VertexId]) -> Self {
        let mut perm = vec![0 as VertexId; order.len()];
        for (int, &ext) in order.iter().enumerate() {
            perm[ext as usize] = int as VertexId;
        }
        Reordering {
            perm,
            inv: order.to_vec(),
        }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// True when the mapping covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// External (client-facing) id → internal id. Ids outside `0..n` pass
    /// through unchanged: the layers behind the boundary produce the same
    /// out-of-range error they would for the untranslated id, and that
    /// error must name the id the client sent.
    #[inline]
    pub fn to_internal(&self, ext: VertexId) -> VertexId {
        match self.perm.get(ext as usize) {
            Some(&int) => int,
            None => ext,
        }
    }

    /// Internal id → external (client-facing) id; out-of-range ids pass
    /// through unchanged.
    #[inline]
    pub fn to_external(&self, int: VertexId) -> VertexId {
        match self.inv.get(int as usize) {
            Some(&ext) => ext,
            None => int,
        }
    }

    /// The external→internal permutation, for checkpoint persistence.
    pub fn perm(&self) -> &[VertexId] {
        &self.perm
    }

    /// Renumber a graph into internal id space.
    pub fn apply(&self, g: &DynGraph) -> DynGraph {
        let n = g.num_vertices();
        assert_eq!(n, self.len(), "reordering covers a different vertex count");
        let edges: Vec<(VertexId, VertexId)> = g
            .edges()
            .map(|(u, v)| (self.to_internal(u), self.to_internal(v)))
            .collect();
        DynGraph::from_edges(n, edges).expect("permuting a valid graph stays valid")
    }

    /// Permute an internal-id-indexed rank vector back to external
    /// indexing (`result[ext] = ranks[to_internal(ext)]`).
    pub fn ranks_to_external(&self, ranks: &[f64]) -> Vec<f64> {
        assert_eq!(ranks.len(), self.len());
        self.perm.iter().map(|&int| ranks[int as usize]).collect()
    }
}

/// Shared handle used at the serve boundary (`None` = no reordering).
pub type SharedReordering = Option<Arc<Reordering>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DynGraph {
        // 1 is the hub: out-degree 3; then 0 (2), rest below.
        DynGraph::from_edges(5, vec![(0, 1), (0, 2), (1, 0), (1, 2), (1, 3), (4, 4)]).unwrap()
    }

    #[test]
    fn degree_ordering_puts_hubs_first() {
        let g = sample();
        let r = Reordering::compute(ReorderStrategy::Degree, &g).unwrap();
        assert_eq!(r.to_internal(1), 0, "hub gets internal id 0");
        assert_eq!(r.to_internal(0), 1);
        // Bijection round-trips.
        for v in 0..5u32 {
            assert_eq!(r.to_external(r.to_internal(v)), v);
        }
    }

    #[test]
    fn bfs_ordering_is_a_bijection_reaching_isolated_vertices() {
        let g = sample();
        let r = Reordering::compute(ReorderStrategy::Bfs, &g).unwrap();
        let mut seen = [false; 5];
        for v in 0..5u32 {
            let int = r.to_internal(v);
            assert!(!seen[int as usize]);
            seen[int as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // BFS from hub 1: 1 first, then its neighbors contiguous.
        assert_eq!(r.to_internal(1), 0);
    }

    #[test]
    fn none_strategy_yields_no_mapping() {
        assert!(Reordering::compute(ReorderStrategy::None, &sample()).is_none());
    }

    #[test]
    fn apply_preserves_structure_under_renumbering() {
        let g = sample();
        let r = Reordering::compute(ReorderStrategy::Degree, &g).unwrap();
        let h = r.apply(&g);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(h.has_edge(r.to_internal(u), r.to_internal(v)));
        }
    }

    #[test]
    fn out_of_range_ids_pass_through() {
        let g = sample();
        let r = Reordering::compute(ReorderStrategy::Degree, &g).unwrap();
        assert_eq!(r.to_internal(99), 99);
        assert_eq!(r.to_external(99), 99);
    }

    #[test]
    fn from_perm_validates_bijection() {
        assert!(Reordering::from_perm(vec![0, 1, 2]).is_ok());
        assert!(Reordering::from_perm(vec![0, 0, 2]).is_err());
        assert!(Reordering::from_perm(vec![0, 5, 2]).is_err());
    }

    #[test]
    fn ranks_translate_back_to_external_indexing() {
        let g = sample();
        let r = Reordering::compute(ReorderStrategy::Degree, &g).unwrap();
        // internal-indexed ranks: internal id i holds 100 + i
        let internal: Vec<f64> = (0..5).map(|i| 100.0 + i as f64).collect();
        let external = r.ranks_to_external(&internal);
        for ext in 0..5u32 {
            assert_eq!(external[ext as usize], 100.0 + r.to_internal(ext) as f64);
        }
    }

    #[test]
    fn strategy_parses_and_displays() {
        for s in [
            ReorderStrategy::None,
            ReorderStrategy::Degree,
            ReorderStrategy::Bfs,
        ] {
            assert_eq!(s.to_string().parse::<ReorderStrategy>().unwrap(), s);
        }
        assert!("nope".parse::<ReorderStrategy>().is_err());
    }
}
