//! Mutable dynamic directed graph with batch edge updates.
//!
//! `DynGraph` is the mutable side of the substrate: it supports single-edge
//! and batched insertions/deletions, and produces immutable
//! [`Snapshot`](crate::snapshot::Snapshot)s for the compute phase, matching
//! the paper's interleaved update/compute model (§3.4).
//!
//! Adjacency is stored per-vertex as a sorted `Vec<VertexId>`, so edge
//! membership is `O(log d)` and inserts/deletes are `O(d)` — good enough
//! for the batch-dynamic setting where batches are small relative to `|E|`.

use crate::batch::BatchUpdate;
use crate::snapshot::Snapshot;
use crate::types::{Edge, GraphError, Result, VertexId};

/// A mutable directed graph over a fixed vertex set `0..n`.
///
/// The paper assumes no vertex additions/removals (§3.4); the vertex count
/// is fixed at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynGraph {
    out: Vec<Vec<VertexId>>, // sorted
    m: usize,
}

impl DynGraph {
    /// An edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        DynGraph {
            out: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Construct from a strictly sorted, deduplicated edge list.
    pub(crate) fn from_sorted_edges(n: usize, edges: &[Edge]) -> Self {
        let mut out = vec![Vec::new(); n];
        for &(u, v) in edges {
            out[u as usize].push(v);
        }
        DynGraph {
            out,
            m: edges.len(),
        }
    }

    /// Build from an arbitrary edge list: validates vertex ids against
    /// `n`, then sorts and deduplicates. This is the single merge point
    /// for every loader (streaming and buffered) and the builder.
    pub fn from_edges(n: usize, mut edges: Vec<Edge>) -> Result<Self> {
        for &(u, v) in &edges {
            let bad = if (u as usize) >= n {
                Some(u)
            } else if (v as usize) >= n {
                Some(v)
            } else {
                None
            };
            if let Some(vertex) = bad {
                return Err(GraphError::VertexOutOfRange { vertex, n });
            }
        }
        sort_dedup(&mut edges);
        Ok(DynGraph::from_sorted_edges(n, &edges))
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Sorted out-neighbors of `u`.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.out[u as usize]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out[u as usize].len()
    }

    /// Whether `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out[u as usize].binary_search(&v).is_ok()
    }

    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if (v as usize) < self.out.len() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.out.len(),
            })
        }
    }

    /// Insert edge `(u, v)`. Errors if it already exists.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        match self.out[u as usize].binary_search(&v) {
            Ok(_) => Err(GraphError::DuplicateEdge((u, v))),
            Err(pos) => {
                self.out[u as usize].insert(pos, v);
                self.m += 1;
                Ok(())
            }
        }
    }

    /// Insert edge `(u, v)` if absent; returns whether it was inserted.
    pub fn insert_edge_if_absent(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        match self.insert_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Delete edge `(u, v)`. Errors if it does not exist.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        match self.out[u as usize].binary_search(&v) {
            Ok(pos) => {
                self.out[u as usize].remove(pos);
                self.m -= 1;
                Ok(())
            }
            Err(_) => Err(GraphError::MissingEdge((u, v))),
        }
    }

    /// Apply a batch update: all deletions then all insertions.
    ///
    /// Deletions of missing edges and insertions of existing edges are
    /// rejected with an error and the graph is left partially updated, so
    /// callers should validate batches (the generators in
    /// [`batch`](crate::batch) always produce valid batches).
    pub fn apply_batch(&mut self, batch: &BatchUpdate) -> Result<()> {
        for &(u, v) in &batch.deletions {
            self.delete_edge(u, v)?;
        }
        for &(u, v) in &batch.insertions {
            self.insert_edge(u, v)?;
        }
        Ok(())
    }

    /// Apply the inverse of a batch (re-insert deletions, remove
    /// insertions), restoring the pre-batch graph. Used by the stability
    /// experiment (§5.2.3).
    pub fn revert_batch(&mut self, batch: &BatchUpdate) -> Result<()> {
        for &(u, v) in &batch.insertions {
            self.delete_edge(u, v)?;
        }
        for &(u, v) in &batch.deletions {
            self.insert_edge(u, v)?;
        }
        Ok(())
    }

    /// Grow the vertex set to `new_n` vertices (ids `old_n..new_n` are
    /// added with empty adjacency). Supports the paper's future-work
    /// extension (§6): vertex additions in the dynamic setting. Shrinking
    /// is not supported; `new_n < n` is a no-op.
    pub fn grow(&mut self, new_n: usize) {
        if new_n > self.out.len() {
            self.out.resize(new_n, Vec::new());
        }
    }

    /// Delete every edge incident to `v` (both directions), isolating it.
    /// Returns the removed edges as a batch-compatible list. `O(|E|)` —
    /// intended for the vertex-removal extension, not hot paths.
    pub fn isolate_vertex(&mut self, v: VertexId) -> Vec<Edge> {
        let mut removed: Vec<Edge> = Vec::new();
        // Outgoing edges.
        let outs = std::mem::take(&mut self.out[v as usize]);
        for &w in &outs {
            removed.push((v, w));
        }
        self.m -= outs.len();
        // Incoming edges: scan all sources (no reverse index on the
        // mutable graph).
        for u in 0..self.out.len() {
            if u as VertexId == v {
                continue;
            }
            if let Ok(pos) = self.out[u].binary_search(&v) {
                self.out[u].remove(pos);
                self.m -= 1;
                removed.push((u as VertexId, v));
            }
        }
        removed
    }

    /// Iterate all edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, list)| list.iter().map(move |&v| (u as VertexId, v)))
    }

    /// Take an immutable CSR snapshot (out + in adjacency).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_adjacency(&self.out)
    }
}

/// Sort and deduplicate an edge list in place — the normal form
/// expected by [`DynGraph::from_sorted_edges`] and CSR construction.
pub(crate) fn sort_dedup(edges: &mut Vec<Edge>) {
    edges.sort_unstable();
    edges.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchUpdate;

    fn triangle() -> DynGraph {
        let mut g = DynGraph::new(3);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(1, 2).unwrap();
        g.insert_edge(2, 0).unwrap();
        g
    }

    #[test]
    fn from_edges_sorts_dedups_and_validates() {
        let g = DynGraph::from_edges(4, vec![(2, 0), (0, 1), (2, 0), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(2), &[0]);
        assert!(matches!(
            DynGraph::from_edges(2, vec![(0, 5)]),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
        assert!(matches!(
            DynGraph::from_edges(2, vec![(7, 0)]),
            Err(GraphError::VertexOutOfRange { vertex: 7, .. })
        ));
        // n larger than any id: trailing isolated vertices survive.
        let g = DynGraph::from_edges(10, vec![(0, 1)]).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn insert_and_query() {
        let g = triangle();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn insert_duplicate_rejected() {
        let mut g = triangle();
        assert_eq!(
            g.insert_edge(0, 1).unwrap_err(),
            GraphError::DuplicateEdge((0, 1))
        );
        assert!(!g.insert_edge_if_absent(0, 1).unwrap());
        assert!(g.insert_edge_if_absent(0, 2).unwrap());
    }

    #[test]
    fn delete_missing_rejected() {
        let mut g = triangle();
        assert_eq!(
            g.delete_edge(0, 2).unwrap_err(),
            GraphError::MissingEdge((0, 2))
        );
        g.delete_edge(0, 1).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn neighbors_stay_sorted_under_mutation() {
        let mut g = DynGraph::new(5);
        for v in [4, 1, 3, 0, 2] {
            g.insert_edge(0, v).unwrap();
        }
        assert_eq!(g.out_neighbors(0), &[0, 1, 2, 3, 4]);
        g.delete_edge(0, 2).unwrap();
        assert_eq!(g.out_neighbors(0), &[0, 1, 3, 4]);
    }

    #[test]
    fn apply_then_revert_is_identity() {
        let mut g = triangle();
        let before = g.clone();
        let batch = BatchUpdate {
            deletions: vec![(0, 1)],
            insertions: vec![(1, 0), (0, 2)],
        };
        g.apply_batch(&batch).unwrap();
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 1));
        g.revert_batch(&batch).unwrap();
        assert_eq!(g, before);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = DynGraph::new(2);
        assert!(matches!(
            g.insert_edge(0, 9),
            Err(GraphError::VertexOutOfRange { vertex: 9, .. })
        ));
    }

    #[test]
    fn edges_iterator_sorted() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn grow_adds_isolated_vertices() {
        let mut g = triangle();
        g.grow(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(4), 0);
        g.insert_edge(4, 0).unwrap();
        assert!(g.has_edge(4, 0));
        // Shrinking is a no-op.
        g.grow(2);
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn isolate_vertex_removes_all_incident_edges() {
        let mut g = triangle();
        g.insert_edge(0, 2).unwrap();
        let removed = g.isolate_vertex(2);
        assert_eq!(g.num_edges(), 1); // only (0,1) remains
        assert!(!g.has_edge(1, 2) && !g.has_edge(2, 0) && !g.has_edge(0, 2));
        let mut removed_sorted = removed.clone();
        removed_sorted.sort_unstable();
        assert_eq!(removed_sorted, vec![(0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn snapshot_matches_dyn() {
        let g = triangle();
        let s = g.snapshot();
        assert_eq!(s.num_vertices(), 3);
        assert_eq!(s.num_edges(), 3);
        assert_eq!(s.out(0), &[1]);
        assert_eq!(s.in_(0), &[2]);
    }
}
