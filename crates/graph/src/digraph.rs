//! Mutable dynamic directed graph with batch edge updates.
//!
//! `DynGraph` is the mutable side of the substrate: it supports single-edge
//! and batched insertions/deletions, and produces immutable
//! [`Snapshot`]s for the compute phase, matching
//! the paper's interleaved update/compute model (§3.4).
//!
//! Adjacency is stored per-vertex as a sorted `Vec<VertexId>`, so edge
//! membership is `O(log d)` and inserts/deletes are `O(d)` — good enough
//! for the batch-dynamic setting where batches are small relative to `|E|`.

use crate::batch::BatchUpdate;
use crate::snapshot::Snapshot;
use crate::types::{Edge, GraphError, Result, VertexId};
use std::collections::HashSet;
use std::sync::Arc;

/// A mutable directed graph over a fixed vertex set `0..n`.
///
/// The paper assumes no vertex additions/removals (§3.4); the vertex count
/// is fixed at construction.
///
/// The graph keeps its own CSR snapshot coherent across
/// [`apply_batch`](Self::apply_batch) calls: the first
/// [`snapshot_shared`](Self::snapshot_shared) builds it in full, and every
/// subsequent batch patches it incrementally via
/// [`Snapshot::apply_batch_into`] instead of re-deriving both CSRs and the
/// transpose from scratch. Ad-hoc single-edge mutations invalidate the
/// cache (the next `snapshot_shared` rebuilds).
#[derive(Debug, Clone)]
pub struct DynGraph {
    out: Vec<Vec<VertexId>>, // sorted
    m: usize,
    /// Coherent CSR snapshot of the current adjacency, shared with
    /// readers (rank sessions) via `Arc`.
    cached: Option<Arc<Snapshot>>,
    /// Buffers of a retired snapshot, recycled as the patch destination
    /// of the next incremental batch (steady-state: zero allocation).
    retired: Option<Snapshot>,
    /// Lazy snapshot maintenance: instead of splicing the cached CSR on
    /// every batch (O(n + m) bulk copy), accumulate the composed delta
    /// since the cache was valid and splice once when a snapshot is
    /// actually requested. This is what makes gapped-store sessions
    /// O(|Δ|) per commit: with no reader attached, nothing packed is
    /// rebuilt at all.
    lazy: bool,
    /// Composed pending delta relative to `cached` (disjoint sets; a
    /// deletion cancels a pending insertion and vice versa).
    pending_del: HashSet<Edge>,
    pending_ins: HashSet<Edge>,
}

/// Equality is over the graph itself (adjacency + edge count); the
/// snapshot cache and recycling scratch are representation details.
impl PartialEq for DynGraph {
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m && self.out == other.out
    }
}

impl Eq for DynGraph {}

impl DynGraph {
    /// An edgeless graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        DynGraph {
            out: vec![Vec::new(); n],
            m: 0,
            cached: None,
            retired: None,
            lazy: false,
            pending_del: HashSet::new(),
            pending_ins: HashSet::new(),
        }
    }

    /// Construct from a strictly sorted, deduplicated edge list.
    pub(crate) fn from_sorted_edges(n: usize, edges: &[Edge]) -> Self {
        let mut out = vec![Vec::new(); n];
        for &(u, v) in edges {
            out[u as usize].push(v);
        }
        DynGraph {
            out,
            m: edges.len(),
            cached: None,
            retired: None,
            lazy: false,
            pending_del: HashSet::new(),
            pending_ins: HashSet::new(),
        }
    }

    /// Build from an arbitrary edge list: validates vertex ids against
    /// `n`, then sorts and deduplicates. This is the single merge point
    /// for every loader (streaming and buffered) and the builder.
    pub fn from_edges(n: usize, mut edges: Vec<Edge>) -> Result<Self> {
        validate_edge_ids(n, &edges)?;
        sort_dedup(&mut edges);
        Ok(DynGraph::from_sorted_edges(n, &edges))
    }

    /// Build from an edge list the caller already sorted and
    /// deduplicated (the streaming loader's parallel bucket sort ends
    /// here). Ids are validated exactly like
    /// [`from_edges`](Self::from_edges); sortedness is the caller's
    /// contract, checked in debug builds only.
    pub fn from_presorted_edges(n: usize, edges: Vec<Edge>) -> Result<Self> {
        validate_edge_ids(n, &edges)?;
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "from_presorted_edges given unsorted or duplicated edges"
        );
        Ok(DynGraph::from_sorted_edges(n, &edges))
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Sorted out-neighbors of `u`.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.out[u as usize]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out[u as usize].len()
    }

    /// Whether `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out[u as usize].binary_search(&v).is_ok()
    }

    /// Switch lazy snapshot maintenance on or off. Turning it on defers
    /// cached-CSR splicing to the next [`snapshot_shared`](Self::snapshot_shared);
    /// turning it off flushes nothing — the next snapshot request settles
    /// any pending delta either way.
    pub fn set_lazy(&mut self, lazy: bool) {
        self.lazy = lazy;
    }

    /// Number of composed pending edge changes awaiting the next flush.
    pub fn pending_len(&self) -> usize {
        self.pending_del.len() + self.pending_ins.len()
    }

    /// Drop the cached snapshot and any pending delta (the delta is
    /// meaningless without the cache it is relative to).
    fn invalidate(&mut self) {
        self.cached = None;
        self.pending_del.clear();
        self.pending_ins.clear();
    }

    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if (v as usize) < self.out.len() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.out.len(),
            })
        }
    }

    /// Insert edge `(u, v)`. Errors if it already exists. Invalidates
    /// the cached snapshot (use [`apply_batch`](Self::apply_batch) to
    /// keep it coherent incrementally).
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        match self.out[u as usize].binary_search(&v) {
            Ok(_) => Err(GraphError::DuplicateEdge((u, v))),
            Err(pos) => {
                self.out[u as usize].insert(pos, v);
                self.m += 1;
                self.invalidate();
                Ok(())
            }
        }
    }

    /// Insert edge `(u, v)` if absent; returns whether it was inserted.
    pub fn insert_edge_if_absent(&mut self, u: VertexId, v: VertexId) -> Result<bool> {
        match self.insert_edge(u, v) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Delete edge `(u, v)`. Errors if it does not exist. Invalidates
    /// the cached snapshot (use [`apply_batch`](Self::apply_batch) to
    /// keep it coherent incrementally).
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        match self.out[u as usize].binary_search(&v) {
            Ok(pos) => {
                self.out[u as usize].remove(pos);
                self.m -= 1;
                self.invalidate();
                Ok(())
            }
            Err(_) => Err(GraphError::MissingEdge((u, v))),
        }
    }

    /// Check that applying `batch` (all deletions, then all insertions,
    /// in list order) would succeed on the current graph without
    /// touching it: every vertex in range, every deletion present and
    /// not repeated, every insertion absent (or deleted earlier in the
    /// same batch) and not repeated.
    pub fn validate_batch(&self, batch: &BatchUpdate) -> Result<()> {
        use std::collections::HashSet;
        for (u, v) in batch.iter_all() {
            self.check_vertex(u)?;
            self.check_vertex(v)?;
        }
        let mut dels: HashSet<Edge> = HashSet::with_capacity(batch.deletions.len());
        for &(u, v) in &batch.deletions {
            if !self.has_edge(u, v) || !dels.insert((u, v)) {
                return Err(GraphError::MissingEdge((u, v)));
            }
        }
        let mut ins: HashSet<Edge> = HashSet::with_capacity(batch.insertions.len());
        for &(u, v) in &batch.insertions {
            let vacant = !self.has_edge(u, v) || dels.contains(&(u, v));
            if !vacant || !ins.insert((u, v)) {
                return Err(GraphError::DuplicateEdge((u, v)));
            }
        }
        Ok(())
    }

    /// Apply a batch update: all deletions then all insertions,
    /// **all-or-nothing**. The whole batch is validated up front
    /// ([`validate_batch`](Self::validate_batch)); on error the graph is
    /// left exactly as it was. A coherent cached snapshot is patched
    /// incrementally (cost ∝ |Δ| plus a bulk copy) rather than dropped.
    pub fn apply_batch(&mut self, batch: &BatchUpdate) -> Result<()> {
        self.validate_batch(batch)?;
        if self.lazy && self.cached.is_some() {
            // Lazy mode: compose the batch into the pending delta instead
            // of splicing the cached CSR. Validation against the current
            // adjacency guarantees the composition is consistent: a
            // deleted edge is either pending-inserted (cancel) or present
            // in the cache (record), and symmetrically for insertions.
            for &e in &batch.deletions {
                if !self.pending_ins.remove(&e) {
                    self.pending_del.insert(e);
                }
            }
            for &e in &batch.insertions {
                if !self.pending_del.remove(&e) {
                    self.pending_ins.insert(e);
                }
            }
        } else if let Some(prev) = self.cached.take() {
            // Patch the coherent snapshot first — it describes the
            // pre-batch graph. Validation guarantees the patch cannot
            // fail; the defensive arm drops the cache so the next reader
            // rebuilds.
            let mut dst = self.retired.take().unwrap_or_default();
            if prev.apply_batch_into(batch, &mut dst).is_ok() {
                self.cached = Some(Arc::new(dst));
            }
        }
        for &(u, v) in &batch.deletions {
            let pos = self.out[u as usize]
                .binary_search(&v)
                .expect("validated deletion must exist");
            self.out[u as usize].remove(pos);
            self.m -= 1;
        }
        for &(u, v) in &batch.insertions {
            let pos = self.out[u as usize]
                .binary_search(&v)
                .expect_err("validated insertion must be absent");
            self.out[u as usize].insert(pos, v);
            self.m += 1;
        }
        if self.pending_len() == 0 {
            if let Some(s) = &self.cached {
                debug_assert_eq!(s.num_edges(), self.m);
                debug_assert_eq!(*s.as_ref(), Snapshot::from_adjacency(&self.out));
            }
        }
        Ok(())
    }

    /// Apply the inverse of a batch (re-insert deletions, remove
    /// insertions), restoring the pre-batch graph. Used by the stability
    /// experiment (§5.2.3). All-or-nothing, like
    /// [`apply_batch`](Self::apply_batch).
    pub fn revert_batch(&mut self, batch: &BatchUpdate) -> Result<()> {
        self.apply_batch(&batch.inverse())
    }

    /// Grow the vertex set to `new_n` vertices (ids `old_n..new_n` are
    /// added with empty adjacency). Supports the paper's future-work
    /// extension (§6): vertex additions in the dynamic setting. Shrinking
    /// is not supported; `new_n < n` is a no-op.
    pub fn grow(&mut self, new_n: usize) {
        if new_n > self.out.len() {
            self.out.resize(new_n, Vec::new());
            self.invalidate();
        }
    }

    /// Delete every edge incident to `v` (both directions), isolating it.
    /// Returns the removed edges as a batch-compatible list. `O(|E|)` —
    /// intended for the vertex-removal extension, not hot paths.
    pub fn isolate_vertex(&mut self, v: VertexId) -> Vec<Edge> {
        self.invalidate();
        let mut removed: Vec<Edge> = Vec::new();
        // Outgoing edges.
        let outs = std::mem::take(&mut self.out[v as usize]);
        for &w in &outs {
            removed.push((v, w));
        }
        self.m -= outs.len();
        // Incoming edges: scan all sources (no reverse index on the
        // mutable graph).
        for u in 0..self.out.len() {
            if u as VertexId == v {
                continue;
            }
            if let Ok(pos) = self.out[u].binary_search(&v) {
                self.out[u].remove(pos);
                self.m -= 1;
                removed.push((u as VertexId, v));
            }
        }
        removed
    }

    /// Iterate all edges in sorted order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, list)| list.iter().map(move |&v| (u as VertexId, v)))
    }

    /// Take an immutable CSR snapshot (out + in adjacency) by full
    /// rebuild. This is the `O(n + m)` oracle path; long-running update
    /// loops should use [`snapshot_shared`](Self::snapshot_shared) +
    /// [`apply_batch`](Self::apply_batch), which keep a coherent
    /// snapshot patched incrementally.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_adjacency(&self.out)
    }

    /// The coherent shared snapshot of the current graph: returns the
    /// cached `Arc` when valid (O(1)), otherwise rebuilds once and
    /// caches. Subsequent [`apply_batch`](Self::apply_batch) calls keep
    /// it up to date incrementally.
    pub fn snapshot_shared(&mut self) -> Arc<Snapshot> {
        if self.pending_len() > 0 {
            self.flush_pending();
        }
        if let Some(s) = &self.cached {
            return Arc::clone(s);
        }
        let s = Arc::new(self.snapshot());
        self.cached = Some(Arc::clone(&s));
        s
    }

    /// Settle the composed pending delta into the cached snapshot with a
    /// single splice (one O(n + m) copy for any number of deferred
    /// batches). Falls back to a full rebuild if the patch fails.
    fn flush_pending(&mut self) {
        let Some(prev) = self.cached.take() else {
            self.pending_del.clear();
            self.pending_ins.clear();
            return; // no base: next snapshot_shared rebuilds in full
        };
        let mut batch = BatchUpdate {
            deletions: self.pending_del.drain().collect(),
            insertions: self.pending_ins.drain().collect(),
        };
        // HashSet iteration order is arbitrary; sort for a deterministic
        // splice (apply_batch_into sorts its scratch views anyway, but
        // determinism here keeps behavior reproducible under debugging).
        batch.deletions.sort_unstable();
        batch.insertions.sort_unstable();
        let mut dst = self.retired.take().unwrap_or_default();
        if prev.apply_batch_into(&batch, &mut dst).is_ok() {
            debug_assert_eq!(dst, Snapshot::from_adjacency(&self.out));
            self.cached = Some(Arc::new(dst));
        }
    }

    /// The cached coherent snapshot, if one is currently valid (a lazy
    /// pending delta makes the cache stale until the next flush).
    pub fn cached_snapshot(&self) -> Option<&Arc<Snapshot>> {
        if self.pending_len() > 0 {
            None
        } else {
            self.cached.as_ref()
        }
    }

    /// Restore the coherent cache after ad-hoc mutations by patching
    /// `prev` (the snapshot of this graph **before** the mutations) with
    /// the recorded `batch`, reusing retired buffers. Returns whether
    /// the patch succeeded *and* reproduces the mutated graph; on
    /// `false` the cache stays invalid and the next
    /// [`snapshot_shared`](Self::snapshot_shared) rebuilds in full.
    pub fn reprime_snapshot(&mut self, prev: &Snapshot, batch: &BatchUpdate) -> bool {
        self.pending_del.clear();
        self.pending_ins.clear();
        let mut dst = self.retired.take().unwrap_or_default();
        if prev.apply_batch_into(batch, &mut dst).is_err() {
            return false; // dst is garbage; drop it
        }
        if dst.num_vertices() != self.num_vertices() || dst.num_edges() != self.m {
            self.retired = Some(dst); // valid buffers, wrong graph
            return false;
        }
        debug_assert_eq!(dst, Snapshot::from_adjacency(&self.out));
        self.cached = Some(Arc::new(dst));
        true
    }

    /// Hand back a retired snapshot `Arc` (typically the pre-batch
    /// snapshot once a rank update no longer needs it). If this was the
    /// last reference, its buffers are kept and reused as the patch
    /// destination of the next incremental [`apply_batch`](Self::apply_batch),
    /// making the steady-state snapshot refresh allocation-free.
    pub fn recycle_snapshot(&mut self, snapshot: Arc<Snapshot>) {
        if self.retired.is_none() {
            if let Ok(s) = Arc::try_unwrap(snapshot) {
                self.retired = Some(s);
            }
        }
    }
}

/// Sort and deduplicate an edge list in place — the normal form
/// expected by [`DynGraph::from_sorted_edges`] and CSR construction.
pub(crate) fn sort_dedup(edges: &mut Vec<Edge>) {
    edges.sort_unstable();
    edges.dedup();
}

/// Check every endpoint against the vertex count, reporting the first
/// offender (shared by the sorted and unsorted constructors).
fn validate_edge_ids(n: usize, edges: &[Edge]) -> Result<()> {
    for &(u, v) in edges {
        let bad = if (u as usize) >= n {
            Some(u)
        } else if (v as usize) >= n {
            Some(v)
        } else {
            None
        };
        if let Some(vertex) = bad {
            return Err(GraphError::VertexOutOfRange { vertex, n });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchUpdate;

    fn triangle() -> DynGraph {
        let mut g = DynGraph::new(3);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(1, 2).unwrap();
        g.insert_edge(2, 0).unwrap();
        g
    }

    #[test]
    fn from_edges_sorts_dedups_and_validates() {
        let g = DynGraph::from_edges(4, vec![(2, 0), (0, 1), (2, 0), (1, 2)]).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(2), &[0]);
        assert!(matches!(
            DynGraph::from_edges(2, vec![(0, 5)]),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
        assert!(matches!(
            DynGraph::from_edges(2, vec![(7, 0)]),
            Err(GraphError::VertexOutOfRange { vertex: 7, .. })
        ));
        // n larger than any id: trailing isolated vertices survive.
        let g = DynGraph::from_edges(10, vec![(0, 1)]).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn insert_and_query() {
        let g = triangle();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.out_degree(0), 1);
    }

    #[test]
    fn insert_duplicate_rejected() {
        let mut g = triangle();
        assert_eq!(
            g.insert_edge(0, 1).unwrap_err(),
            GraphError::DuplicateEdge((0, 1))
        );
        assert!(!g.insert_edge_if_absent(0, 1).unwrap());
        assert!(g.insert_edge_if_absent(0, 2).unwrap());
    }

    #[test]
    fn delete_missing_rejected() {
        let mut g = triangle();
        assert_eq!(
            g.delete_edge(0, 2).unwrap_err(),
            GraphError::MissingEdge((0, 2))
        );
        g.delete_edge(0, 1).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn neighbors_stay_sorted_under_mutation() {
        let mut g = DynGraph::new(5);
        for v in [4, 1, 3, 0, 2] {
            g.insert_edge(0, v).unwrap();
        }
        assert_eq!(g.out_neighbors(0), &[0, 1, 2, 3, 4]);
        g.delete_edge(0, 2).unwrap();
        assert_eq!(g.out_neighbors(0), &[0, 1, 3, 4]);
    }

    #[test]
    fn apply_then_revert_is_identity() {
        let mut g = triangle();
        let before = g.clone();
        let batch = BatchUpdate {
            deletions: vec![(0, 1)],
            insertions: vec![(1, 0), (0, 2)],
        };
        g.apply_batch(&batch).unwrap();
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 1));
        g.revert_batch(&batch).unwrap();
        assert_eq!(g, before);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = DynGraph::new(2);
        assert!(matches!(
            g.insert_edge(0, 9),
            Err(GraphError::VertexOutOfRange { vertex: 9, .. })
        ));
    }

    #[test]
    fn edges_iterator_sorted() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn grow_adds_isolated_vertices() {
        let mut g = triangle();
        g.grow(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(4), 0);
        g.insert_edge(4, 0).unwrap();
        assert!(g.has_edge(4, 0));
        // Shrinking is a no-op.
        g.grow(2);
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn isolate_vertex_removes_all_incident_edges() {
        let mut g = triangle();
        g.insert_edge(0, 2).unwrap();
        let removed = g.isolate_vertex(2);
        assert_eq!(g.num_edges(), 1); // only (0,1) remains
        assert!(!g.has_edge(1, 2) && !g.has_edge(2, 0) && !g.has_edge(0, 2));
        let mut removed_sorted = removed.clone();
        removed_sorted.sort_unstable();
        assert_eq!(removed_sorted, vec![(0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn apply_batch_is_all_or_nothing() {
        // A batch that deletes a real edge but then inserts a duplicate
        // must leave the graph completely untouched (the seed behavior
        // deleted (0,1) before failing).
        let mut g = triangle();
        let before = g.clone();
        let batch = BatchUpdate {
            deletions: vec![(0, 1)],
            insertions: vec![(1, 2)], // already present → invalid
        };
        assert_eq!(
            g.apply_batch(&batch).unwrap_err(),
            GraphError::DuplicateEdge((1, 2))
        );
        assert_eq!(g, before);
        // Same for a missing deletion listed after valid insertions.
        let batch = BatchUpdate {
            deletions: vec![(0, 2)], // absent → invalid
            insertions: vec![(1, 0)],
        };
        assert_eq!(
            g.apply_batch(&batch).unwrap_err(),
            GraphError::MissingEdge((0, 2))
        );
        assert_eq!(g, before);
        // Duplicate entries within one batch are rejected too.
        let batch = BatchUpdate::delete_only(vec![(0, 1), (0, 1)]);
        assert!(g.apply_batch(&batch).is_err());
        assert_eq!(g, before);
        let batch = BatchUpdate::insert_only(vec![(0, 2), (0, 2)]);
        assert!(g.apply_batch(&batch).is_err());
        assert_eq!(g, before);
    }

    #[test]
    fn apply_batch_allows_delete_then_reinsert() {
        let mut g = triangle();
        let batch = BatchUpdate {
            deletions: vec![(0, 1)],
            insertions: vec![(0, 1)],
        };
        g.apply_batch(&batch).unwrap();
        assert!(g.has_edge(0, 1));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn shared_snapshot_stays_coherent_across_batches() {
        let mut g = triangle();
        let s0 = g.snapshot_shared();
        assert!(Arc::ptr_eq(&s0, &g.snapshot_shared()), "cache hit");
        let batch = BatchUpdate {
            deletions: vec![(2, 0)],
            insertions: vec![(0, 2), (1, 0)],
        };
        g.apply_batch(&batch).unwrap();
        let s1 = g.snapshot_shared();
        assert!(!Arc::ptr_eq(&s0, &s1));
        assert_eq!(*s1, g.snapshot(), "incremental patch ≡ full rebuild");
        // Ad-hoc mutation invalidates; next call rebuilds coherently.
        g.insert_edge(2, 1).unwrap();
        assert!(g.cached_snapshot().is_none());
        assert_eq!(*g.snapshot_shared(), g.snapshot());
    }

    #[test]
    fn recycled_snapshot_buffers_are_reused() {
        let mut g = triangle();
        let s0 = g.snapshot_shared();
        g.apply_batch(&BatchUpdate::insert_only(vec![(0, 2)]))
            .unwrap();
        // s0 is now retired; hand it back for buffer reuse.
        g.recycle_snapshot(s0);
        assert!(g.retired.is_some());
        g.apply_batch(&BatchUpdate::delete_only(vec![(0, 2)]))
            .unwrap();
        assert!(g.retired.is_none(), "scratch consumed by the next patch");
        assert_eq!(*g.snapshot_shared(), g.snapshot());
    }

    #[test]
    fn lazy_mode_defers_splices_and_flushes_once() {
        let mut g = triangle();
        g.set_lazy(true);
        let s0 = g.snapshot_shared();
        // Two batches, including a cancel pair: delete (2,0) then
        // reinsert it — the composed delta is insert-only.
        g.apply_batch(&BatchUpdate::delete_only(vec![(2, 0)]))
            .unwrap();
        assert!(g.cached_snapshot().is_none(), "cache stale while pending");
        assert_eq!(g.pending_len(), 1);
        g.apply_batch(&BatchUpdate {
            deletions: vec![(0, 1)],
            insertions: vec![(2, 0), (0, 2)],
        })
        .unwrap();
        assert_eq!(g.pending_len(), 2, "delete/reinsert of (2,0) cancelled");
        let s1 = g.snapshot_shared();
        assert!(!Arc::ptr_eq(&s0, &s1));
        assert_eq!(*s1, g.snapshot(), "flushed snapshot ≡ full rebuild");
        assert_eq!(g.pending_len(), 0);
        assert!(g.cached_snapshot().is_some());
    }

    #[test]
    fn lazy_pending_survives_failed_batches_and_adhoc_invalidation() {
        let mut g = triangle();
        g.set_lazy(true);
        let _s0 = g.snapshot_shared();
        g.apply_batch(&BatchUpdate::insert_only(vec![(0, 2)]))
            .unwrap();
        let before = g.clone();
        // Invalid batch: all-or-nothing, pending delta untouched.
        assert!(g
            .apply_batch(&BatchUpdate::insert_only(vec![(0, 2)]))
            .is_err());
        assert_eq!(g, before);
        assert_eq!(g.pending_len(), 1);
        // Ad-hoc mutation drops cache and pending together.
        g.insert_edge(1, 0).unwrap();
        assert_eq!(g.pending_len(), 0);
        assert!(g.cached_snapshot().is_none());
        assert_eq!(*g.snapshot_shared(), g.snapshot());
    }

    #[test]
    fn snapshot_matches_dyn() {
        let g = triangle();
        let s = g.snapshot();
        assert_eq!(s.num_vertices(), 3);
        assert_eq!(s.num_edges(), 3);
        assert_eq!(s.out(0), &[1]);
        assert_eq!(s.in_(0), &[2]);
    }
}
