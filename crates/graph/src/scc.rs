//! Strongly connected components (iterative Tarjan).
//!
//! The Dynamic Traversal literature the paper builds on (Sahu et al.
//! \[38\]) confines recomputation to SCCs reachable from updated vertices;
//! this module provides the SCC decomposition for that style of
//! analysis, plus condensation utilities used to reason about how far a
//! batch update can possibly propagate (an upper bound on any frontier).

use crate::snapshot::Snapshot;
use crate::types::VertexId;

/// SCC decomposition result.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `component[v]` = the SCC id of vertex `v` (ids are dense,
    /// `0..num_components`, in reverse topological order of the
    /// condensation — Tarjan emits sinks first).
    pub component: Vec<u32>,
    /// Number of SCCs.
    pub num_components: usize,
}

impl SccDecomposition {
    /// Size of each component.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest SCC.
    pub fn largest(&self) -> usize {
        self.component_sizes().into_iter().max().unwrap_or(0)
    }

    /// Whether `u` and `v` are strongly connected.
    pub fn same_component(&self, u: VertexId, v: VertexId) -> bool {
        self.component[u as usize] == self.component[v as usize]
    }
}

/// Iterative Tarjan SCC over the snapshot's out-edges. `O(|V| + |E|)`,
/// no recursion (safe on long k-mer chains and grid paths).
pub fn tarjan_scc(g: &Snapshot) -> SccDecomposition {
    let n = g.num_vertices();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n]; // discovery index
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new(); // Tarjan's stack
    let mut next_index = 0u32;
    let mut num_components = 0usize;

    // Explicit DFS frame: (vertex, next-edge cursor).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let outs = g.out(v);
            if *cursor < outs.len() {
                let w = outs[*cursor];
                *cursor += 1;
                if index[w as usize] == UNSET {
                    // Tree edge: descend.
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    // Back/cross edge within the current SCC forest.
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                // v is finished.
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    // v is an SCC root: pop its component.
                    loop {
                        let w = stack.pop().expect("stack non-empty");
                        on_stack[w as usize] = false;
                        component[w as usize] = num_components as u32;
                        if w == v {
                            break;
                        }
                    }
                    num_components += 1;
                }
            }
        }
    }
    SccDecomposition {
        component,
        num_components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;

    #[test]
    fn cycle_is_one_component() {
        let g = Snapshot::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, 1);
        assert!(scc.same_component(0, 3));
        assert_eq!(scc.largest(), 4);
    }

    #[test]
    fn dag_is_singletons() {
        let g = Snapshot::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, 4);
        assert!(!scc.same_component(0, 1));
    }

    #[test]
    fn two_cycles_bridged() {
        // 0<->1  ->  2<->3
        let g = Snapshot::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, 2);
        assert!(scc.same_component(0, 1));
        assert!(scc.same_component(2, 3));
        assert!(!scc.same_component(1, 2));
        // Tarjan emits sinks first: {2,3} gets the lower id.
        assert!(scc.component[2] < scc.component[0]);
    }

    #[test]
    fn self_loops_are_singleton_sccs() {
        let g = Snapshot::from_edges(3, &[(0, 0), (1, 1), (2, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, 3);
        assert_eq!(scc.component_sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-vertex path — a recursive Tarjan would blow the stack.
        let n = 100_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
        let g = Snapshot::from_edges(n, &edges);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, n);
    }

    #[test]
    fn generated_symmetric_graph_component_structure() {
        // Symmetric graphs: SCCs = weakly connected components.
        let mut g = crate::generators::grid_road(400, 3);
        crate::selfloops::add_self_loops(&mut g);
        let s = g.snapshot();
        let scc = tarjan_scc(&s);
        // Every edge's endpoints are strongly connected (symmetric).
        for (u, v) in s.edges() {
            assert!(scc.same_component(u, v), "({u},{v}) split across SCCs");
        }
        let total: usize = scc.component_sizes().iter().sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn empty_graph() {
        let g = Snapshot::from_edges(0, &[]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, 0);
        assert_eq!(scc.largest(), 0);
    }
}
