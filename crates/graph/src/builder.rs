//! Edge-list accumulation and normalization before CSR construction.

use crate::csr::Csr;
use crate::digraph::DynGraph;
use crate::types::{Edge, GraphError, Result, VertexId};

/// Accumulates edges, then normalizes (dedup, optional self-loop policy)
/// and produces a [`DynGraph`] or a raw [`Csr`].
///
/// ```
/// use lfpr_graph::GraphBuilder;
/// let g = GraphBuilder::new(3)
///     .edge(0, 1)
///     .edge(1, 2)
///     .edge(0, 1) // duplicate, removed on build
///     .build_dyn()
///     .unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
    symmetric: bool,
}

impl GraphBuilder {
    /// Start a builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            symmetric: false,
        }
    }

    /// Add one directed edge.
    #[must_use]
    pub fn edge(mut self, u: VertexId, v: VertexId) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Add many directed edges.
    #[must_use]
    pub fn edges<I: IntoIterator<Item = Edge>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// Treat the input as undirected: each edge `(u, v)` also adds `(v, u)`.
    /// The paper does this for the undirected SuiteSparse graphs (§5.1.3).
    #[must_use]
    pub fn symmetric(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Number of edges currently staged (before dedup/symmetrization).
    pub fn staged_len(&self) -> usize {
        self.edges.len()
    }

    fn normalized_edges(&self) -> Result<Vec<Edge>> {
        let mut edges = Vec::with_capacity(self.edges.len() * if self.symmetric { 2 } else { 1 });
        for &(u, v) in &self.edges {
            if (u as usize) >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u,
                    n: self.n,
                });
            }
            if (v as usize) >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    n: self.n,
                });
            }
            edges.push((u, v));
            if self.symmetric && u != v {
                edges.push((v, u));
            }
        }
        crate::digraph::sort_dedup(&mut edges);
        Ok(edges)
    }

    /// Build a deduplicated mutable [`DynGraph`].
    pub fn build_dyn(&self) -> Result<DynGraph> {
        let edges = self.normalized_edges()?;
        Ok(DynGraph::from_sorted_edges(self.n, &edges))
    }

    /// Build a deduplicated immutable out-adjacency [`Csr`].
    pub fn build_csr(&self) -> Result<Csr> {
        let edges = self.normalized_edges()?;
        Ok(Csr::from_edges(self.n, &edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_on_build() {
        let g = GraphBuilder::new(2)
            .edge(0, 1)
            .edge(0, 1)
            .build_csr()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn symmetric_doubles_edges() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .symmetric(true)
            .build_csr()
            .unwrap();
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn symmetric_self_loop_not_doubled() {
        let g = GraphBuilder::new(1)
            .edge(0, 0)
            .symmetric(true)
            .build_csr()
            .unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let err = GraphBuilder::new(2).edge(0, 5).build_csr().unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 5, n: 2 });
        let err = GraphBuilder::new(2).edge(7, 0).build_csr().unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 7, n: 2 });
    }

    #[test]
    fn build_dyn_matches_build_csr() {
        let b = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 2)]);
        let dg = b.build_dyn().unwrap();
        let csr = b.build_csr().unwrap();
        assert_eq!(dg.num_edges(), csr.num_edges());
        for u in 0..4 {
            assert_eq!(dg.out_neighbors(u), csr.neighbors(u));
        }
    }
}
