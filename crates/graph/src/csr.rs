//! Compressed Sparse Row adjacency structure.
//!
//! A [`Csr`] stores, for each vertex, a contiguous sorted slice of neighbor
//! ids. Offsets are `usize` so graphs with more than 4 G edges are
//! representable, while neighbor ids stay `u32` (paper §5.1.2).

use crate::types::{Edge, GraphError, Result, VertexId};

/// A per-vertex adjacency edit for [`Csr::splice_into`]: sorted,
/// deduplicated neighbor ids to remove from and add to one vertex's run.
#[derive(Debug, Clone, Copy)]
pub struct RunPatch<'a> {
    /// The vertex whose adjacency run changes.
    pub vertex: VertexId,
    /// Neighbors to remove (must be present), ascending.
    pub del: &'a [VertexId],
    /// Neighbors to add (must be absent after deletions), ascending.
    pub add: &'a [VertexId],
}

/// Immutable CSR adjacency: `targets[offsets[v]..offsets[v+1]]` are the
/// neighbors of `v`, sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Build a CSR from an edge list. Edges need not be sorted; duplicates
    /// are kept (use [`GraphBuilder`](crate::builder::GraphBuilder) to
    /// dedup). `n` is the number of vertices; every endpoint must be `< n`.
    ///
    /// Runs in `O(n + m)` using counting sort on the source vertex.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in edges {
            debug_assert!((u as usize) < n, "source {u} out of range");
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts; // reuse as per-vertex write cursor
        let mut targets = vec![0 as VertexId; edges.len()];
        for &(u, v) in edges {
            debug_assert!((v as usize) < n, "target {v} out of range");
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        // Sort each adjacency run so membership checks can binary-search.
        for v in 0..n {
            let (s, e) = (offsets[v], offsets[v + 1]);
            targets[s..e].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Build directly from per-vertex sorted adjacency lists.
    pub fn from_adjacency(adj: &[Vec<VertexId>]) -> Self {
        let n = adj.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let m: usize = adj.iter().map(|a| a.len()).sum();
        let mut targets = Vec::with_capacity(m);
        for list in adj {
            debug_assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "adjacency must be strictly sorted"
            );
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree (or in-degree, for a reversed CSR) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Whether edge `(u, v)` is present (binary search).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterate all edges in `(source, target)` order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Build the reverse (transpose) CSR: edge `(u, v)` becomes `(v, u)`.
    /// Used to derive in-adjacency from out-adjacency.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut counts = vec![0usize; n + 1];
        for &v in &self.targets {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; self.targets.len()];
        for u in 0..n as VertexId {
            for &v in self.neighbors(u) {
                targets[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        // Source-major traversal emits each run already in ascending order,
        // so no per-run sort is needed.
        Csr { offsets, targets }
    }

    /// Rebuild this CSR with per-vertex run edits applied, writing into
    /// `dst`'s buffers (cleared and reused — no allocation once their
    /// capacity covers the result). `patches` must be sorted by vertex
    /// with at most one entry per vertex.
    ///
    /// Untouched vertices are copied in bulk (one `extend_from_slice`
    /// per gap between touched vertices), so the per-edge work is
    /// proportional to the patched runs while the rest is a bandwidth-
    /// bound memcpy — this is the incremental path behind
    /// [`Snapshot::apply_batch`](crate::snapshot::Snapshot::apply_batch).
    ///
    /// Errors with [`GraphError::MissingEdge`] /
    /// [`GraphError::DuplicateEdge`] (edge reported as
    /// `(run_vertex, neighbor)`) if a patch does not match this CSR;
    /// `dst` holds garbage in that case and must not be read.
    pub fn splice_into(&self, patches: &[RunPatch<'_>], dst: &mut Csr) -> Result<()> {
        debug_assert!(patches.windows(2).all(|w| w[0].vertex < w[1].vertex));
        let n = self.num_vertices();
        let delta: isize = patches
            .iter()
            .map(|p| p.add.len() as isize - p.del.len() as isize)
            .sum();
        let new_m = (self.targets.len() as isize + delta) as usize;
        dst.offsets.clear();
        dst.offsets.reserve(n + 1);
        dst.targets.clear();
        dst.targets.reserve(new_m);
        let mut shift: isize = 0;
        let mut from = 0usize; // next source vertex not yet emitted
        for p in patches {
            let v = p.vertex as usize;
            debug_assert!(v < n, "patched vertex {v} out of range");
            // Bulk-emit the untouched span [from, v).
            for w in from..v {
                dst.offsets
                    .push((self.offsets[w] as isize + shift) as usize);
            }
            dst.targets
                .extend_from_slice(&self.targets[self.offsets[from]..self.offsets[v]]);
            // Merge the touched run.
            dst.offsets.push(dst.targets.len());
            merge_run(
                p.vertex,
                self.neighbors(p.vertex),
                p.del,
                p.add,
                &mut dst.targets,
            )?;
            shift += p.add.len() as isize - p.del.len() as isize;
            from = v + 1;
        }
        for w in from..n {
            dst.offsets
                .push((self.offsets[w] as isize + shift) as usize);
        }
        dst.targets
            .extend_from_slice(&self.targets[self.offsets[from]..self.offsets[n]]);
        dst.offsets.push(dst.targets.len());
        debug_assert_eq!(dst.targets.len(), new_m);
        Ok(())
    }

    /// Total bytes of heap memory held by this CSR.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
    }
}

impl Default for Csr {
    /// An empty CSR over zero vertices (splice/patch scratch seed).
    fn default() -> Self {
        Csr {
            offsets: vec![0],
            targets: Vec::new(),
        }
    }
}

/// Emit `(old \ del) ∪ add` for vertex `v`'s sorted run into `out`,
/// validating that every deleted neighbor is present and every added
/// neighbor is absent after deletions (an id in both `del` and `add`
/// is a delete-then-reinsert and stays present).
fn merge_run(
    v: VertexId,
    old: &[VertexId],
    del: &[VertexId],
    add: &[VertexId],
    out: &mut Vec<VertexId>,
) -> Result<()> {
    let (mut i, mut j, mut k) = (0, 0, 0);
    let mut last_emitted: Option<VertexId> = None;
    while i < old.len() || k < add.len() {
        // Next candidate comes from the old run or the additions,
        // whichever is smaller.
        let take_old = match (old.get(i), add.get(k)) {
            (Some(&o), Some(&a)) => o <= a,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!(),
        };
        if take_old {
            let o = old[i];
            i += 1;
            if j < del.len() && del[j] == o {
                j += 1; // deleted: skip (a matching add re-emits it below)
                continue;
            }
            if last_emitted == Some(o) {
                return Err(GraphError::DuplicateEdge((v, o)));
            }
            last_emitted = Some(o);
            out.push(o);
        } else {
            let a = add[k];
            k += 1;
            // Adding `a` while it survives from the old run is a
            // duplicate: the tie-break above takes the old entry first,
            // so that case always manifests as `last_emitted == a` here
            // (a deleted-then-readded id was skipped by the del arm and
            // is legitimately re-emitted now).
            if last_emitted == Some(a) {
                return Err(GraphError::DuplicateEdge((v, a)));
            }
            debug_assert!(i >= old.len() || old[i] > a, "tie-break takes old first");
            last_emitted = Some(a);
            out.push(a);
        }
    }
    if j < del.len() {
        return Err(GraphError::MissingEdge((v, del[j])));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> 1, 2 ; 1 -> 2 ; 2 -> 0 ; 3 isolated
        Csr::from_edges(4, &[(0, 2), (0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn from_edges_sorts_neighbors() {
        let g = sample();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
    }

    #[test]
    fn counts_are_consistent() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = sample();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(3, 0));
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = sample();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
        let g2 = Csr::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = sample();
        let t = g.transpose();
        assert_eq!(t.neighbors(0), &[2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.num_edges(), g.num_edges());
        // Transposing twice is the identity.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn transpose_runs_are_sorted() {
        let g = Csr::from_edges(5, &[(4, 0), (2, 0), (3, 0), (1, 0)]);
        let t = g.transpose();
        assert_eq!(t.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn from_adjacency_matches_from_edges() {
        let adj = vec![vec![1, 2], vec![2], vec![0], vec![]];
        let g = Csr::from_adjacency(&adj);
        assert_eq!(g, sample());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn duplicate_edges_are_kept() {
        let g = Csr::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn heap_bytes_positive() {
        assert!(sample().heap_bytes() > 0);
    }
}
