//! Vertex partitioning for the sharded serving tier.
//!
//! A [`Partition`] assigns every vertex of an `n`-vertex graph to exactly
//! one of `k` *shards*. The serving layer (`lfpr::shard`) gives each shard
//! its own `UpdateSession`, writer thread, WAL, and published `RankView`;
//! this module owns the pure partitioning math the router builds on:
//!
//! * **ownership** — `owner(v)` in O(1) for the block strategy,
//! * **boundary extraction** — the owned vertices whose out-edges cross
//!   into another shard's partition (their post-commit ranks are what the
//!   shards exchange between commits),
//! * **shard graphs** — the per-shard graph a shard's session runs on:
//!   all `n` vertices under their global ids, but only the edges whose
//!   *source* the shard owns. Keeping every vertex in every shard graph
//!   means no id translation anywhere, and source-ownership keeps
//!   out-degrees exact: a pull kernel divides by the source's out-degree,
//!   and every source of an edge the shard sees is an owned vertex whose
//!   full out-list the shard has.
//! * **batch splitting** — scatter a staged [`BatchUpdate`] into
//!   per-shard sub-batches by edge-source ownership.
//!
//! ## Joint computation with reordering (PR 8)
//!
//! Block partitioning is locality-sensitive: it cuts the id space into
//! `k` contiguous ranges, so the crossing-edge count depends entirely on
//! how ids are laid out. [`Partition::compute_joint`] therefore computes
//! the PR 8 locality reordering *first* and partitions the renumbered id
//! space, so each shard owns a contiguous block of vertices that the
//! reordering already clustered by adjacency — the same permutation
//! serves both cache locality within a shard and cut minimization
//! between shards.

use crate::batch::BatchUpdate;
use crate::digraph::DynGraph;
use crate::reorder::{ReorderStrategy, Reordering};
use crate::types::VertexId;
use std::fmt;
use std::str::FromStr;

/// How vertices are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Contiguous id ranges: shard `s` owns `[starts[s], starts[s+1])`.
    /// Sizes differ by at most one vertex. O(1) ownership; composes with
    /// the locality reordering (see module docs).
    Block,
}

impl fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionStrategy::Block => write!(f, "block"),
        }
    }
}

impl FromStr for PartitionStrategy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "block" => Ok(PartitionStrategy::Block),
            other => Err(format!("unknown partition strategy {other}")),
        }
    }
}

/// A total assignment of `n` vertices to `k` shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    n: usize,
    /// Block boundaries; `starts.len() == shards + 1`, `starts[0] == 0`,
    /// `starts[shards] == n`.
    starts: Vec<VertexId>,
    strategy: PartitionStrategy,
}

impl Partition {
    /// Balanced block partition: the first `n % k` shards own
    /// `⌈n/k⌉` vertices, the rest `⌊n/k⌋`.
    pub fn block(n: usize, shards: usize) -> Result<Self, String> {
        if shards == 0 {
            return Err("partition needs at least one shard".into());
        }
        if n > u32::MAX as usize {
            return Err(format!("vertex count {n} exceeds u32 id space"));
        }
        if shards > n.max(1) {
            return Err(format!("cannot split {n} vertices across {shards} shards"));
        }
        let base = n / shards;
        let extra = n % shards;
        let mut starts = Vec::with_capacity(shards + 1);
        let mut at = 0usize;
        starts.push(0);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            starts.push(at as VertexId);
        }
        debug_assert_eq!(at, n);
        Ok(Partition {
            n,
            starts,
            strategy: PartitionStrategy::Block,
        })
    }

    /// Compute the PR 8 locality reordering and a block partition of the
    /// renumbered id space together (see module docs). Returns the
    /// reordering (`None` when the strategy renumbers nothing, e.g. the
    /// graph is already in the computed order) alongside the partition,
    /// which always refers to *internal* (renumbered) ids when a
    /// reordering is returned.
    pub fn compute_joint(
        reorder: ReorderStrategy,
        shards: usize,
        g: &DynGraph,
    ) -> Result<(Option<Reordering>, Self), String> {
        let r = Reordering::compute(reorder, g);
        let part = Partition::block(g.num_vertices(), shards)?;
        Ok((r, part))
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of vertices partitioned.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The assignment strategy (advertised in the protocol handshake).
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Which shard owns vertex `v`. `v` must be `< num_vertices()`.
    pub fn owner(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.n, "vertex {v} out of range");
        // partition_point: first boundary strictly greater than v, minus
        // one block. O(log k), k tiny; exact for any monotone `starts`.
        self.starts.partition_point(|&b| b <= v) - 1
    }

    /// The contiguous id range shard `s` owns.
    pub fn owned_range(&self, s: usize) -> std::ops::Range<VertexId> {
        self.starts[s]..self.starts[s + 1]
    }

    /// How many vertices shard `s` owns.
    pub fn owned_count(&self, s: usize) -> usize {
        (self.starts[s + 1] - self.starts[s]) as usize
    }

    /// The boundary set of shard `s`: owned vertices with at least one
    /// out-edge whose target another shard owns. These are exactly the
    /// vertices whose post-commit ranks must be exported in an exchange
    /// round — a non-boundary vertex influences no other shard's pull
    /// kernel. Ascending order.
    pub fn boundary_vertices(&self, g: &DynGraph, s: usize) -> Vec<VertexId> {
        let mut out = Vec::new();
        for u in self.owned_range(s) {
            if g.out_neighbors(u).iter().any(|&v| self.owner(v) != s) {
                out.push(u);
            }
        }
        out
    }

    /// Every edge crossing the partition, as `(u, v)` with
    /// `owner(u) != owner(v)`. Deterministic order (by source, then the
    /// graph's out-list order).
    pub fn crossing_edges(&self, g: &DynGraph) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for u in 0..g.num_vertices() as VertexId {
            let su = self.owner(u);
            for &v in g.out_neighbors(u) {
                if self.owner(v) != su {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Shard `s`'s graph: all `n` vertices (global ids — no translation),
    /// and exactly the edges whose source `s` owns. Non-owned vertices
    /// are edgeless sources; they still appear in owned vertices'
    /// in-lists when a crossing edge targets shard `s`, which is how the
    /// exchange-round corrections enter the shard's pull kernel.
    pub fn shard_graph(&self, g: &DynGraph, s: usize) -> DynGraph {
        let mut sg = DynGraph::new(self.n);
        sg.set_lazy(true);
        for u in self.owned_range(s) {
            for &v in g.out_neighbors(u) {
                sg.insert_edge(u, v).expect("edge from source graph");
            }
        }
        sg
    }

    /// Scatter a staged batch into per-shard sub-batches by the *source*
    /// vertex of each edge op, mirroring [`Partition::shard_graph`]'s
    /// source-ownership rule. Every op lands in exactly one sub-batch.
    pub fn split_batch(&self, batch: &BatchUpdate) -> Vec<BatchUpdate> {
        let mut parts = vec![BatchUpdate::new(); self.shards()];
        for &(u, v) in &batch.insertions {
            parts[self.owner(u)].insertions.push((u, v));
        }
        for &(u, v) in &batch.deletions {
            parts[self.owner(u)].deletions.push((u, v));
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::selfloops::add_self_loops;

    fn graph() -> DynGraph {
        // 6 vertices, edges within and across the 2-shard block split
        // {0,1,2} | {3,4,5}.
        let mut g = GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)])
            .build_dyn()
            .unwrap();
        add_self_loops(&mut g);
        g
    }

    #[test]
    fn block_partition_is_balanced_and_total() {
        let p = Partition::block(10, 3).unwrap();
        assert_eq!(p.shards(), 3);
        let counts: Vec<usize> = (0..3).map(|s| p.owned_count(s)).collect();
        assert_eq!(counts, vec![4, 3, 3]);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        for v in 0..10u32 {
            let s = p.owner(v);
            assert!(p.owned_range(s).contains(&v));
        }
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(3), 0);
        assert_eq!(p.owner(4), 1);
        assert_eq!(p.owner(9), 2);
    }

    #[test]
    fn degenerate_partitions_are_refused() {
        assert!(Partition::block(5, 0).is_err());
        assert!(Partition::block(2, 3).is_err());
        assert!(Partition::block(1, 1).is_ok());
    }

    #[test]
    fn boundary_vertices_are_exactly_the_crossing_sources() {
        let g = graph();
        let p = Partition::block(6, 2).unwrap();
        // Crossing edges: 2→3 and 1→4 (shard 0 → shard 1), 5→0 (1 → 0).
        assert_eq!(p.boundary_vertices(&g, 0), vec![1, 2]);
        assert_eq!(p.boundary_vertices(&g, 1), vec![5]);
        let mut crossing = p.crossing_edges(&g);
        crossing.sort_unstable();
        assert_eq!(crossing, vec![(1, 4), (2, 3), (5, 0)]);
    }

    #[test]
    fn self_loops_never_cross() {
        let g = graph();
        let p = Partition::block(6, 3).unwrap();
        for (u, v) in p.crossing_edges(&g) {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn shard_graphs_cover_the_graph_without_overlap() {
        let g = graph();
        let p = Partition::block(6, 2).unwrap();
        let sg0 = p.shard_graph(&g, 0);
        let sg1 = p.shard_graph(&g, 1);
        assert_eq!(sg0.num_vertices(), 6);
        assert_eq!(sg1.num_vertices(), 6);
        assert_eq!(sg0.num_edges() + sg1.num_edges(), g.num_edges());
        // Out-degrees of owned vertices are exact.
        for u in 0..6u32 {
            let owned = if p.owner(u) == 0 { &sg0 } else { &sg1 };
            assert_eq!(owned.out_degree(u), g.out_degree(u), "vertex {u}");
            let other = if p.owner(u) == 0 { &sg1 } else { &sg0 };
            assert_eq!(other.out_degree(u), 0, "vertex {u}");
        }
    }

    #[test]
    fn batches_split_by_source_owner() {
        let p = Partition::block(6, 2).unwrap();
        let batch = BatchUpdate {
            insertions: vec![(0, 5), (4, 1)],
            deletions: vec![(2, 3)],
        };
        let parts = p.split_batch(&batch);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].insertions, vec![(0, 5)]);
        assert_eq!(parts[0].deletions, vec![(2, 3)]);
        assert_eq!(parts[1].insertions, vec![(4, 1)]);
        assert!(parts[1].deletions.is_empty());
    }

    #[test]
    fn joint_computation_partitions_the_renumbered_space() {
        let g = graph();
        let (r, p) = Partition::compute_joint(ReorderStrategy::Degree, 2, &g).unwrap();
        assert_eq!(p.num_vertices(), g.num_vertices());
        assert_eq!(p.shards(), 2);
        if let Some(r) = r {
            assert_eq!(r.len(), g.num_vertices());
        }
    }

    #[test]
    fn strategy_round_trips_through_text() {
        let s: PartitionStrategy = "block".parse().unwrap();
        assert_eq!(s, PartitionStrategy::Block);
        assert_eq!(s.to_string(), "block");
        assert!("ring".parse::<PartitionStrategy>().is_err());
    }
}
