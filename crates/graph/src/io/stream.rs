//! Streaming graph ingestion: mmap + newline-aligned chunks parsed in
//! parallel, with zero per-line allocations.
//!
//! The line-by-line `BufRead` loaders ([`super::edge_list`],
//! [`super::matrix_market`]) allocate a fresh `String` per line and
//! UTF-8-validate every byte — on multi-million-edge SuiteSparse/SNAP
//! inputs that overhead dwarfs the arithmetic. This module instead:
//!
//! 1. maps (or block-reads) the whole file via [`super::mmap`],
//! 2. parses the format prologue sequentially (MatrixMarket banner +
//!    size line; SNAP `# Nodes: N Edges: M` comment header),
//! 3. cuts the body into newline-aligned byte chunks,
//! 4. hands chunks to the persistent [`lfpr_sched::WorkerPool`] (the
//!    same `f(thread_id)` contract the PageRank kernels use), each
//!    worker parsing integer tokens straight off the byte slice into a
//!    per-worker edge buffer,
//! 5. merges the buffers and builds a sorted/deduplicated
//!    [`DynGraph`].
//!
//! Chunks are claimed wait-free off a [`ChunkCursor`]; a hostile or
//! truncated input makes the first failing worker raise a flag so the
//! rest of the team stops instead of grinding through garbage. Parsing
//! is byte-exact with the `BufRead` loaders (same comment rules, same
//! header fixes); `crates/graph/tests/io_stream.rs` pins the
//! equivalence.

use super::edge_list::snap_header;
use super::matrix_market::{check_mtx_dims, parse_mtx_header, parse_mtx_size};
use super::mmap::read_bytes;
use crate::digraph::DynGraph;
use crate::types::{Edge, GraphError, Result};
use lfpr_sched::{global_pool, ChunkCursor};
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// On-disk graph format understood by the streaming loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    /// SNAP-style whitespace edge list (`u v` per line, `#`/`%`
    /// comments, optional `# Nodes: N Edges: M` header).
    Snap,
    /// MatrixMarket coordinate format (SuiteSparse `.mtx`).
    Mtx,
}

impl GraphFormat {
    /// Guess the format from a file extension (`.mtx` → MatrixMarket,
    /// anything else → edge list).
    pub fn detect<P: AsRef<Path>>(path: P) -> GraphFormat {
        match path.as_ref().extension().and_then(|e| e.to_str()) {
            Some(e) if e.eq_ignore_ascii_case("mtx") => GraphFormat::Mtx,
            _ => GraphFormat::Snap,
        }
    }

    /// Canonical file extension for fixtures in this format.
    pub fn extension(self) -> &'static str {
        match self {
            GraphFormat::Snap => "txt",
            GraphFormat::Mtx => "mtx",
        }
    }
}

impl std::fmt::Display for GraphFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GraphFormat::Snap => "snap",
            GraphFormat::Mtx => "mtx",
        })
    }
}

impl std::str::FromStr for GraphFormat {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "snap" | "edges" | "edgelist" | "txt" => Ok(GraphFormat::Snap),
            "mtx" | "matrixmarket" => Ok(GraphFormat::Mtx),
            other => Err(format!("unknown graph format: {other} (snap|mtx)")),
        }
    }
}

/// Tuning knobs for the streaming parser.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Parser team size (default: one per core). `1` parses inline with
    /// no pool traffic at all.
    pub threads: usize,
    /// Lower bound on chunk size in bytes; chunks smaller than a cache
    /// page just add claim traffic. Tests shrink this to force many
    /// chunk boundaries onto small inputs.
    pub min_chunk_bytes: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            threads: lfpr_sched::executor::default_threads(),
            min_chunk_bytes: 64 * 1024,
        }
    }
}

/// Load a graph file through the streaming parser (default options).
pub fn load_graph<P: AsRef<Path>>(path: P, format: GraphFormat) -> Result<DynGraph> {
    load_graph_with(path, format, &StreamOptions::default())
}

/// Load a graph file, guessing the format from the extension.
pub fn load_graph_auto<P: AsRef<Path>>(path: P) -> Result<DynGraph> {
    let format = GraphFormat::detect(&path);
    load_graph(path, format)
}

/// Load a graph file through the streaming parser with explicit options.
pub fn load_graph_with<P: AsRef<Path>>(
    path: P,
    format: GraphFormat,
    opts: &StreamOptions,
) -> Result<DynGraph> {
    let path = path.as_ref();
    let bytes =
        read_bytes(path).map_err(|e| GraphError::Parse(format!("{}: {e}", path.display())))?;
    let (n, edges) = match format {
        GraphFormat::Snap => parse_snap_bytes(&bytes, opts)?,
        GraphFormat::Mtx => parse_mtx_bytes(&bytes, opts)?,
    };
    let edges = par_sort_dedup(edges, n, opts.threads);
    DynGraph::from_presorted_edges(n, edges)
}

/// Parse SNAP edge-list bytes. Returns `(n, edges)` with `n = max(N
/// from the `# Nodes:` header, max vertex id + 1)` and the raw
/// (unsorted, undeduplicated) edge list in unspecified order.
pub fn parse_snap_bytes(bytes: &[u8], opts: &StreamOptions) -> Result<(usize, Vec<Edge>)> {
    // Sequential prologue: scan leading comment lines for the SNAP
    // `# Nodes: N Edges: M` header; the body starts at the first
    // non-comment line.
    let mut declared_n = 0usize;
    let mut body_start = bytes.len();
    let mut lines = LineCursor::new(bytes);
    while let Some((line, start)) = lines.next_line() {
        let line = trim_ascii(line);
        if line.is_empty() {
            continue;
        }
        if line[0] == b'#' || line[0] == b'%' {
            if let Some((n, _m)) = snap_header(&String::from_utf8_lossy(line)) {
                declared_n = declared_n.max(n);
            }
            continue;
        }
        body_start = start;
        break;
    }
    let (edges, max_id, _entries) =
        parse_body(&bytes[body_start..], opts, b"#%", |line, shard| {
            let mut rest = line;
            let u = parse_u32_token(next_token(&mut rest), line, "source")?;
            let v = parse_u32_token(next_token(&mut rest), line, "target")?;
            // A third column (weight or timestamp) is tolerated and ignored.
            shard.max_id = shard.max_id.max(u).max(v);
            shard.entries += 1;
            shard.edges.push((u, v));
            Ok(())
        })?;
    let n = if edges.is_empty() {
        declared_n
    } else {
        declared_n.max(max_id as usize + 1)
    };
    Ok((n, edges))
}

/// Parse MatrixMarket coordinate bytes. Symmetric inputs are expanded
/// to both directions; the declared `nnz` is checked against the entry
/// count, so truncated files error instead of parsing silently. Edge
/// order is unspecified.
pub fn parse_mtx_bytes(bytes: &[u8], opts: &StreamOptions) -> Result<(usize, Vec<Edge>)> {
    let mut lines = LineCursor::new(bytes);
    let (header_line, _) = lines
        .next_line()
        .ok_or_else(|| GraphError::Parse("empty file".into()))?;
    let header = parse_mtx_header(&String::from_utf8_lossy(trim_ascii(header_line)))?;

    // Skip comments, read the size line.
    let mut size = None;
    let mut body_start = bytes.len();
    while let Some((line, _)) = lines.next_line() {
        let line = trim_ascii(line);
        if line.is_empty() || line[0] == b'%' {
            continue;
        }
        size = Some(parse_mtx_size(&String::from_utf8_lossy(line))?);
        // `pos` is one past the consumed newline — past the buffer end
        // when the size line is the file's last line.
        body_start = lines.pos.min(bytes.len());
        break;
    }
    let (rows, cols, nnz) = size.ok_or_else(|| GraphError::Parse("missing size line".into()))?;
    let n = rows.max(cols);
    check_mtx_dims(n)?;

    let symmetric = header.symmetric;
    let has_value = header.has_value;
    let (edges, _max_id, entries) =
        parse_body(&bytes[body_start..], opts, b"%", move |line, shard| {
            let mut rest = line;
            let u = parse_usize_token(next_token(&mut rest), line, "row")?;
            let v = parse_usize_token(next_token(&mut rest), line, "column")?;
            if has_value && next_token(&mut rest).is_none() {
                return Err(GraphError::Parse(format!(
                    "missing value: {}",
                    String::from_utf8_lossy(line)
                )));
            }
            if u == 0 || v == 0 || u > n || v > n {
                return Err(GraphError::Parse(format!(
                    "index out of range: {}",
                    String::from_utf8_lossy(line)
                )));
            }
            let (u, v) = ((u - 1) as u32, (v - 1) as u32);
            shard.entries += 1;
            shard.edges.push((u, v));
            if symmetric && u != v {
                shard.edges.push((v, u));
            }
            Ok(())
        })?;
    if entries as usize != nnz {
        return Err(GraphError::Parse(format!(
            "matrix has {entries} entries but the size line declares {nnz} \
             (truncated or padded file)"
        )));
    }
    Ok((n, edges))
}

// ---------------------------------------------------------------------
// Parallel chunk driver
// ---------------------------------------------------------------------

/// Per-worker parse accumulator.
struct Shard {
    edges: Vec<Edge>,
    max_id: u32,
    entries: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            edges: Vec::new(),
            max_id: 0,
            entries: 0,
        }
    }
}

/// Split `body` into newline-aligned chunks, parse them in parallel on
/// the worker pool (inline when `threads <= 1`), and merge the
/// per-worker shards. `comments` lists the line-comment markers for
/// this format. Returns `(edges, max_id, entry_count)`.
fn parse_body<F>(
    body: &[u8],
    opts: &StreamOptions,
    comments: &[u8],
    per_line: F,
) -> Result<(Vec<Edge>, u32, u64)>
where
    F: Fn(&[u8], &mut Shard) -> Result<()> + Sync,
{
    let threads = opts.threads.max(1);
    let chunks = chunk_ranges(body, threads, opts.min_chunk_bytes);
    let cursor = ChunkCursor::new(chunks.len());
    let failed = AtomicBool::new(false);

    let work = |_t: usize| {
        let mut shard = Shard::new();
        let mut err: Option<(usize, GraphError)> = None;
        'claims: while let Some(r) = cursor.next_chunk(1) {
            if failed.load(Ordering::Relaxed) {
                break; // another worker hit garbage; stop burning cycles
            }
            for ci in r {
                let chunk = &body[chunks[ci].clone()];
                // Worst case one edge per 4 bytes ("1 1\n"); reserving a
                // conservative estimate avoids most mid-chunk regrowth.
                shard.edges.reserve(chunk.len() / 8);
                for raw in chunk.split(|&b| b == b'\n') {
                    let line = trim_ascii(raw);
                    if line.is_empty() || comments.contains(&line[0]) {
                        continue;
                    }
                    if let Err(e) = per_line(line, &mut shard) {
                        err = Some((ci, e));
                        failed.store(true, Ordering::Relaxed);
                        break 'claims;
                    }
                }
            }
        }
        (shard, err)
    };

    let results = if threads == 1 {
        vec![work(0)]
    } else {
        global_pool().run(threads, work)
    };

    // Deterministic error reporting: the failure in the earliest chunk
    // wins regardless of which worker happened to claim it.
    let mut first_err: Option<(usize, GraphError)> = None;
    for (_, err) in &results {
        if let Some((ci, e)) = err {
            if first_err.as_ref().is_none_or(|(fci, _)| ci < fci) {
                first_err = Some((*ci, e.clone()));
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }

    let total: usize = results.iter().map(|(s, _)| s.edges.len()).sum();
    let mut edges = Vec::with_capacity(total);
    let mut max_id = 0u32;
    let mut entries = 0u64;
    for (shard, _) in results {
        edges.extend_from_slice(&shard.edges);
        max_id = max_id.max(shard.max_id);
        entries += shard.entries;
    }
    Ok((edges, max_id, entries))
}

// ---------------------------------------------------------------------
// Parallel sort/dedup (radix bucketing by source id)
// ---------------------------------------------------------------------

/// Buckets per worker for the parallel sort: enough to smooth skewed
/// source distributions without drowning in per-bucket overhead.
const SORT_BUCKETS_PER_THREAD: usize = 4;

/// Edge count below which the sequential sort wins outright.
const PAR_SORT_MIN_EDGES: usize = 1 << 15;

/// Sort and deduplicate a parsed edge list in parallel. Each worker
/// scatters a slice of the input into source-id-range buckets — the
/// bucket index is monotone in the source id, so the buckets partition
/// the sorted order — then the buckets are merged, sorted, and
/// deduplicated independently and concatenated. Duplicates share a
/// source id and therefore a bucket, so per-bucket `dedup` is global
/// dedup. Falls back to the sequential path for small inputs or one
/// thread; the result is identical either way.
pub(crate) fn par_sort_dedup(mut edges: Vec<Edge>, n: usize, threads: usize) -> Vec<Edge> {
    let threads = threads.max(1);
    if threads == 1 || n == 0 || edges.len() < PAR_SORT_MIN_EDGES {
        crate::digraph::sort_dedup(&mut edges);
        return edges;
    }
    let buckets = threads * SORT_BUCKETS_PER_THREAD;
    let chunk = edges.len().div_ceil(threads);
    // Phase 1: per-worker scatter into bucket-local buffers. Ids at or
    // above `n` (rejected later by the constructor) clamp into the last
    // bucket, which keeps the indexing safe and the order monotone.
    let parts = global_pool().run(threads, |t| {
        let lo = (t * chunk).min(edges.len());
        let hi = ((t + 1) * chunk).min(edges.len());
        let mut local: Vec<Vec<Edge>> = std::iter::repeat_with(Vec::new).take(buckets).collect();
        for &(u, v) in &edges[lo..hi] {
            let b = ((u as u64 * buckets as u64) / n as u64) as usize;
            local[b.min(buckets - 1)].push((u, v));
        }
        local
    });
    // Phase 2: each bucket's shards merge and sort independently;
    // workers claim buckets wait-free off a cursor.
    let cursor = ChunkCursor::new(buckets);
    let sorted = global_pool().run(threads, |_t| {
        let mut mine = Vec::new();
        while let Some(r) = cursor.next_chunk(1) {
            for b in r {
                let mut merged: Vec<Edge> =
                    Vec::with_capacity(parts.iter().map(|p| p[b].len()).sum());
                for p in &parts {
                    merged.extend_from_slice(&p[b]);
                }
                merged.sort_unstable();
                merged.dedup();
                mine.push((b, merged));
            }
        }
        mine
    });
    let mut by_bucket: Vec<Vec<Edge>> = vec![Vec::new(); buckets];
    for worker in sorted {
        for (b, v) in worker {
            by_bucket[b] = v;
        }
    }
    let mut out = Vec::with_capacity(by_bucket.iter().map(Vec::len).sum());
    for b in by_bucket {
        out.extend_from_slice(&b);
    }
    out
}

/// Chunks per thread: oversplit so a worker stuck on a dense chunk
/// doesn't serialize the tail.
const CHUNKS_PER_THREAD: usize = 4;

/// Cut `bytes` into newline-aligned half-open ranges covering the whole
/// slice. Every chunk except possibly the last ends right after a `\n`;
/// no line straddles a boundary.
fn chunk_ranges(bytes: &[u8], threads: usize, min_chunk: usize) -> Vec<Range<usize>> {
    let len = bytes.len();
    if len == 0 {
        return Vec::new();
    }
    let want = threads.max(1) * CHUNKS_PER_THREAD;
    let size = (len / want).max(min_chunk.max(1));
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < len {
        let mut end = start.saturating_add(size).min(len);
        if end < len && bytes[end - 1] != b'\n' {
            match bytes[end..].iter().position(|&b| b == b'\n') {
                Some(i) => end += i + 1,
                None => end = len,
            }
        }
        out.push(start..end);
        start = end;
    }
    out
}

// ---------------------------------------------------------------------
// Byte-slice token helpers (no String, no UTF-8 validation)
// ---------------------------------------------------------------------

#[inline]
fn is_ascii_space(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\r' | b'\x0b' | b'\x0c')
}

/// Trim ASCII whitespace from both ends of a line.
#[inline]
fn trim_ascii(mut line: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = line {
        if is_ascii_space(*first) {
            line = rest;
        } else {
            break;
        }
    }
    while let [rest @ .., last] = line {
        if is_ascii_space(*last) {
            line = rest;
        } else {
            break;
        }
    }
    line
}

/// Pop the next whitespace-separated token off `rest`.
#[inline]
fn next_token<'a>(rest: &mut &'a [u8]) -> Option<&'a [u8]> {
    let mut i = 0;
    while i < rest.len() && is_ascii_space(rest[i]) {
        i += 1;
    }
    if i == rest.len() {
        *rest = &rest[i..];
        return None;
    }
    let start = i;
    while i < rest.len() && !is_ascii_space(rest[i]) {
        i += 1;
    }
    let tok = &rest[start..i];
    *rest = &rest[i..];
    Some(tok)
}

#[inline]
fn parse_digits(tok: &[u8], max: u64) -> Option<u64> {
    if tok.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for &b in tok {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((b - b'0') as u64)?;
        if v > max {
            return None;
        }
    }
    Some(v)
}

fn parse_u32_token(tok: Option<&[u8]>, line: &[u8], what: &str) -> Result<u32> {
    tok.and_then(|t| parse_digits(t, u32::MAX as u64))
        .map(|v| v as u32)
        .ok_or_else(|| {
            GraphError::Parse(format!(
                "bad {what} in edge line: {}",
                String::from_utf8_lossy(line)
            ))
        })
}

fn parse_usize_token(tok: Option<&[u8]>, line: &[u8], what: &str) -> Result<usize> {
    tok.and_then(|t| parse_digits(t, usize::MAX as u64))
        .map(|v| v as usize)
        .ok_or_else(|| {
            GraphError::Parse(format!(
                "bad {what} in entry: {}",
                String::from_utf8_lossy(line)
            ))
        })
}

/// Sequential line reader over a byte slice (prologue parsing only; the
/// body goes through [`chunk_ranges`] + `split`).
struct LineCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> LineCursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        LineCursor { bytes, pos: 0 }
    }

    /// The next line (without its newline) and its start offset.
    fn next_line(&mut self) -> Option<(&'a [u8], usize)> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let start = self.pos;
        let end = match self.bytes[start..].iter().position(|&b| b == b'\n') {
            Some(i) => start + i,
            None => self.bytes.len(),
        };
        self.pos = end + 1;
        Some((&self.bytes[start..end], start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threads: usize, min_chunk: usize) -> StreamOptions {
        StreamOptions {
            threads,
            min_chunk_bytes: min_chunk,
        }
    }

    #[test]
    fn snap_basic_parse() {
        let input = b"# comment\n0 1\n1 2\n% another\n2 0 17\n";
        let (n, mut edges) = parse_snap_bytes(input, &opts(1, 1)).unwrap();
        edges.sort_unstable();
        assert_eq!(n, 3);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn snap_header_preserves_isolated_vertices() {
        let input = b"# Nodes: 10 Edges: 2\n0 1\n1 2\n";
        let (n, edges) = parse_snap_bytes(input, &opts(1, 1)).unwrap();
        assert_eq!(n, 10, "trailing isolated vertices must not vanish");
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn snap_header_smaller_than_max_id() {
        let input = b"# Nodes: 2 Edges: 2\n0 1\n5 6\n";
        let (n, _) = parse_snap_bytes(input, &opts(1, 1)).unwrap();
        assert_eq!(n, 7, "n = max(header, max_id + 1)");
    }

    #[test]
    fn snap_empty_and_comment_only() {
        assert_eq!(parse_snap_bytes(b"", &opts(1, 1)).unwrap().0, 0);
        assert_eq!(
            parse_snap_bytes(b"# only comments\n", &opts(2, 1))
                .unwrap()
                .0,
            0
        );
        // Header but no edges: a graph of isolated vertices.
        let (n, edges) = parse_snap_bytes(b"# Nodes: 5 Edges: 0\n", &opts(1, 1)).unwrap();
        assert_eq!(n, 5);
        assert!(edges.is_empty());
    }

    #[test]
    fn snap_rejects_garbage() {
        assert!(parse_snap_bytes(b"0 x\n", &opts(1, 1)).is_err());
        assert!(parse_snap_bytes(b"0\n", &opts(1, 1)).is_err());
        assert!(parse_snap_bytes(b"99999999999 1\n", &opts(1, 1)).is_err());
    }

    #[test]
    fn snap_parallel_matches_inline() {
        let mut input = String::from("# Nodes: 600 Edges: 500\n");
        for i in 0..500u32 {
            input.push_str(&format!("{} {}\n", i % 97, (i * 7) % 89));
        }
        let (n1, mut e1) = parse_snap_bytes(input.as_bytes(), &opts(1, 1)).unwrap();
        let (n4, mut e4) = parse_snap_bytes(input.as_bytes(), &opts(4, 16)).unwrap();
        e1.sort_unstable();
        e4.sort_unstable();
        assert_eq!(n1, n4);
        assert_eq!(e1, e4);
        assert_eq!(n1, 600);
    }

    #[test]
    fn mtx_basic_and_symmetric() {
        let mtx = b"%%MatrixMarket matrix coordinate pattern general\n% c\n3 3 3\n1 2\n2 3\n3 1\n";
        let (n, mut edges) = parse_mtx_bytes(mtx, &opts(2, 1)).unwrap();
        edges.sort_unstable();
        assert_eq!(n, 3);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);

        let sym = b"%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2 1\n";
        let (_, mut edges) = parse_mtx_bytes(sym, &opts(1, 1)).unwrap();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn mtx_truncated_errors() {
        // Size line declares 3 entries, file holds 2: must not parse
        // silently (the seed loader did).
        let mtx = b"%%MatrixMarket matrix coordinate pattern general\n3 3 3\n1 2\n2 3\n";
        let err = parse_mtx_bytes(mtx, &opts(1, 1)).unwrap_err();
        assert!(err.to_string().contains("declares 3"), "{err}");
    }

    #[test]
    fn mtx_hostile_nnz_errors_without_huge_alloc() {
        // The declared nnz is absurd; must fail on the count check, not
        // attempt a pre-allocation of 2^60 entries.
        let mtx =
            b"%%MatrixMarket matrix coordinate pattern general\n3 3 1152921504606846976\n1 2\n";
        assert!(parse_mtx_bytes(mtx, &opts(1, 1)).is_err());
    }

    #[test]
    fn mtx_size_line_at_eof_without_newline() {
        // The size line is the file's last line: body_start must clamp
        // to the buffer end instead of slicing one past it (panicked
        // before the fix).
        let mtx = b"%%MatrixMarket matrix coordinate pattern general\n2 2 0";
        let (n, edges) = parse_mtx_bytes(mtx, &opts(1, 1)).unwrap();
        assert_eq!(n, 2);
        assert!(edges.is_empty());
        // Same with a trailing newline.
        let mtx = b"%%MatrixMarket matrix coordinate pattern general\n2 2 0\n";
        let (n, edges) = parse_mtx_bytes(mtx, &opts(2, 1)).unwrap();
        assert_eq!(n, 2);
        assert!(edges.is_empty());
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn mtx_dims_beyond_u32_rejected() {
        // Ids above 2^32 would wrap in the `as u32` shift; the dims are
        // rejected up front instead.
        let mtx = b"%%MatrixMarket matrix coordinate pattern general\n5000000000 5000000000 1\n4294967299 1\n";
        let err = parse_mtx_bytes(mtx, &opts(1, 1)).unwrap_err();
        assert!(err.to_string().contains("u32"), "{err}");
    }

    #[test]
    fn mtx_rejects_unsupported_qualifiers() {
        for h in [
            "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 5.0\n",
            "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2 1.0 0.0\n",
            "%%MatrixMarket matrix coordinate complex hermitian\n2 2 1\n1 2 1.0 0.0\n",
            "%%MatrixMarket matrix array real general\n",
            "garbage\n",
        ] {
            assert!(parse_mtx_bytes(h.as_bytes(), &opts(1, 1)).is_err(), "{h}");
        }
    }

    #[test]
    fn mtx_out_of_range_and_missing_value() {
        let range = b"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(parse_mtx_bytes(range, &opts(1, 1)).is_err());
        let zero = b"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(parse_mtx_bytes(zero, &opts(1, 1)).is_err());
        let noval = b"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n";
        assert!(parse_mtx_bytes(noval, &opts(1, 1)).is_err());
    }

    #[test]
    fn chunk_ranges_are_newline_aligned_and_cover() {
        let data = b"0 1\n22 33\n4 5\n666 777\n8 9\n";
        for threads in [1, 2, 4] {
            for min in [1, 4, 1024] {
                let ranges = chunk_ranges(data, threads, min);
                let mut pos = 0;
                for r in &ranges {
                    assert_eq!(r.start, pos);
                    assert!(r.end > r.start);
                    if r.end < data.len() {
                        assert_eq!(data[r.end - 1], b'\n', "chunk must end after newline");
                    }
                    pos = r.end;
                }
                assert_eq!(pos, data.len());
            }
        }
        assert!(chunk_ranges(b"", 4, 1).is_empty());
    }

    #[test]
    fn chunk_ranges_handle_missing_trailing_newline() {
        let data = b"0 1\n2 3"; // no final newline
        let ranges = chunk_ranges(data, 4, 1);
        assert_eq!(ranges.last().unwrap().end, data.len());
        let (n, edges) = parse_snap_bytes(data, &opts(3, 1)).unwrap();
        assert_eq!(n, 4);
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn format_detect_parse_display() {
        assert_eq!(GraphFormat::detect("a/b/c.mtx"), GraphFormat::Mtx);
        assert_eq!(GraphFormat::detect("a/b/c.MTX"), GraphFormat::Mtx);
        assert_eq!(GraphFormat::detect("a/b/c.txt"), GraphFormat::Snap);
        assert_eq!(GraphFormat::detect("noext"), GraphFormat::Snap);
        assert_eq!("snap".parse::<GraphFormat>().unwrap(), GraphFormat::Snap);
        assert_eq!("mtx".parse::<GraphFormat>().unwrap(), GraphFormat::Mtx);
        assert!("pdf".parse::<GraphFormat>().is_err());
        assert_eq!(GraphFormat::Snap.to_string(), "snap");
        assert_eq!(GraphFormat::Mtx.to_string(), "mtx");
    }

    #[test]
    fn tokens_and_trim() {
        let mut rest: &[u8] = b"  12 \t 34  ";
        assert_eq!(next_token(&mut rest), Some(&b"12"[..]));
        assert_eq!(next_token(&mut rest), Some(&b"34"[..]));
        assert_eq!(next_token(&mut rest), None);
        assert_eq!(trim_ascii(b" \t a b \r"), b"a b");
        assert_eq!(trim_ascii(b""), b"");
        assert_eq!(
            parse_digits(b"4294967295", u32::MAX as u64),
            Some(4294967295)
        );
        assert_eq!(parse_digits(b"4294967296", u32::MAX as u64), None);
        assert_eq!(parse_digits(b"", u32::MAX as u64), None);
        assert_eq!(parse_digits(b"12x", u32::MAX as u64), None);
    }

    /// Deterministic pseudo-random edges with duplicates mixed in.
    fn churned_edges(n: u64, count: usize) -> Vec<Edge> {
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut edges = Vec::with_capacity(count + count / 5);
        for _ in 0..count {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 33) % n) as u32;
            let v = ((x >> 13) % n) as u32;
            edges.push((u, v));
            if x % 5 == 0 {
                edges.push((u, v));
            }
        }
        edges
    }

    #[test]
    fn parallel_sort_dedup_matches_sequential() {
        let n = 997u64;
        let edges = churned_edges(n, 40_000);
        let mut seq = edges.clone();
        crate::digraph::sort_dedup(&mut seq);
        let par = par_sort_dedup(edges, n as usize, 4);
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_sort_dedup_survives_skew_and_small_inputs() {
        // Every edge shares one source: all land in a single bucket.
        let skew: Vec<Edge> = (0..40_000u32).map(|i| (3, i % 500)).collect();
        let mut seq = skew.clone();
        crate::digraph::sort_dedup(&mut seq);
        assert_eq!(par_sort_dedup(skew, 600, 4), seq);
        // Below the parallel threshold: the sequential fallback.
        let small = vec![(2, 0), (0, 1), (2, 0), (1, 2)];
        assert_eq!(par_sort_dedup(small, 3, 4), vec![(0, 1), (1, 2), (2, 0)]);
        // Degenerate shapes.
        assert!(par_sort_dedup(Vec::new(), 0, 4).is_empty());
    }

    #[test]
    fn parallel_sort_dedup_feeds_the_sorted_constructor() {
        let n = 997usize;
        let edges = churned_edges(n as u64, 40_000);
        let via_par =
            DynGraph::from_presorted_edges(n, par_sort_dedup(edges.clone(), n, 4)).unwrap();
        let via_seq = DynGraph::from_edges(n, edges).unwrap();
        assert_eq!(via_par, via_seq);
    }

    #[test]
    fn load_graph_roundtrip_via_file() {
        let p = std::env::temp_dir().join(format!("lfpr_stream_load_{}.txt", std::process::id()));
        std::fs::write(&p, "# Nodes: 6 Edges: 3\n0 1\n1 2\n2 0\n").unwrap();
        let g = load_graph_auto(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 0));
    }
}
