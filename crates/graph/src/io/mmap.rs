//! Read-only whole-file byte access: `mmap(2)` with a block-read fallback.
//!
//! The streaming loaders ([`super::stream`]) want the entire input as one
//! `&[u8]` so newline-aligned chunks can be handed to parser workers
//! without copying. On 64-bit Unix we memory-map the file (`PROT_READ` /
//! `MAP_PRIVATE`, declared directly against libc — no new crates); when
//! mapping is unavailable (empty file, non-Unix or 32-bit target, exotic
//! filesystem) we fall back to a single `read_to_end` into an owned
//! buffer. Either way the caller sees a plain byte slice.
//!
//! The mapping path is gated to `target_pointer_width = "64"`: the
//! hand-declared `mmap` signature takes a 64-bit `off_t`, which is the
//! raw symbol's ABI only on 64-bit platforms (32-bit libcs expose the
//! 64-bit offset entry point as `mmap64`/`mmap2`). 32-bit targets just
//! use the block-read fallback — correctness first, the mapping is only
//! an optimization.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;
use std::path::Path;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// An owned read-only mapping, unmapped on drop.
    pub struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and exclusively owned; sharing the
    // underlying bytes across parser threads is exactly its purpose.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Map `len` bytes of `file` read-only. `len` must be nonzero
        /// (POSIX rejects zero-length mappings).
        pub fn map(file: &File, len: usize) -> io::Result<Mapping> {
            debug_assert!(len > 0);
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// The contents of a file, either memory-mapped or owned. Dereferences
/// to `&[u8]` so parsers never care which variant they got.
pub enum InputBytes {
    /// A live `mmap(2)` mapping (Unix only).
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(sys::Mapping),
    /// A heap buffer filled by a single block read.
    Owned(Vec<u8>),
}

impl Deref for InputBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            InputBytes::Mapped(m) => m.as_slice(),
            InputBytes::Owned(v) => v,
        }
    }
}

impl InputBytes {
    /// Whether the bytes come from a live mapping (false: owned buffer).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            InputBytes::Mapped(_) => true,
            InputBytes::Owned(_) => false,
        }
    }
}

/// Read a whole file: mmap when possible, block-read otherwise.
pub fn read_bytes<P: AsRef<Path>>(path: P) -> io::Result<InputBytes> {
    let mut file = File::open(path.as_ref())?;
    let len = file.metadata()?.len();
    #[cfg(all(unix, target_pointer_width = "64"))]
    if len > 0 && len <= usize::MAX as u64 {
        if let Ok(m) = sys::Mapping::map(&file, len as usize) {
            return Ok(InputBytes::Mapped(m));
        }
    }
    let mut buf = Vec::with_capacity(len.min(1 << 30) as usize);
    file.read_to_end(&mut buf)?;
    Ok(InputBytes::Owned(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("lfpr_mmap_{}_{name}", std::process::id()));
        std::fs::write(&p, contents).unwrap();
        p
    }

    #[test]
    fn maps_file_contents() {
        let p = tmp("basic", b"0 1\n1 2\n");
        let bytes = read_bytes(&p).unwrap();
        assert_eq!(&*bytes, b"0 1\n1 2\n");
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(bytes.is_mapped());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_yields_empty_slice() {
        let p = tmp("empty", b"");
        let bytes = read_bytes(&p).unwrap();
        assert!(bytes.is_empty());
        assert!(!bytes.is_mapped()); // zero-length mappings are invalid
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(read_bytes("/nonexistent/definitely/missing.bin").is_err());
    }
}
