//! Minimal MatrixMarket (`.mtx`) coordinate reader for SuiteSparse graphs.
//!
//! Supports `matrix coordinate (pattern|real|integer) (general|symmetric)`.
//! Symmetric matrices are expanded to both directions, matching the
//! paper's treatment of undirected graphs (§5.1.3). Values are ignored
//! (PageRank is unweighted here). MatrixMarket is 1-indexed; we shift to
//! 0-indexed.

use crate::digraph::DynGraph;
use crate::types::{Edge, GraphError, Result};
use std::io::BufRead;
use std::path::Path;

/// Parse MatrixMarket coordinate data from a reader.
pub fn parse_matrix_market<R: BufRead>(reader: R) -> Result<(usize, Vec<Edge>)> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| GraphError::Parse("empty file".into()))?
        .map_err(|e| GraphError::Parse(e.to_string()))?;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket matrix coordinate") {
        return Err(GraphError::Parse(format!("unsupported header: {header}")));
    }
    let symmetric = h.contains("symmetric");
    let has_value = !h.contains("pattern");

    // Skip comments, read size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| GraphError::Parse(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| GraphError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| {
            s.parse::<usize>()
                .map_err(|e| GraphError::Parse(e.to_string()))
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(GraphError::Parse(format!("bad size line: {size_line}")));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
    let n = rows.max(cols);
    let mut edges = Vec::with_capacity(if symmetric { nnz * 2 } else { nnz });
    for line in lines {
        let line = line.map_err(|e| GraphError::Parse(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| GraphError::Parse("missing row".into()))?
            .parse()
            .map_err(|e| GraphError::Parse(format!("{e}")))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| GraphError::Parse("missing col".into()))?
            .parse()
            .map_err(|e| GraphError::Parse(format!("{e}")))?;
        if has_value && parts.next().is_none() {
            return Err(GraphError::Parse(format!("missing value: {t}")));
        }
        if u == 0 || v == 0 || u > n || v > n {
            return Err(GraphError::Parse(format!("index out of range: {t}")));
        }
        let (u, v) = ((u - 1) as u32, (v - 1) as u32);
        edges.push((u, v));
        if symmetric && u != v {
            edges.push((v, u));
        }
    }
    Ok((n, edges))
}

/// Read a `.mtx` file into a deduplicated [`DynGraph`].
pub fn read_matrix_market<P: AsRef<Path>>(path: P) -> Result<DynGraph> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| GraphError::Parse(format!("{}: {e}", path.as_ref().display())))?;
    let (n, mut edges) = parse_matrix_market(std::io::BufReader::new(file))?;
    edges.sort_unstable();
    edges.dedup();
    Ok(DynGraph::from_sorted_edges(n, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_general_pattern() {
        let mtx =
            "%%MatrixMarket matrix coordinate pattern general\n% comment\n3 3 3\n1 2\n2 3\n3 1\n";
        let (n, edges) = parse_matrix_market(Cursor::new(mtx)).unwrap();
        assert_eq!(n, 3);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn parse_symmetric_expands() {
        let mtx = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2 1\n";
        let (_, edges) = parse_matrix_market(Cursor::new(mtx)).unwrap();
        assert_eq!(edges, vec![(1, 0), (0, 1)]);
    }

    #[test]
    fn parse_real_values_ignored() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 0.5\n2 1 1.5\n";
        let (_, edges) = parse_matrix_market(Cursor::new(mtx)).unwrap();
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn symmetric_diagonal_not_doubled() {
        let mtx = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 1\n";
        let (_, edges) = parse_matrix_market(Cursor::new(mtx)).unwrap();
        assert_eq!(edges, vec![(0, 0)]);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(
            parse_matrix_market(Cursor::new("%%MatrixMarket matrix array real general\n")).is_err()
        );
        assert!(parse_matrix_market(Cursor::new("garbage\n")).is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(parse_matrix_market(Cursor::new(mtx)).is_err());
        let mtx0 = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(parse_matrix_market(Cursor::new(mtx0)).is_err());
    }

    #[test]
    fn missing_value_detected() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n";
        assert!(parse_matrix_market(Cursor::new(mtx)).is_err());
    }
}
