//! Minimal MatrixMarket (`.mtx`) coordinate reader for SuiteSparse graphs.
//!
//! Supports `matrix coordinate (pattern|real|integer) (general|symmetric)`.
//! Qualifiers are matched as exact tokens: `skew-symmetric` no longer
//! sneaks in via a `contains("symmetric")` substring check, and `complex`
//! (two value columns) is rejected with a clear error instead of being
//! misparsed. Symmetric matrices are expanded to both directions,
//! matching the paper's treatment of undirected graphs (§5.1.3). Values
//! are ignored (PageRank is unweighted here). MatrixMarket is 1-indexed;
//! we shift to 0-indexed.
//!
//! The declared `nnz` is never trusted: pre-allocation is capped and the
//! actual entry count is checked against it, so truncated (or padded)
//! files error instead of parsing silently.
//!
//! [`read_matrix_market`] goes through the streaming parser
//! ([`super::stream`]); the line-by-line [`parse_matrix_market`] /
//! [`read_matrix_market_buffered`] pair is kept for in-memory readers
//! and as the `ingest_bench` baseline.

use super::stream::{self, GraphFormat};
use crate::digraph::DynGraph;
use crate::types::{Edge, GraphError, Result};
use std::io::BufRead;
use std::path::Path;

/// Cap on `Vec::with_capacity` derived from the untrusted size line: a
/// hostile `nnz` must not trigger a giant allocation before the count
/// check has a chance to run. 2^20 edges ≈ 8 MiB.
pub(crate) const MAX_MTX_PREALLOC: usize = 1 << 20;

/// The subset of the MatrixMarket banner this reader supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MtxHeader {
    /// `symmetric` (exactly — not `skew-symmetric`): expand both ways.
    pub symmetric: bool,
    /// `real`/`integer`: one value column must follow the indices.
    pub has_value: bool,
}

/// Parse the banner line (`%%MatrixMarket object format field symmetry`)
/// with exact token matching and clear errors for unsupported qualifiers.
pub(crate) fn parse_mtx_header(line: &str) -> Result<MtxHeader> {
    let unsupported = |what: &str, tok: &str| {
        GraphError::Parse(format!("unsupported MatrixMarket {what}: {tok}"))
    };
    let mut toks = line.split_whitespace();
    let banner = toks.next().unwrap_or("");
    if !banner.eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(GraphError::Parse(format!("unsupported header: {line}")));
    }
    match toks.next() {
        Some(t) if t.eq_ignore_ascii_case("matrix") => {}
        t => return Err(unsupported("object", t.unwrap_or("<missing>"))),
    }
    match toks.next() {
        Some(t) if t.eq_ignore_ascii_case("coordinate") => {}
        t => return Err(unsupported("format", t.unwrap_or("<missing>"))),
    }
    let has_value = match toks.next().map(str::to_ascii_lowercase).as_deref() {
        Some("pattern") => false,
        Some("real") | Some("integer") => true,
        Some("complex") => {
            return Err(GraphError::Parse(
                "unsupported MatrixMarket field: complex (two value columns)".into(),
            ))
        }
        t => return Err(unsupported("field", t.unwrap_or("<missing>"))),
    };
    let symmetric = match toks.next().map(str::to_ascii_lowercase).as_deref() {
        Some("general") => false,
        Some("symmetric") => true,
        Some(t @ ("skew-symmetric" | "hermitian")) => return Err(unsupported("symmetry", t)),
        t => return Err(unsupported("symmetry", t.unwrap_or("<missing>"))),
    };
    Ok(MtxHeader {
        symmetric,
        has_value,
    })
}

/// Reject MatrixMarket dimensions that cannot be indexed by the `u32`
/// vertex ids this crate uses (§5.1.2): with `n ≤ u32::MAX + 1` every
/// in-range 1-indexed entry shifts to a valid id without wrapping (on
/// a 64-bit `usize`, an unchecked `(u - 1) as u32` would silently
/// truncate ids above 2^32).
pub(crate) fn check_mtx_dims(n: usize) -> Result<()> {
    if n > (u32::MAX as usize).saturating_add(1) {
        return Err(GraphError::Parse(format!(
            "matrix dimension {n} exceeds the u32 vertex-id space"
        )));
    }
    Ok(())
}

/// Parse the size line: exactly `rows cols nnz`.
pub(crate) fn parse_mtx_size(line: &str) -> Result<(usize, usize, usize)> {
    let dims: Vec<usize> = line
        .split_whitespace()
        .map(|s| {
            s.parse::<usize>()
                .map_err(|e| GraphError::Parse(e.to_string()))
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(GraphError::Parse(format!("bad size line: {line}")));
    }
    Ok((dims[0], dims[1], dims[2]))
}

/// Parse MatrixMarket coordinate data from a reader (line-by-line; see
/// module docs for the streaming alternative).
pub fn parse_matrix_market<R: BufRead>(reader: R) -> Result<(usize, Vec<Edge>)> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| GraphError::Parse("empty file".into()))?
        .map_err(|e| GraphError::Parse(e.to_string()))?;
    let MtxHeader {
        symmetric,
        has_value,
    } = parse_mtx_header(&header)?;

    // Skip comments, read size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| GraphError::Parse(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| GraphError::Parse("missing size line".into()))?;
    let (rows, cols, nnz) = parse_mtx_size(&size_line)?;
    let n = rows.max(cols);
    check_mtx_dims(n)?;
    // Capped pre-allocation: the size line is untrusted input.
    let cap = nnz.min(MAX_MTX_PREALLOC);
    let mut edges = Vec::with_capacity(if symmetric {
        cap.saturating_mul(2)
    } else {
        cap
    });
    let mut entries = 0usize;
    for line in lines {
        let line = line.map_err(|e| GraphError::Parse(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let u: usize = parts
            .next()
            .ok_or_else(|| GraphError::Parse("missing row".into()))?
            .parse()
            .map_err(|e| GraphError::Parse(format!("{e}")))?;
        let v: usize = parts
            .next()
            .ok_or_else(|| GraphError::Parse("missing col".into()))?
            .parse()
            .map_err(|e| GraphError::Parse(format!("{e}")))?;
        if has_value && parts.next().is_none() {
            return Err(GraphError::Parse(format!("missing value: {t}")));
        }
        if u == 0 || v == 0 || u > n || v > n {
            return Err(GraphError::Parse(format!("index out of range: {t}")));
        }
        let (u, v) = ((u - 1) as u32, (v - 1) as u32);
        entries += 1;
        edges.push((u, v));
        if symmetric && u != v {
            edges.push((v, u));
        }
    }
    if entries != nnz {
        return Err(GraphError::Parse(format!(
            "matrix has {entries} entries but the size line declares {nnz} \
             (truncated or padded file)"
        )));
    }
    Ok((n, edges))
}

/// Read a `.mtx` file into a deduplicated [`DynGraph`] through the
/// streaming parser (mmap + parallel chunk parse).
pub fn read_matrix_market<P: AsRef<Path>>(path: P) -> Result<DynGraph> {
    stream::load_graph(path, GraphFormat::Mtx)
}

/// Read a `.mtx` file through the line-by-line `BufRead` parser (the
/// seed loader). Kept as the reference/baseline implementation; prefer
/// [`read_matrix_market`].
pub fn read_matrix_market_buffered<P: AsRef<Path>>(path: P) -> Result<DynGraph> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| GraphError::Parse(format!("{}: {e}", path.as_ref().display())))?;
    let (n, edges) = parse_matrix_market(std::io::BufReader::new(file))?;
    DynGraph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_general_pattern() {
        let mtx =
            "%%MatrixMarket matrix coordinate pattern general\n% comment\n3 3 3\n1 2\n2 3\n3 1\n";
        let (n, edges) = parse_matrix_market(Cursor::new(mtx)).unwrap();
        assert_eq!(n, 3);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn parse_symmetric_expands() {
        let mtx = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2 1\n";
        let (_, edges) = parse_matrix_market(Cursor::new(mtx)).unwrap();
        assert_eq!(edges, vec![(1, 0), (0, 1)]);
    }

    #[test]
    fn parse_real_values_ignored() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 0.5\n2 1 1.5\n";
        let (_, edges) = parse_matrix_market(Cursor::new(mtx)).unwrap();
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn symmetric_diagonal_not_doubled() {
        let mtx = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 1\n";
        let (_, edges) = parse_matrix_market(Cursor::new(mtx)).unwrap();
        assert_eq!(edges, vec![(0, 0)]);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(
            parse_matrix_market(Cursor::new("%%MatrixMarket matrix array real general\n")).is_err()
        );
        assert!(parse_matrix_market(Cursor::new("garbage\n")).is_err());
    }

    #[test]
    fn rejects_skew_symmetric_and_complex() {
        // `contains("symmetric")` used to match this and silently expand
        // M[j][i] = -M[i][j] entries as if they were symmetric.
        let skew = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 5.0\n";
        let err = parse_matrix_market(Cursor::new(skew)).unwrap_err();
        assert!(err.to_string().contains("skew-symmetric"), "{err}");
        // Complex has two value columns; the old value check misread it.
        let complex = "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2 1.0 0.0\n";
        let err = parse_matrix_market(Cursor::new(complex)).unwrap_err();
        assert!(err.to_string().contains("complex"), "{err}");
        let hermitian = "%%MatrixMarket matrix coordinate complex hermitian\n2 2 1\n1 2 1.0 0.0\n";
        assert!(parse_matrix_market(Cursor::new(hermitian)).is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(parse_matrix_market(Cursor::new(mtx)).is_err());
        let mtx0 = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(parse_matrix_market(Cursor::new(mtx0)).is_err());
    }

    #[test]
    fn missing_value_detected() {
        let mtx = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n";
        assert!(parse_matrix_market(Cursor::new(mtx)).is_err());
    }

    #[test]
    fn truncated_file_detected() {
        // Declares 4 entries, delivers 2: the seed parser accepted this.
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n3 3 4\n1 2\n2 3\n";
        let err = parse_matrix_market(Cursor::new(mtx)).unwrap_err();
        assert!(err.to_string().contains("declares 4"), "{err}");
        // Padding (more entries than declared) is an error too.
        let padded = "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 2\n2 3\n";
        assert!(parse_matrix_market(Cursor::new(padded)).is_err());
    }

    #[test]
    fn hostile_nnz_does_not_preallocate() {
        // usize::MAX nnz: must fail on the count check without trying to
        // reserve 2^64 entries first (the seed passed nnz straight into
        // Vec::with_capacity and aborted).
        let mtx = format!(
            "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 {}\n1 2\n",
            usize::MAX
        );
        let err = parse_matrix_market(Cursor::new(mtx)).unwrap_err();
        assert!(err.to_string().contains("entries"), "{err}");
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    fn dims_beyond_u32_rejected() {
        // An in-range index of a >2^32-dim matrix would silently wrap in
        // the `as u32` shift; such dims are rejected up front.
        let mtx = "%%MatrixMarket matrix coordinate pattern general\n\
                   5000000000 5000000000 1\n4294967299 1\n";
        let err = parse_matrix_market(Cursor::new(mtx)).unwrap_err();
        assert!(err.to_string().contains("u32"), "{err}");
        // The boundary itself is fine: n = 2^32 maps ids 0..=u32::MAX.
        assert!(check_mtx_dims((u32::MAX as usize) + 1).is_ok());
        assert!(check_mtx_dims((u32::MAX as usize) + 2).is_err());
    }

    #[test]
    fn header_tokenizer_cases() {
        let h = parse_mtx_header("%%MatrixMarket matrix coordinate pattern general").unwrap();
        assert_eq!(
            h,
            MtxHeader {
                symmetric: false,
                has_value: false
            }
        );
        let h = parse_mtx_header("%%matrixmarket MATRIX Coordinate Integer SYMMETRIC").unwrap();
        assert_eq!(
            h,
            MtxHeader {
                symmetric: true,
                has_value: true
            }
        );
        assert!(parse_mtx_header("%%MatrixMarket matrix coordinate").is_err());
        assert!(parse_mtx_header("%%MatrixMarket vector coordinate pattern general").is_err());
        assert!(parse_mtx_size("3 3").is_err());
        assert!(parse_mtx_size("3 3 x").is_err());
        assert_eq!(parse_mtx_size("4 5 6").unwrap(), (4, 5, 6));
    }
}
