//! Whitespace-separated edge-list I/O (SNAP style).
//!
//! Format: one `u v` pair per line; `#` or `%` lines are comments. A third
//! column (weight or timestamp) is tolerated and ignored. Vertex ids are
//! compacted: the file's max id + 1 becomes the vertex count.

use crate::digraph::DynGraph;
use crate::types::{Edge, GraphError, Result};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parse an edge list from any reader. Returns `(n, edges)` where `n` is
/// `max_id + 1`.
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<(usize, Vec<Edge>)> {
    let mut edges = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Parse(format!("line {}: {e}", lineno + 1)))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let u: u32 = parts
            .next()
            .ok_or_else(|| GraphError::Parse(format!("line {}: missing source", lineno + 1)))?
            .parse()
            .map_err(|e| GraphError::Parse(format!("line {}: {e}", lineno + 1)))?;
        let v: u32 = parts
            .next()
            .ok_or_else(|| GraphError::Parse(format!("line {}: missing target", lineno + 1)))?
            .parse()
            .map_err(|e| GraphError::Parse(format!("line {}: {e}", lineno + 1)))?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    Ok((n, edges))
}

/// Read an edge-list file into a deduplicated [`DynGraph`].
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<DynGraph> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| GraphError::Parse(format!("{}: {e}", path.as_ref().display())))?;
    let (n, mut edges) = parse_edge_list(std::io::BufReader::new(file))?;
    edges.sort_unstable();
    edges.dedup();
    Ok(crate::digraph::DynGraph::from_sorted_edges(n, &edges))
}

/// Write a graph as a `u v` edge list with a header comment.
pub fn write_edge_list<P: AsRef<Path>>(path: P, g: &DynGraph) -> Result<()> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| GraphError::Parse(format!("{}: {e}", path.as_ref().display())))?;
    let mut w = BufWriter::new(file);
    let mut emit = || -> std::io::Result<()> {
        writeln!(
            w,
            "# vertices: {} edges: {}",
            g.num_vertices(),
            g.num_edges()
        )?;
        for (u, v) in g.edges() {
            writeln!(w, "{u} {v}")?;
        }
        w.flush()
    };
    emit().map_err(|e| GraphError::Parse(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic() {
        let input = "# comment\n0 1\n1 2\n% another\n2 0 17\n";
        let (n, edges) = parse_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(n, 3);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn parse_empty() {
        let (n, edges) = parse_edge_list(Cursor::new("# only comments\n")).unwrap();
        assert_eq!(n, 0);
        assert!(edges.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_edge_list(Cursor::new("0 x\n")).is_err());
        assert!(parse_edge_list(Cursor::new("0\n")).is_err());
    }

    #[test]
    fn roundtrip_via_tempfile() {
        let mut g = DynGraph::new(4);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(1, 3).unwrap();
        g.insert_edge(3, 0).unwrap();
        let path = std::env::temp_dir().join("lfpr_edge_list_roundtrip.txt");
        write_edge_list(&path, &g).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.num_edges(), g2.num_edges());
        for (u, v) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn read_missing_file_errors() {
        assert!(read_edge_list("/nonexistent/definitely/missing.txt").is_err());
    }
}
