//! Whitespace-separated edge-list I/O (SNAP style).
//!
//! Format: one `u v` pair per line; `#` or `%` lines are comments. A third
//! column (weight or timestamp) is tolerated and ignored. The SNAP
//! `# Nodes: N Edges: M` comment header, when present among the leading
//! comments, fixes the vertex count: `n = max(N, max_id + 1)`, so
//! trailing isolated vertices survive a round trip. Without a header,
//! `n = max_id + 1` (the seed behavior).
//!
//! [`read_edge_list`] goes through the streaming parser
//! ([`super::stream`]); the line-by-line [`parse_edge_list`] /
//! [`read_edge_list_buffered`] pair is kept for in-memory readers and as
//! the baseline the `ingest_bench` binary measures against.

use super::stream::{self, GraphFormat};
use crate::digraph::DynGraph;
use crate::types::{Edge, GraphError, Result};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Parse the SNAP `# Nodes: N Edges: M` header out of one comment line
/// (leading `#`/`%` markers already present). Returns `(nodes, edges)`;
/// the `Edges:` count is optional and reported as 0 when absent.
pub(crate) fn snap_header(comment: &str) -> Option<(usize, usize)> {
    let mut nodes = None;
    let mut edges = 0usize;
    let mut toks = comment.trim_start_matches(['#', '%']).split_whitespace();
    while let Some(tok) = toks.next() {
        if tok.eq_ignore_ascii_case("nodes:") {
            nodes = toks.next().and_then(|t| t.parse().ok());
        } else if tok.eq_ignore_ascii_case("edges:") {
            if let Some(m) = toks.next().and_then(|t| t.parse().ok()) {
                edges = m;
            }
        }
    }
    nodes.map(|n| (n, edges))
}

/// Parse an edge list from any reader (line-by-line; see module docs
/// for the streaming alternative). Returns `(n, edges)` where `n` is
/// `max(header N, max_id + 1)`.
pub fn parse_edge_list<R: BufRead>(reader: R) -> Result<(usize, Vec<Edge>)> {
    let mut edges = Vec::new();
    let mut max_id = 0u32;
    let mut declared_n = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Parse(format!("line {}: {e}", lineno + 1)))?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with('#') || t.starts_with('%') {
            // Only leading comments carry the SNAP header (same rule as
            // the streaming parser, which never scans body comments).
            if edges.is_empty() {
                if let Some((n, _m)) = snap_header(t) {
                    declared_n = declared_n.max(n);
                }
            }
            continue;
        }
        let mut parts = t.split_whitespace();
        let u: u32 = parts
            .next()
            .ok_or_else(|| GraphError::Parse(format!("line {}: missing source", lineno + 1)))?
            .parse()
            .map_err(|e| GraphError::Parse(format!("line {}: {e}", lineno + 1)))?;
        let v: u32 = parts
            .next()
            .ok_or_else(|| GraphError::Parse(format!("line {}: missing target", lineno + 1)))?
            .parse()
            .map_err(|e| GraphError::Parse(format!("line {}: {e}", lineno + 1)))?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        declared_n
    } else {
        declared_n.max(max_id as usize + 1)
    };
    Ok((n, edges))
}

/// Read an edge-list file into a deduplicated [`DynGraph`] through the
/// streaming parser (mmap + parallel chunk parse).
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> Result<DynGraph> {
    stream::load_graph(path, GraphFormat::Snap)
}

/// Read an edge-list file through the line-by-line `BufRead` parser
/// (the seed loader). Kept as the reference/baseline implementation;
/// prefer [`read_edge_list`].
pub fn read_edge_list_buffered<P: AsRef<Path>>(path: P) -> Result<DynGraph> {
    let file = std::fs::File::open(path.as_ref())
        .map_err(|e| GraphError::Parse(format!("{}: {e}", path.as_ref().display())))?;
    let (n, edges) = parse_edge_list(std::io::BufReader::new(file))?;
    DynGraph::from_edges(n, edges)
}

/// Write a graph as a `u v` edge list with a SNAP-style `# Nodes: N
/// Edges: M` header, so a round trip preserves isolated vertices.
pub fn write_edge_list<P: AsRef<Path>>(path: P, g: &DynGraph) -> Result<()> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| GraphError::Parse(format!("{}: {e}", path.as_ref().display())))?;
    let mut w = BufWriter::new(file);
    let mut emit = || -> std::io::Result<()> {
        writeln!(w, "# Nodes: {} Edges: {}", g.num_vertices(), g.num_edges())?;
        for (u, v) in g.edges() {
            writeln!(w, "{u} {v}")?;
        }
        w.flush()
    };
    emit().map_err(|e| GraphError::Parse(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic() {
        let input = "# comment\n0 1\n1 2\n% another\n2 0 17\n";
        let (n, edges) = parse_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(n, 3);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn parse_empty() {
        let (n, edges) = parse_edge_list(Cursor::new("# only comments\n")).unwrap();
        assert_eq!(n, 0);
        assert!(edges.is_empty());
    }

    #[test]
    fn parse_snap_header_fixes_vertex_count() {
        let (n, edges) = parse_edge_list(Cursor::new("# Nodes: 9 Edges: 2\n0 1\n1 2\n")).unwrap();
        assert_eq!(n, 9, "isolated vertices 3..9 must not vanish");
        assert_eq!(edges.len(), 2);
        // Header never shrinks below the observed ids.
        let (n, _) = parse_edge_list(Cursor::new("# Nodes: 2 Edges: 1\n0 7\n")).unwrap();
        assert_eq!(n, 8);
        // Header alone: all-isolated graph.
        let (n, edges) = parse_edge_list(Cursor::new("# Nodes: 4 Edges: 0\n")).unwrap();
        assert_eq!(n, 4);
        assert!(edges.is_empty());
    }

    #[test]
    fn snap_header_tokenizer() {
        assert_eq!(
            snap_header("# Nodes: 875713 Edges: 5105039"),
            Some((875713, 5105039))
        );
        assert_eq!(snap_header("# Nodes: 12"), Some((12, 0)));
        assert_eq!(snap_header("# nodes: 3 edges: 4"), Some((3, 4)));
        assert_eq!(
            snap_header("# Directed graph (each unordered pair once)"),
            None
        );
        assert_eq!(snap_header("# Nodes: x Edges: 4"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_edge_list(Cursor::new("0 x\n")).is_err());
        assert!(parse_edge_list(Cursor::new("0\n")).is_err());
    }

    #[test]
    fn roundtrip_via_tempfile() {
        let mut g = DynGraph::new(4);
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(1, 3).unwrap();
        g.insert_edge(3, 0).unwrap();
        let path = std::env::temp_dir().join("lfpr_edge_list_roundtrip.txt");
        write_edge_list(&path, &g).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        let g3 = read_edge_list_buffered(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // The header preserves the full vertex set (vertex 2 is isolated).
        assert_eq!(g, g2);
        assert_eq!(g, g3);
    }

    #[test]
    fn read_missing_file_errors() {
        assert!(read_edge_list("/nonexistent/definitely/missing.txt").is_err());
        assert!(read_edge_list_buffered("/nonexistent/definitely/missing.txt").is_err());
    }
}
