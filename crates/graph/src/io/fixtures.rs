//! Real-format fixture writers: downloader-free SuiteSparse/SNAP
//! stand-ins.
//!
//! The paper's Table 2 runs on real `.mtx` / SNAP files. This container
//! cannot download them, so the benches emit the *generated* suite in
//! the real on-disk formats instead — `target/fixtures/` holds small
//! `.mtx` and SNAP edge-list files produced from the generators, and
//! Table 2 / CI / the ingestion bench then exercise the full
//! disk → parse → CSR → kernel path offline. When real datasets are
//! available, point `--graph` at them; nothing here is fixture-specific.

use super::edge_list::write_edge_list;
use super::stream::GraphFormat;
use crate::digraph::DynGraph;
use crate::types::{GraphError, Result};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// The default fixture directory: `$CARGO_TARGET_DIR/fixtures` (or
/// `target/fixtures` relative to the working directory).
pub fn fixtures_dir() -> PathBuf {
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"))
        .join("fixtures")
}

/// Turn a dataset name (possibly containing `*` or other shell-hostile
/// characters) into a safe file stem.
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Write `g` as a SNAP-style edge list (with the `# Nodes: N Edges: M`
/// header, so the vertex count round-trips).
pub fn write_snap<P: AsRef<Path>>(path: P, g: &DynGraph) -> Result<()> {
    write_edge_list(path, g)
}

/// Write `g` as a MatrixMarket coordinate pattern file (1-indexed,
/// `general` symmetry: every directed edge is its own entry).
pub fn write_mtx<P: AsRef<Path>>(path: P, g: &DynGraph) -> Result<()> {
    let file = std::fs::File::create(path.as_ref())
        .map_err(|e| GraphError::Parse(format!("{}: {e}", path.as_ref().display())))?;
    let mut w = BufWriter::new(file);
    let mut emit = || -> std::io::Result<()> {
        writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
        writeln!(w, "% generated fixture (lockfree-pagerank)")?;
        writeln!(
            w,
            "{} {} {}",
            g.num_vertices(),
            g.num_vertices(),
            g.num_edges()
        )?;
        for (u, v) in g.edges() {
            writeln!(w, "{} {}", u + 1, v + 1)?;
        }
        w.flush()
    };
    emit().map_err(|e| GraphError::Parse(e.to_string()))
}

/// Write `g` into `dir` as `<sanitized name>.<ext>` in the given
/// format, creating the directory if needed. Returns the path.
pub fn write_fixture(dir: &Path, name: &str, format: GraphFormat, g: &DynGraph) -> Result<PathBuf> {
    std::fs::create_dir_all(dir)
        .map_err(|e| GraphError::Parse(format!("{}: {e}", dir.display())))?;
    let path = dir.join(format!("{}.{}", sanitize_name(name), format.extension()));
    match format {
        GraphFormat::Snap => write_snap(&path, g)?,
        GraphFormat::Mtx => write_mtx(&path, g)?,
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_edge_list, read_matrix_market};

    fn sample() -> DynGraph {
        let mut g = DynGraph::new(5); // vertex 4 isolated
        g.insert_edge(0, 1).unwrap();
        g.insert_edge(1, 2).unwrap();
        g.insert_edge(2, 0).unwrap();
        g.insert_edge(3, 3).unwrap();
        g
    }

    #[test]
    fn fixture_roundtrips_both_formats() {
        let dir = std::env::temp_dir().join(format!("lfpr_fixtures_{}", std::process::id()));
        let g = sample();
        let snap = write_fixture(&dir, "round/trip*", GraphFormat::Snap, &g).unwrap();
        let mtx = write_fixture(&dir, "round/trip*", GraphFormat::Mtx, &g).unwrap();
        assert!(snap
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with(".txt"));
        assert!(mtx.file_name().unwrap().to_str().unwrap().ends_with(".mtx"));
        let g_snap = read_edge_list(&snap).unwrap();
        let g_mtx = read_matrix_market(&mtx).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        // Identical including the isolated vertex (SNAP header / mtx size
        // line both carry n).
        assert_eq!(g, g_snap);
        assert_eq!(g, g_mtx);
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize_name("uk-2005*"), "uk-2005-");
        assert_eq!(sanitize_name("kmer_A2a"), "kmer_A2a");
        assert_eq!(sanitize_name("a b/c"), "a-b-c");
    }
}
