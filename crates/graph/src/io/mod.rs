//! Graph input/output: plain edge lists and MatrixMarket.
//!
//! Lets users run the harness against the paper's actual datasets
//! (SuiteSparse `.mtx`, SNAP edge lists) when they have them on disk; the
//! benches fall back to generated graphs otherwise.

pub mod edge_list;
pub mod matrix_market;

pub use edge_list::{read_edge_list, write_edge_list};
pub use matrix_market::read_matrix_market;
