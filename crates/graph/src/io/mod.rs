//! Graph input/output: streaming ingestion, plain edge lists,
//! MatrixMarket, and fixture writers.
//!
//! Two supported on-disk formats ([`GraphFormat`]):
//!
//! * **SNAP edge lists** — one `u v` pair per line, `#`/`%` comments, an
//!   optional `# Nodes: N Edges: M` header that preserves trailing
//!   isolated vertices (`n = max(N, max_id + 1)`); a third column is
//!   tolerated and ignored.
//! * **MatrixMarket coordinate** (SuiteSparse `.mtx`) — `matrix
//!   coordinate (pattern|real|integer) (general|symmetric)`, 1-indexed,
//!   values ignored, symmetric inputs expanded to both directions. The
//!   declared `nnz` is validated against the actual entry count.
//!
//! The default loaders ([`read_edge_list`], [`read_matrix_market`], and
//! the format-generic [`load_graph`]) go through the **streaming
//! subsystem** ([`stream`]): the file is memory-mapped (or block-read,
//! see [`mmap`]), split into newline-aligned byte chunks, and parsed in
//! parallel on the persistent worker pool with zero per-line `String`
//! allocations. The line-by-line `BufRead` parsers remain available for
//! in-memory readers and as the measured baseline
//! (`read_*_buffered`); the `ingest_bench` binary tracks the speedup.
//!
//! [`fixtures`] writes generated graphs back out in these real formats
//! (default directory `target/fixtures/`), giving the benches and CI a
//! downloader-free disk → parse → CSR → kernel path.

pub mod edge_list;
pub mod fixtures;
pub mod matrix_market;
pub mod mmap;
pub mod stream;
pub mod wal;

pub use edge_list::{parse_edge_list, read_edge_list, read_edge_list_buffered, write_edge_list};
pub use matrix_market::{parse_matrix_market, read_matrix_market, read_matrix_market_buffered};
pub use stream::{load_graph, load_graph_auto, load_graph_with, GraphFormat, StreamOptions};
