//! Binary write-ahead log and checkpoint files for durable sessions.
//!
//! The WAL records every committed mutation of an update session —
//! batch commits and named-view management — as length- and
//! checksum-framed binary records, so a crashed process can rebuild the
//! exact session state by loading the latest checkpoint and replaying
//! the log tail through the ordinary `apply_batch` path. The framing is
//! deliberately dumb: any prefix of a record stream is recoverable, and
//! a torn tail (partial write, bit flip, garbage) stops replay cleanly
//! at the last intact record instead of propagating bad state.
//!
//! ```text
//! wal file   := magic "LFPRWAL1" , frame*
//! frame      := len:u32 , crc32(payload):u32 , payload[len]
//! payload    := kind:u8 , body
//! kind 1     := Commit   { epoch:u64, n_del:u32, n_ins:u32, (u:u32,v:u32)* }
//! kind 2     := ViewAdd  { epoch:u64, name:str16, n_src:u32, (v:u32,w:f64)* }
//! kind 3     := ViewDrop { epoch:u64, name:str16 }
//! str16      := len:u16 , utf8 bytes
//! ```
//!
//! All integers are little-endian; `f64` travels as its IEEE-754 bit
//! pattern (`to_bits`), so replay reproduces weights *bit for bit* —
//! the recovery acceptance test diffs ranks by bits, not by epsilon.
//!
//! Checkpoints serialize one whole committed epoch (graph edges, rank
//! vectors, per-view state, last-step deltas) into a single
//! crc-trailered file written atomically (tmp + fsync + rename), after
//! which the WAL can be truncated. See `docs/DURABILITY.md` for the
//! recovery algorithm built on top of these primitives.

use crate::batch::BatchUpdate;
use crate::io::mmap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Magic prefix of a WAL file (version 1).
pub const WAL_MAGIC: &[u8; 8] = b"LFPRWAL1";
/// Magic prefix of a checkpoint file (version 1).
pub const CKPT_MAGIC: &[u8; 8] = b"LFPRCKP1";
/// Upper bound on one record's payload, to reject implausible lengths
/// from corrupt headers before allocating.
pub const MAX_RECORD_LEN: u32 = 1 << 30;

/// CRC-32 (IEEE 802.3, the zlib polynomial), computed bytewise from a
/// lazily built table — vendored in-repo because the offline container
/// has no checksum crate.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// When the WAL writer calls `fsync` after appending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record: survives power loss, slowest.
    Always,
    /// Sync after every `k`-th record (and on graceful shutdown).
    EveryK(u32),
    /// Never sync explicitly: survives process crash (data reached the
    /// kernel), not power loss.
    Never,
}

impl FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            _ => match s.strip_prefix("every-").and_then(|k| k.parse::<u32>().ok()) {
                Some(k) if k > 0 => Ok(FsyncPolicy::EveryK(k)),
                _ => Err(format!(
                    "bad fsync policy {s} (want always, never, or every-<k>)"
                )),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryK(k) => write!(f, "every-{k}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// One logged session mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed batch that produced `epoch`.
    Commit {
        /// The epoch the commit produced (`session.steps()` after).
        epoch: u64,
        /// The normalized edits, exactly as applied.
        batch: BatchUpdate,
    },
    /// A named view created at `epoch`.
    ViewAdd {
        /// Epoch the view's initial ranks were computed at.
        epoch: u64,
        /// View name.
        name: String,
        /// Personalized teleport sources as *normalized* `(vertex,
        /// weight)` pairs (empty = uniform restart). Stored normalized
        /// so replay skips re-normalization and reproduces the exact
        /// bits.
        sources: Vec<(u32, f64)>,
    },
    /// A named view dropped at `epoch`.
    ViewDrop {
        /// Epoch current when the view was dropped.
        epoch: u64,
        /// View name.
        name: String,
    },
}

impl WalRecord {
    /// The epoch this record belongs to.
    pub fn epoch(&self) -> u64 {
        match self {
            WalRecord::Commit { epoch, .. }
            | WalRecord::ViewAdd { epoch, .. }
            | WalRecord::ViewDrop { epoch, .. } => *epoch,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            WalRecord::Commit { epoch, batch } => {
                p.push(1u8);
                put_u64(&mut p, *epoch);
                put_u32(&mut p, batch.deletions.len() as u32);
                put_u32(&mut p, batch.insertions.len() as u32);
                for &(u, v) in batch.deletions.iter().chain(&batch.insertions) {
                    put_u32(&mut p, u);
                    put_u32(&mut p, v);
                }
            }
            WalRecord::ViewAdd {
                epoch,
                name,
                sources,
            } => {
                p.push(2u8);
                put_u64(&mut p, *epoch);
                put_str16(&mut p, name);
                put_u32(&mut p, sources.len() as u32);
                for &(v, w) in sources {
                    put_u32(&mut p, v);
                    put_u64(&mut p, w.to_bits());
                }
            }
            WalRecord::ViewDrop { epoch, name } => {
                p.push(3u8);
                put_u64(&mut p, *epoch);
                put_str16(&mut p, name);
            }
        }
        p
    }

    fn decode(payload: &[u8]) -> Result<WalRecord, String> {
        let mut c = Cursor::new(payload);
        let kind = c.u8().ok_or("empty payload")?;
        let rec = match kind {
            1 => {
                let epoch = c.u64().ok_or("commit: short epoch")?;
                let n_del = c.u32().ok_or("commit: short n_del")? as usize;
                let n_ins = c.u32().ok_or("commit: short n_ins")? as usize;
                let mut batch = BatchUpdate::new();
                batch.deletions.reserve(n_del);
                batch.insertions.reserve(n_ins);
                for i in 0..n_del + n_ins {
                    let u = c.u32().ok_or("commit: short edge list")?;
                    let v = c.u32().ok_or("commit: short edge list")?;
                    if i < n_del {
                        batch.deletions.push((u, v));
                    } else {
                        batch.insertions.push((u, v));
                    }
                }
                WalRecord::Commit { epoch, batch }
            }
            2 => {
                let epoch = c.u64().ok_or("view-add: short epoch")?;
                let name = c.str16().ok_or("view-add: bad name")?;
                let n_src = c.u32().ok_or("view-add: short source count")? as usize;
                let mut sources = Vec::with_capacity(n_src.min(1 << 20));
                for _ in 0..n_src {
                    let v = c.u32().ok_or("view-add: short source list")?;
                    let w = f64::from_bits(c.u64().ok_or("view-add: short source list")?);
                    sources.push((v, w));
                }
                WalRecord::ViewAdd {
                    epoch,
                    name,
                    sources,
                }
            }
            3 => {
                let epoch = c.u64().ok_or("view-drop: short epoch")?;
                let name = c.str16().ok_or("view-drop: bad name")?;
                WalRecord::ViewDrop { epoch, name }
            }
            k => return Err(format!("unknown record kind {k}")),
        };
        if !c.done() {
            return Err("trailing bytes inside record".into());
        }
        Ok(rec)
    }
}

/// Appends framed records to a WAL file under a [`FsyncPolicy`].
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    bytes: u64,
    unsynced: u32,
}

impl WalWriter {
    /// Create (or truncate) the WAL at `path` and write the magic.
    pub fn create<P: AsRef<Path>>(path: P, policy: FsyncPolicy) -> io::Result<WalWriter> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path,
            policy,
            bytes: WAL_MAGIC.len() as u64,
            unsynced: 0,
        })
    }

    /// Reopen an existing WAL for appending, first truncating it to
    /// `valid_len` — the intact prefix a [`read_wal`] replay reported —
    /// so a torn tail is physically removed before new records follow
    /// it. A missing or headerless file is recreated from scratch.
    pub fn open_append<P: AsRef<Path>>(
        path: P,
        policy: FsyncPolicy,
        valid_len: u64,
    ) -> io::Result<WalWriter> {
        if valid_len < WAL_MAGIC.len() as u64 {
            return Self::create(path, policy);
        }
        let path = path.as_ref().to_path_buf();
        let mut file = match OpenOptions::new().write(true).open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Self::create(path, policy),
            Err(e) => return Err(e),
        };
        let actual = file.metadata()?.len();
        if actual < valid_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wal shrank below its valid prefix ({actual} < {valid_len})"),
            ));
        }
        if actual > valid_len {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            path,
            policy,
            bytes: valid_len,
            unsynced: 0,
        })
    }

    /// Append one record; returns the file length after the append.
    /// Data reaches the kernel unconditionally (no userspace buffering);
    /// whether it reaches the platter is the policy's call.
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<u64> {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryK(k) if self.unsynced >= k => self.sync()?,
            _ => {}
        }
        Ok(self.bytes)
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Current file length in bytes (magic included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The outcome of scanning a WAL file: every intact record in order,
/// plus what (if anything) had to be abandoned at the tail.
#[derive(Debug)]
pub struct WalReplay {
    /// Intact records with the byte offset their frame starts at.
    pub records: Vec<(u64, WalRecord)>,
    /// Length of the intact prefix — truncate the file here before
    /// appending again.
    pub valid_len: u64,
    /// Actual file length found on disk.
    pub total_len: u64,
    /// Why scanning stopped before `total_len`, when it did.
    pub truncated: Option<String>,
}

impl WalReplay {
    /// Bytes past the last intact record.
    pub fn truncated_bytes(&self) -> u64 {
        self.total_len - self.valid_len
    }
}

/// Scan a WAL file (via the mmap/block-read machinery the streaming
/// loaders use) into its intact record prefix. Never fails on content:
/// a bad header, torn frame, checksum mismatch, or undecodable payload
/// stops the scan cleanly with the reason in `truncated`. I/O errors
/// (missing file, unreadable) do surface as `Err`.
pub fn read_wal<P: AsRef<Path>>(path: P) -> io::Result<WalReplay> {
    let bytes = mmap::read_bytes(path)?;
    let data: &[u8] = &bytes;
    let total_len = data.len() as u64;
    if data.len() < WAL_MAGIC.len() || &data[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Ok(WalReplay {
            records: Vec::new(),
            valid_len: 0,
            total_len,
            truncated: Some("bad or missing wal header".into()),
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut truncated = None;
    while pos < data.len() {
        let Some(head) = data.get(pos..pos + 8) else {
            truncated = Some(format!("torn frame header at byte {pos}"));
            break;
        };
        let len = u32::from_le_bytes(head[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            truncated = Some(format!("implausible record length {len} at byte {pos}"));
            break;
        }
        let Some(payload) = data.get(pos + 8..pos + 8 + len as usize) else {
            truncated = Some(format!("torn record at byte {pos}"));
            break;
        };
        if crc32(payload) != crc {
            truncated = Some(format!("checksum mismatch at byte {pos}"));
            break;
        }
        match WalRecord::decode(payload) {
            Ok(rec) => records.push((pos as u64, rec)),
            Err(e) => {
                truncated = Some(format!("undecodable record at byte {pos}: {e}"));
                break;
            }
        }
        pos += 8 + len as usize;
    }
    Ok(WalReplay {
        records,
        valid_len: pos as u64,
        total_len,
        truncated,
    })
}

/// A named view frozen into a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointView {
    /// View name.
    pub name: String,
    /// Normalized personalized sources (empty = uniform restart).
    pub sources: Vec<(u32, f64)>,
    /// The view's rank vector at the checkpoint epoch.
    pub ranks: Vec<f64>,
    /// The view's last-step rank deltas as `(vertex, old, new)`.
    pub deltas: Vec<(u32, f64, f64)>,
}

/// One whole committed epoch, serializable to a single file.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The epoch this state belongs to.
    pub epoch: u64,
    /// Algorithm name (`Display` form, e.g. `DFLF`), parseable back.
    pub algo: String,
    /// Vertex count.
    pub n: u32,
    /// Every edge of the graph (self-loops included); sorted adjacency
    /// is re-derived on load, so order does not matter.
    pub edges: Vec<(u32, u32)>,
    /// The default rank vector, bit-exact.
    pub ranks: Vec<f64>,
    /// Last-step rank deltas as `(vertex, old, new)` — restored so
    /// `movers` answers survive a recovery landing exactly on the
    /// checkpoint epoch.
    pub deltas: Vec<(u32, f64, f64)>,
    /// Named views in creation order.
    pub views: Vec<CheckpointView>,
    /// The load-time vertex permutation (`perm[external] = internal`)
    /// when the session renumbered its vertices; `None` writes nothing,
    /// so unreordered checkpoints stay byte-identical to the original
    /// format and old checkpoints (which end after the views) still
    /// decode.
    pub perm: Option<Vec<u32>>,
}

impl Checkpoint {
    fn encode_body(&self) -> Vec<u8> {
        let mut b = Vec::new();
        put_u64(&mut b, self.epoch);
        put_str16(&mut b, &self.algo);
        put_u32(&mut b, self.n);
        put_u64(&mut b, self.edges.len() as u64);
        for &(u, v) in &self.edges {
            put_u32(&mut b, u);
            put_u32(&mut b, v);
        }
        put_ranks(&mut b, &self.ranks);
        put_deltas(&mut b, &self.deltas);
        put_u32(&mut b, self.views.len() as u32);
        for view in &self.views {
            put_str16(&mut b, &view.name);
            put_u32(&mut b, view.sources.len() as u32);
            for &(v, w) in &view.sources {
                put_u32(&mut b, v);
                put_u64(&mut b, w.to_bits());
            }
            put_ranks(&mut b, &view.ranks);
            put_deltas(&mut b, &view.deltas);
        }
        // Optional trailers, each tagged with a kind byte. Introduced
        // after v1 shipped: a reader at the old format rejects a
        // checkpoint carrying one (clean refusal, not silent id
        // garbage), while this reader accepts trailer-less bodies.
        if let Some(perm) = &self.perm {
            b.push(1u8);
            put_u32(&mut b, perm.len() as u32);
            for &p in perm {
                put_u32(&mut b, p);
            }
        }
        b
    }

    fn decode_body(body: &[u8]) -> Result<Checkpoint, String> {
        let mut c = Cursor::new(body);
        let epoch = c.u64().ok_or("short epoch")?;
        let algo = c.str16().ok_or("bad algo string")?;
        let n = c.u32().ok_or("short vertex count")?;
        let m = c.u64().ok_or("short edge count")? as usize;
        let mut edges = Vec::with_capacity(m.min(1 << 26));
        for _ in 0..m {
            let u = c.u32().ok_or("short edge list")?;
            let v = c.u32().ok_or("short edge list")?;
            edges.push((u, v));
        }
        let ranks = c.ranks().ok_or("short rank vector")?;
        let deltas = c.deltas().ok_or("short delta list")?;
        let n_views = c.u32().ok_or("short view count")? as usize;
        let mut views = Vec::with_capacity(n_views.min(1 << 16));
        for _ in 0..n_views {
            let name = c.str16().ok_or("bad view name")?;
            let n_src = c.u32().ok_or("short view source count")? as usize;
            let mut sources = Vec::with_capacity(n_src.min(1 << 20));
            for _ in 0..n_src {
                let v = c.u32().ok_or("short view source list")?;
                let w = f64::from_bits(c.u64().ok_or("short view source list")?);
                sources.push((v, w));
            }
            let ranks = c.ranks().ok_or("short view rank vector")?;
            let deltas = c.deltas().ok_or("short view delta list")?;
            views.push(CheckpointView {
                name,
                sources,
                ranks,
                deltas,
            });
        }
        let perm = if c.done() {
            None
        } else {
            match c.u8() {
                Some(1) => {
                    let len = c.u32().ok_or("short permutation length")? as usize;
                    if len > body.len() / 4 {
                        return Err("implausible permutation length".into());
                    }
                    let mut p = Vec::with_capacity(len);
                    for _ in 0..len {
                        p.push(c.u32().ok_or("short permutation")?);
                    }
                    Some(p)
                }
                Some(k) => return Err(format!("unknown checkpoint trailer kind {k}")),
                None => return Err("trailing bytes after views".into()),
            }
        };
        if !c.done() {
            return Err("trailing bytes after views".into());
        }
        Ok(Checkpoint {
            epoch,
            algo,
            n,
            edges,
            ranks,
            deltas,
            views,
            perm,
        })
    }
}

/// Write `ckpt` to `path` atomically: serialize with a trailing CRC
/// into `<path>.tmp`, fsync, rename over the target, fsync the
/// directory. A crash at any point leaves either the old checkpoint or
/// the new one — never a hybrid.
pub fn write_checkpoint<P: AsRef<Path>>(path: P, ckpt: &Checkpoint) -> io::Result<()> {
    let path = path.as_ref();
    let body = ckpt.encode_body();
    let mut out = Vec::with_capacity(CKPT_MAGIC.len() + body.len() + 4);
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&body);
    put_u32(&mut out, crc32(&body));
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(&out)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Load and validate a checkpoint. Content-level problems (bad magic,
/// CRC mismatch, short body) come back as `Err(reason)` with a stable
/// human-readable reason; so do I/O failures, with the OS error folded
/// into the text.
pub fn read_checkpoint<P: AsRef<Path>>(path: P) -> Result<Checkpoint, String> {
    let bytes = mmap::read_bytes(&path).map_err(|e| format!("cannot read checkpoint: {e}"))?;
    let data: &[u8] = &bytes;
    if data.len() < CKPT_MAGIC.len() + 4 || &data[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err("bad or missing checkpoint header".into());
    }
    let body = &data[CKPT_MAGIC.len()..data.len() - 4];
    let stored = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
    if crc32(body) != stored {
        return Err("checkpoint checksum mismatch".into());
    }
    Checkpoint::decode_body(body).map_err(|e| format!("checkpoint corrupt: {e}"))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str16(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_ranks(out: &mut Vec<u8>, ranks: &[f64]) {
    put_u64(out, ranks.len() as u64);
    for &r in ranks {
        put_u64(out, r.to_bits());
    }
}

fn put_deltas(out: &mut Vec<u8>, deltas: &[(u32, f64, f64)]) {
    put_u32(out, deltas.len() as u32);
    for &(v, old, new) in deltas {
        put_u32(out, v);
        put_u64(out, old.to_bits());
        put_u64(out, new.to_bits());
    }
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.data.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str16(&mut self) -> Option<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn ranks(&mut self) -> Option<Vec<f64>> {
        let len = self.u64()? as usize;
        if len > self.data.len() - self.pos {
            return None; // cheaper than 8x, but still an upper bound
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f64::from_bits(self.u64()?));
        }
        Some(out)
    }

    fn deltas(&mut self) -> Option<Vec<(u32, f64, f64)>> {
        let len = self.u32()? as usize;
        if len > self.data.len() - self.pos {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let v = self.u32()?;
            let old = f64::from_bits(self.u64()?);
            let new = f64::from_bits(self.u64()?);
            out.push((v, old, new));
        }
        Some(out)
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lfpr-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Commit {
                epoch: 1,
                batch: BatchUpdate {
                    deletions: vec![(3, 4)],
                    insertions: vec![(0, 1), (5, 6)],
                },
            },
            WalRecord::ViewAdd {
                epoch: 1,
                name: "ego".into(),
                sources: vec![(2, 0.25), (7, 0.75)],
            },
            WalRecord::Commit {
                epoch: 2,
                batch: BatchUpdate::insert_only(vec![(9, 2)]),
            },
            WalRecord::ViewDrop {
                epoch: 2,
                name: "ego".into(),
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vectors (zlib crc32).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        for (s, p) in [
            ("always", FsyncPolicy::Always),
            ("never", FsyncPolicy::Never),
            ("every-8", FsyncPolicy::EveryK(8)),
            ("every-1", FsyncPolicy::EveryK(1)),
        ] {
            assert_eq!(s.parse::<FsyncPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), s);
        }
        for bad in ["", "sometimes", "every-0", "every-", "every-x"] {
            assert!(bad.parse::<FsyncPolicy>().is_err(), "{bad}");
        }
    }

    #[test]
    fn records_round_trip_through_a_file() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, FsyncPolicy::EveryK(2)).unwrap();
        for rec in sample_records() {
            w.append(&rec).unwrap();
        }
        w.sync().unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.truncated.is_none(), "{:?}", replay.truncated);
        assert_eq!(replay.valid_len, replay.total_len);
        assert_eq!(replay.valid_len, w.bytes());
        let got: Vec<WalRecord> = replay.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(got, sample_records());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_append_truncates_the_torn_tail_and_continues() {
        let dir = tmpdir("append");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        w.append(&sample_records()[0]).unwrap();
        let intact = w.bytes();
        drop(w);
        // Simulate a torn write: garbage tail past the intact record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 5]).unwrap();
        drop(f);
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.valid_len, intact);
        assert!(replay.truncated.is_some());
        assert_eq!(replay.truncated_bytes(), 5);
        // Reopen at the valid prefix; the torn bytes must be gone.
        let mut w = WalWriter::open_append(&path, FsyncPolicy::Never, replay.valid_len).unwrap();
        w.append(&sample_records()[2]).unwrap();
        drop(w);
        let replay = read_wal(&path).unwrap();
        assert!(replay.truncated.is_none());
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].1, sample_records()[2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_byte_recovers_a_record_prefix() {
        let dir = tmpdir("trunc");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        let mut boundaries = vec![w.bytes()];
        for rec in sample_records() {
            boundaries.push(w.append(&rec).unwrap());
        }
        drop(w);
        let full = std::fs::read(&path).unwrap();
        let cut_path = dir.join("cut.log");
        for cut in 0..=full.len() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let replay = read_wal(&cut_path).unwrap();
            // The recovered records are exactly the whole frames below
            // the cut — never a partial one, never a lost intact one.
            let whole = boundaries
                .iter()
                .filter(|&&b| b <= cut as u64)
                .count()
                .saturating_sub(1);
            assert_eq!(replay.records.len(), whole, "cut at {cut}");
            let at_boundary = boundaries.contains(&(cut as u64));
            assert_eq!(replay.truncated.is_some(), !at_boundary, "cut at {cut}");
            for (rec, want) in replay.records.iter().zip(sample_records()) {
                assert_eq!(rec.1, want, "cut at {cut}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_caught_or_harmless() {
        // Flip each byte of a two-record log: replay must never panic,
        // and the *data* of surviving records must be authentic — a
        // record either comes back byte-identical or not at all.
        // (A flip inside the epoch field still yields a valid-looking
        // frame body only if the CRC also matched, which it cannot.)
        let dir = tmpdir("bitflip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, FsyncPolicy::Never).unwrap();
        let recs = sample_records();
        w.append(&recs[0]).unwrap();
        w.append(&recs[2]).unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        let flip_path = dir.join("flip.log");
        for i in 0..full.len() {
            let mut bad = full.clone();
            bad[i] ^= 0x40;
            std::fs::write(&flip_path, &bad).unwrap();
            let replay = read_wal(&flip_path).unwrap();
            for (_, got) in &replay.records {
                assert!(
                    *got == recs[0] || *got == recs[2],
                    "byte {i}: corrupted record slipped through: {got:?}"
                );
            }
            if replay.records.len() < 2 {
                assert!(replay.truncated.is_some(), "byte {i}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let dir = tmpdir("ckpt");
        let path = dir.join("state.ckpt");
        let ckpt = Checkpoint {
            epoch: 42,
            algo: "DFLF".into(),
            n: 4,
            edges: vec![(0, 1), (1, 2), (2, 0), (3, 3)],
            ranks: vec![0.1, 0.2, 0.3, f64::from_bits(0.4f64.to_bits() + 1)],
            deltas: vec![(1, 0.25, 0.2), (3, 0.35, 0.4)],
            views: vec![CheckpointView {
                name: "ego".into(),
                sources: vec![(1, 1.0 / 3.0), (2, 2.0 / 3.0)],
                ranks: vec![0.7, 0.1, 0.1, 0.1],
                deltas: vec![(0, 0.6, 0.7)],
            }],
            perm: None,
        };
        write_checkpoint(&path, &ckpt).unwrap();
        let got = read_checkpoint(&path).unwrap();
        assert_eq!(got, ckpt);
        for (a, b) in got.ranks.iter().zip(&ckpt.ranks) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(!path.with_extension("tmp").exists(), "tmp cleaned up");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn permutation_trailer_round_trips_and_stays_optional() {
        let dir = tmpdir("ckpt-perm");
        let path = dir.join("state.ckpt");
        let mut ckpt = Checkpoint {
            epoch: 7,
            algo: "DFLF".into(),
            n: 4,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
            ranks: vec![0.25; 4],
            deltas: vec![],
            views: vec![],
            perm: None,
        };
        // Without a permutation, the body ends after the views — the
        // original format, byte for byte.
        write_checkpoint(&path, &ckpt).unwrap();
        let plain = std::fs::read(&path).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap().perm, None);
        // With one, the trailer round-trips exactly.
        ckpt.perm = Some(vec![2, 0, 3, 1]);
        write_checkpoint(&path, &ckpt).unwrap();
        let got = read_checkpoint(&path).unwrap();
        assert_eq!(got.perm.as_deref(), Some(&[2, 0, 3, 1][..]));
        assert_eq!(got, ckpt);
        let with_perm = std::fs::read(&path).unwrap();
        assert_eq!(
            with_perm.len(),
            plain.len() + 1 + 4 + 4 * 4,
            "trailer adds exactly tag + len + entries"
        );
        // An unknown trailer kind is refused, not skipped: ids are not
        // something to guess about.
        let mut bad = plain.clone();
        let crc_at = bad.len() - 4;
        bad.insert(crc_at, 9u8); // unknown tag before the crc
        let body_start = CKPT_MAGIC.len();
        let crc = crc32(&bad[body_start..bad.len() - 4]);
        let at = bad.len() - 4;
        bad[at..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(
            read_checkpoint(&path).unwrap_err(),
            "checkpoint corrupt: unknown checkpoint trailer kind 9"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoints_are_refused_with_stable_reasons() {
        let dir = tmpdir("ckpt-bad");
        let path = dir.join("state.ckpt");
        assert!(read_checkpoint(&path)
            .unwrap_err()
            .starts_with("cannot read checkpoint"));
        let ckpt = Checkpoint {
            epoch: 1,
            algo: "DFLF".into(),
            n: 2,
            edges: vec![(0, 1)],
            ranks: vec![0.5, 0.5],
            deltas: vec![],
            views: vec![],
            perm: None,
        };
        write_checkpoint(&path, &ckpt).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip a body byte: CRC mismatch.
        let mut bad = good.clone();
        bad[12] ^= 1;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(
            read_checkpoint(&path).unwrap_err(),
            "checkpoint checksum mismatch"
        );
        // Damage the magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(
            read_checkpoint(&path).unwrap_err(),
            "bad or missing checkpoint header"
        );
        // Truncate mid-body.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(read_checkpoint(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
