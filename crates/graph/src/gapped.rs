//! Gap-aware CSR storage: run-local edge mutations in O(deg) instead of
//! O(n + m) splices.
//!
//! `Snapshot::apply_batch` produces a fresh packed CSR by bulk-copying
//! every untouched span, so a |Δ|=100 batch over a 100k-vertex graph pays
//! a memcpy of the whole edge array — a bandwidth-bound O(n+m) floor the
//! paper's O(|Δ|)-work claim is supposed to avoid. [`GappedCsr`] is the
//! packed-memory-array answer: neighbor runs keep **per-vertex slack**, so
//! an insert is a binary search plus a shift of one run's tail, and a
//! delete closes up one run. When a run's slack is exhausted, only its
//! **granule** (64 consecutive vertices, matching the session's active
//! chunk filter) is rebuilt with fresh slack — amortized granule-local
//! rebalancing, never a whole-array splice.
//!
//! Layout per granule:
//!
//! ```text
//! buf: [ run(v0) gap | run(v1) gap | ... | run(v63) gap ]
//!        ^start[0]     ^start[1]          ^start[63]
//! ```
//!
//! Runs stay sorted ascending and contiguous, so `neighbors(v)` is a plain
//! slice — the lock-free kernels iterate it in exactly the same order as
//! the packed CSR, which keeps single-thread runs bit-identical (float
//! accumulation order is preserved).
//!
//! [`GappedGraph`] pairs an out-direction and an in-direction `GappedCsr`
//! with a dense out-degree array — the same surface [`Snapshot`] offers —
//! and implements [`NeighborRuns`] so every kernel can run on it directly.
//! [`PrevRuns`] is the sliver of pre-batch state the dynamic kernels need
//! (the out-runs of batch sources), recorded before the store mutates.

use std::collections::HashMap;

use crate::batch::BatchUpdate;
use crate::csr::Csr;
use crate::runs::NeighborRuns;
use crate::snapshot::Snapshot;
use crate::types::{GraphError, Result, VertexId};

/// Vertices per granule. Deliberately equal to the session's
/// `ACTIVE_GRANULE` active-filter width so one rebalance touches exactly
/// one activity chunk's worth of runs.
pub const GRANULE: usize = 64;

/// Slack a run of length `len` receives at (re)build time. At least two
/// free slots per run, plus 1/8 of the run proportionally: a rebuild of a
/// granule with E edges costs O(E) and buys at least `2 × runs` inserts
/// before that granule can need rebuilding again.
#[inline]
fn slack_for(len: usize) -> usize {
    len / 8 + 2
}

/// One granule: the runs of `GRANULE` consecutive vertices with
/// inter-run gaps, plus per-vertex `(start, len)` into `buf`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Granule {
    buf: Vec<VertexId>,
    start: [u32; GRANULE],
    len: [u32; GRANULE],
    /// Number of vertices actually present (the last granule is partial).
    count: u32,
}

impl Granule {
    fn new(count: usize) -> Self {
        Granule {
            buf: Vec::new(),
            start: [0; GRANULE],
            len: [0; GRANULE],
            count: count as u32,
        }
    }

    #[inline]
    fn run(&self, local: usize) -> &[VertexId] {
        let s = self.start[local] as usize;
        &self.buf[s..s + self.len[local] as usize]
    }

    /// Free slots between the end of `local`'s run and the next run (or
    /// the end of the buffer for the last vertex).
    #[inline]
    fn gap_after(&self, local: usize) -> usize {
        let end = self.start[local] as usize + self.len[local] as usize;
        let next = if local + 1 < self.count as usize {
            self.start[local + 1] as usize
        } else {
            self.buf.len()
        };
        next - end
    }

    /// Re-lay the granule's runs with fresh slack. O(edges in granule).
    fn rebuild(&mut self) {
        let count = self.count as usize;
        let total: usize = (0..count)
            .map(|i| self.len[i] as usize + slack_for(self.len[i] as usize))
            .sum();
        let mut buf = Vec::with_capacity(total);
        let mut start = [0u32; GRANULE];
        for (i, s) in start.iter_mut().enumerate().take(count) {
            *s = buf.len() as u32;
            buf.extend_from_slice(self.run(i));
            buf.resize(buf.len() + slack_for(self.len[i] as usize), 0);
        }
        self.buf = buf;
        self.start = start;
    }

    /// Insert `x` into `local`'s sorted run. `Err(())` = duplicate;
    /// `Ok(rebuilt)` reports whether slack ran out and the granule was
    /// re-laid.
    fn insert(&mut self, local: usize, x: VertexId) -> std::result::Result<bool, ()> {
        let pos = match self.run(local).binary_search(&x) {
            Ok(_) => return Err(()),
            Err(p) => p,
        };
        let rebuilt = self.gap_after(local) == 0;
        if rebuilt {
            self.rebuild();
            // rebuild guarantees slack_for(len) >= 2 free slots per run
        }
        let s = self.start[local] as usize;
        let len = self.len[local] as usize;
        self.buf.copy_within(s + pos..s + len, s + pos + 1);
        self.buf[s + pos] = x;
        self.len[local] += 1;
        Ok(rebuilt)
    }

    /// Remove `x` from `local`'s sorted run. `Err(())` = not present.
    fn remove(&mut self, local: usize, x: VertexId) -> std::result::Result<(), ()> {
        let pos = match self.run(local).binary_search(&x) {
            Ok(p) => p,
            Err(_) => return Err(()),
        };
        let s = self.start[local] as usize;
        let len = self.len[local] as usize;
        self.buf.copy_within(s + pos + 1..s + len, s + pos);
        self.len[local] -= 1;
        Ok(())
    }
}

/// Occupancy report for the gapped buffers, surfaced by `stats` so slack
/// regressions show up in the serve smoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlackStats {
    /// Edges stored (filled slots).
    pub edges: u64,
    /// Total buffer slots (filled + slack).
    pub slots: u64,
    /// Granule rebuilds since construction.
    pub rebuilds: u64,
}

impl SlackStats {
    /// Filled fraction in permille (0 when empty).
    pub fn occupancy_permille(&self) -> u64 {
        (self.edges * 1000).checked_div(self.slots).unwrap_or(0)
    }
}

/// A single adjacency direction stored as gapped runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GappedCsr {
    granules: Vec<Granule>,
    n: usize,
    m: usize,
    rebuilds: u64,
}

impl GappedCsr {
    /// Empty store over `n` vertices.
    pub fn new(n: usize) -> Self {
        let mut granules = Vec::with_capacity(n.div_ceil(GRANULE));
        let mut left = n;
        while left > 0 {
            let count = left.min(GRANULE);
            let mut g = Granule::new(count);
            g.rebuild(); // lay out empty runs with their minimum slack
            granules.push(g);
            left -= count;
        }
        GappedCsr {
            granules,
            n,
            m: 0,
            rebuilds: 0,
        }
    }

    /// Build from a packed CSR, giving every run its slack up front.
    pub fn from_csr(csr: &Csr) -> Self {
        let n = csr.num_vertices();
        let mut out = GappedCsr::new(n);
        for (gi, granule) in out.granules.iter_mut().enumerate() {
            let base = gi * GRANULE;
            let count = granule.count as usize;
            for local in 0..count {
                granule.len[local] = csr.degree((base + local) as VertexId) as u32;
            }
            // One rebuild call lays out correct slack; then fill runs.
            granule.buf.clear();
            let mut start = [0u32; GRANULE];
            for (local, s) in start.iter_mut().enumerate().take(count) {
                *s = granule.buf.len() as u32;
                let run = csr.neighbors((base + local) as VertexId);
                granule.buf.extend_from_slice(run);
                granule
                    .buf
                    .resize(granule.buf.len() + slack_for(run.len()), 0);
            }
            granule.start = start;
        }
        out.m = csr.num_edges();
        out
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// The sorted neighbor run of `v` as a contiguous slice.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let g = &self.granules[v as usize / GRANULE];
        g.run(v as usize % GRANULE)
    }

    /// Run length of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.granules[v as usize / GRANULE].len[v as usize % GRANULE] as usize
    }

    /// Insert `x` into `v`'s run; errors with `DuplicateEdge((v, x))` if
    /// already present. O(deg v) plus an amortized granule rebuild.
    pub fn insert(&mut self, v: VertexId, x: VertexId) -> Result<()> {
        self.check(v, x)?;
        let rebuilt = self.granules[v as usize / GRANULE]
            .insert(v as usize % GRANULE, x)
            .map_err(|_| GraphError::DuplicateEdge((v, x)))?;
        if rebuilt {
            self.rebuilds += 1;
        }
        self.m += 1;
        Ok(())
    }

    /// Remove `x` from `v`'s run; errors with `MissingEdge((v, x))` if
    /// absent. O(deg v), never rebuilds.
    pub fn remove(&mut self, v: VertexId, x: VertexId) -> Result<()> {
        self.check(v, x)?;
        self.granules[v as usize / GRANULE]
            .remove(v as usize % GRANULE, x)
            .map_err(|_| GraphError::MissingEdge((v, x)))?;
        self.m -= 1;
        Ok(())
    }

    fn check(&self, v: VertexId, x: VertexId) -> Result<()> {
        for id in [v, x] {
            if id as usize >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: id,
                    n: self.n,
                });
            }
        }
        Ok(())
    }

    /// Buffer occupancy across all granules.
    pub fn slack_stats(&self) -> SlackStats {
        SlackStats {
            edges: self.m as u64,
            slots: self.granules.iter().map(|g| g.buf.len() as u64).sum(),
            rebuilds: self.rebuilds,
        }
    }
}

/// Both adjacency directions of a dynamic graph in gapped layout, plus
/// the dense out-degree array the pull kernels divide by.
///
/// This is the *mutable* representation an `UpdateSession` in gapped mode
/// commits against; the packed [`Snapshot`] remains the publication
/// format and the proptested oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct GappedGraph {
    out: GappedCsr,
    inn: GappedCsr,
    out_degree: Vec<u32>,
}

impl GappedGraph {
    /// Mirror a packed snapshot into gapped layout. O(n + m), paid once
    /// at session start (and after ad-hoc structural mutations).
    pub fn from_snapshot(s: &Snapshot) -> Self {
        GappedGraph {
            out: GappedCsr::from_csr(s.out_csr()),
            inn: GappedCsr::from_csr(s.in_csr()),
            out_degree: (0..s.num_vertices() as VertexId)
                .map(|v| s.out_degree(v))
                .collect(),
        }
    }

    /// Apply a batch: deletions first, then insertions (so delete-then-
    /// reinsert of the same edge inside one batch nets to "present",
    /// matching `Snapshot::apply_batch`). Each edge touches exactly two
    /// runs (out-run of the source, in-run of the target): O(Σ deg)
    /// over the touched runs, independent of n and m.
    ///
    /// The batch must be valid for the current graph (as established by
    /// `DynGraph::apply_batch` on the authoritative adjacency); on error
    /// the store may be partially updated and must be discarded.
    pub fn apply_batch(&mut self, batch: &BatchUpdate) -> Result<()> {
        for &(u, v) in &batch.deletions {
            self.out.remove(u, v)?;
            self.inn.remove(v, u).map_err(flip)?;
            self.out_degree[u as usize] -= 1;
        }
        for &(u, v) in &batch.insertions {
            self.out.insert(u, v)?;
            self.inn.insert(v, u).map_err(flip)?;
            self.out_degree[u as usize] += 1;
        }
        Ok(())
    }

    /// Combined occupancy of the out- and in-direction buffers.
    pub fn slack_stats(&self) -> SlackStats {
        let o = self.out.slack_stats();
        let i = self.inn.slack_stats();
        SlackStats {
            edges: o.edges + i.edges,
            slots: o.slots + i.slots,
            rebuilds: o.rebuilds + i.rebuilds,
        }
    }

    /// Materialize a packed snapshot (oracle/equality checks in tests).
    pub fn to_snapshot(&self) -> Snapshot {
        let adj: Vec<Vec<VertexId>> = (0..self.out.num_vertices() as VertexId)
            .map(|v| self.out.neighbors(v).to_vec())
            .collect();
        Snapshot::from_adjacency(&adj)
    }
}

/// In-direction errors are recorded as `(target, source)`; flip them back
/// to the `(source, target)` orientation callers expect.
fn flip(e: GraphError) -> GraphError {
    match e {
        GraphError::MissingEdge((v, u)) => GraphError::MissingEdge((u, v)),
        GraphError::DuplicateEdge((v, u)) => GraphError::DuplicateEdge((u, v)),
        other => other,
    }
}

impl NeighborRuns for GappedGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    #[inline]
    fn out(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    #[inline]
    fn in_(&self, v: VertexId) -> &[VertexId] {
        self.inn.neighbors(v)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> u32 {
        self.out_degree[v as usize]
    }
}

/// The pre-batch neighbor state the dynamic kernels consult: the out-runs
/// of the batch's source vertices, recorded *before* the mutable store
/// applies the batch. Everything else the DT/DF/ND kernels read comes
/// from the post-batch graph, so this sliver is all of "prev" a gapped
/// session needs — no packed prev snapshot, no O(n+m) copy.
#[derive(Debug, Clone)]
pub struct PrevRuns {
    n: usize,
    m: usize,
    runs: HashMap<VertexId, Vec<VertexId>>,
}

impl PrevRuns {
    /// Record the out-runs of `sources` from `g` (pre-batch).
    pub fn record<G: NeighborRuns>(g: &G, sources: impl IntoIterator<Item = VertexId>) -> Self {
        let mut runs = HashMap::new();
        for u in sources {
            if (u as usize) < g.num_vertices() {
                runs.entry(u).or_insert_with(|| g.out(u).to_vec());
            }
        }
        PrevRuns {
            n: g.num_vertices(),
            m: g.num_edges(),
            runs,
        }
    }
}

impl NeighborRuns for PrevRuns {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_edges(&self) -> usize {
        self.m
    }

    #[inline]
    fn out(&self, v: VertexId) -> &[VertexId] {
        match self.runs.get(&v) {
            Some(run) => run,
            None => panic!("PrevRuns::out({v}): vertex was not a recorded batch source"),
        }
    }

    fn in_(&self, _v: VertexId) -> &[VertexId] {
        panic!("PrevRuns records out-runs only; kernels never pull in-runs from prev")
    }

    fn out_degree(&self, _v: VertexId) -> u32 {
        panic!("PrevRuns records out-runs only; kernels never read out_degree from prev")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DynGraph;

    fn assert_matches(g: &GappedGraph, oracle: &Snapshot) {
        assert_eq!(g.num_vertices(), oracle.num_vertices());
        assert_eq!(g.num_edges(), oracle.num_edges());
        for v in 0..oracle.num_vertices() as VertexId {
            assert_eq!(g.out(v), oracle.out(v), "out-run of {v}");
            assert_eq!(g.in_(v), oracle.in_(v), "in-run of {v}");
            assert_eq!(g.out_degree(v), oracle.out_degree(v), "degree of {v}");
        }
    }

    #[test]
    fn from_snapshot_mirrors_runs() {
        let s = Snapshot::from_edges(10, &[(0, 1), (0, 9), (3, 4), (9, 0), (9, 1)]);
        let g = GappedGraph::from_snapshot(&s);
        assert_matches(&g, &s);
        let stats = g.slack_stats();
        assert_eq!(stats.edges, 2 * s.num_edges() as u64);
        assert!(stats.slots >= stats.edges);
        assert_eq!(stats.rebuilds, 0);
    }

    #[test]
    fn insert_delete_reinsert_tracks_oracle() {
        let mut dyng = DynGraph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (5, 0)]).unwrap();
        let mut g = GappedGraph::from_snapshot(&dyng.snapshot());
        let batch = BatchUpdate {
            deletions: vec![(1, 2), (5, 0)],
            insertions: vec![(1, 2), (0, 5), (4, 4)],
        };
        dyng.apply_batch(&batch).unwrap();
        g.apply_batch(&batch).unwrap();
        assert_matches(&g, &dyng.snapshot());
    }

    #[test]
    fn slack_exhaustion_triggers_granule_rebuild() {
        // Start empty: each run has the minimum slack of 2; inserting a
        // long fan forces repeated rebuilds of vertex 0's granule only.
        let mut g = GappedGraph::from_snapshot(&Snapshot::from_edges(130, &[]));
        for v in 1..100u32 {
            g.apply_batch(&BatchUpdate::insert_only(vec![(0, v)]))
                .unwrap();
        }
        assert_eq!(g.out(0).len(), 99);
        assert!(g.out(0).windows(2).all(|w| w[0] < w[1]), "run stays sorted");
        let stats = g.slack_stats();
        assert!(stats.rebuilds > 0, "long fan must have rebuilt its granule");
        // Vertices in other granules are untouched.
        assert_eq!(g.out(64), &[] as &[u32]);
        assert_eq!(g.out(128), &[] as &[u32]);
    }

    #[test]
    fn errors_match_snapshot_semantics() {
        let s = Snapshot::from_edges(4, &[(0, 1)]);
        let mut g = GappedGraph::from_snapshot(&s);
        assert_eq!(
            g.apply_batch(&BatchUpdate::insert_only(vec![(0, 1)])),
            Err(GraphError::DuplicateEdge((0, 1)))
        );
        let mut g2 = GappedGraph::from_snapshot(&s);
        assert_eq!(
            g2.apply_batch(&BatchUpdate::delete_only(vec![(2, 3)])),
            Err(GraphError::MissingEdge((2, 3)))
        );
    }

    #[test]
    fn prev_runs_serves_recorded_sources_only() {
        let s = Snapshot::from_edges(5, &[(0, 1), (0, 2), (3, 0)]);
        let prev = PrevRuns::record(&s, [0u32, 3, 0]);
        assert_eq!(prev.num_vertices(), 5);
        assert_eq!(prev.num_edges(), 3);
        assert_eq!(prev.out(0), &[1, 2]);
        assert_eq!(prev.out(3), &[0]);
        let caught = std::panic::catch_unwind(|| prev.out(1).len());
        assert!(caught.is_err(), "unrecorded vertex must panic loudly");
    }

    #[test]
    fn to_snapshot_round_trips() {
        let s = Snapshot::from_edges(70, &[(0, 65), (65, 0), (65, 66), (69, 69)]);
        let g = GappedGraph::from_snapshot(&s);
        assert_eq!(g.to_snapshot(), s);
    }
}
