//! DFBB — barrier-based Dynamic Frontier PageRank (Algorithm 1, §4.2).
//!
//! The paper's DF approach with conventional barrier synchronization:
//!
//! 1. **Initial marking** (lines 4-7): for every batch edge `(u, v)`,
//!    mark the out-neighbors of `u` in both Gt−1 and Gt as affected —
//!    in parallel, followed by an implicit barrier.
//! 2. **Iterate** (lines 8-22): synchronous Jacobi updates over the
//!    affected set; a rank change above the frontier tolerance τf marks
//!    the vertex's out-neighbors as affected too (incremental marking),
//!    so affectedness spreads exactly as far as rank perturbations do.
//!
//! DFBB is the barrier-based yardstick DFLF is measured against
//! (average 1.6× in the paper).

use crate::bb_common::{run_bb_engine, BbMode, MarkFn};
use crate::config::PagerankOptions;
use crate::frontier::df_initial_affected;
use crate::rank::Flags;
use crate::result::PagerankResult;
use lfpr_graph::{BatchUpdate, NeighborRuns};
use lfpr_sched::chunks::ChunkCursor;

/// Update PageRank after `batch` with the Dynamic Frontier approach,
/// barrier-based.
pub fn df_bb<P: NeighborRuns, C: NeighborRuns>(
    prev: &P,
    curr: &C,
    batch: &BatchUpdate,
    prev_ranks: &[f64],
    opts: &PagerankOptions,
) -> PagerankResult {
    assert_eq!(prev_ranks.len(), curr.num_vertices());
    let n = curr.num_vertices();
    let va = Flags::new(n, 0);
    let edges: Vec<(u32, u32)> = batch.iter_all().collect();
    let cursor = ChunkCursor::new(edges.len());

    // Alg. 1 lines 4-6: mark out-neighbors of every batch source in both
    // graphs. Re-marking an already-marked vertex is idempotent, so
    // duplicate sources across edges need no coordination.
    // Spread the (usually small) batch over the team instead of letting
    // one thread claim it all in a single 2048-edge stride.
    let mark_chunk = opts.batch_chunk(edges.len());
    let mark: &MarkFn<'_> = &|_t, faults| {
        while let Some(range) = cursor.next_chunk(mark_chunk) {
            for &(u, _) in &edges[range.clone()] {
                for &vp in prev.out(u).iter().chain(curr.out(u)) {
                    va.set(vp as usize);
                }
                if faults.tick() {
                    return false;
                }
            }
        }
        true
    };

    let mode = BbMode::Frontier {
        va: &va,
        tau_f: opts.frontier_tolerance,
    };
    let mut res = run_bb_engine(curr, prev_ranks, mode, opts, Some(mark));
    res.initially_affected = df_initial_affected(prev, curr, batch).len();
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::linf_diff;
    use crate::reference::reference_default;
    use crate::result::RunStatus;
    use crate::static_bb::static_bb;
    use lfpr_graph::generators::erdos_renyi;
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::BatchSpec;
    use lfpr_graph::Snapshot;
    use lfpr_sched::fault::FaultPlan;

    fn opts() -> PagerankOptions {
        PagerankOptions::default()
            .with_threads(4)
            .with_chunk_size(32)
    }

    fn updated(seed: u64, frac: f64) -> (Snapshot, Snapshot, BatchUpdate, Vec<f64>) {
        let mut g = erdos_renyi(250, 1800, seed);
        add_self_loops(&mut g);
        let prev = g.snapshot();
        let r_prev = static_bb(&prev, &opts()).ranks;
        let batch = BatchSpec::mixed(frac, seed + 1).generate(&g);
        g.apply_batch(&batch).unwrap();
        (prev, g.snapshot(), batch, r_prev)
    }

    #[test]
    fn error_within_paper_bound() {
        let (prev, curr, batch, r_prev) = updated(41, 0.01);
        let res = df_bb(&prev, &curr, &batch, &r_prev, &opts());
        assert_eq!(res.status, RunStatus::Converged);
        // §4.5: τf = τ/1000 keeps error under ~10·τ (1e-9 at τ=1e-10).
        let err = linf_diff(&res.ranks, &reference_default(&curr));
        assert!(err < 1e-8, "err = {err}");
    }

    #[test]
    fn processes_fewer_vertices_than_nd() {
        let (prev, curr, batch, r_prev) = updated(43, 0.001);
        let df = df_bb(&prev, &curr, &batch, &r_prev, &opts());
        let nd = crate::nd_bb::nd_bb(&curr, &r_prev, &opts());
        assert!(
            df.vertices_processed < nd.vertices_processed,
            "DF {} vs ND {}",
            df.vertices_processed,
            nd.vertices_processed
        );
    }

    #[test]
    fn initially_affected_reported() {
        let (prev, curr, batch, r_prev) = updated(45, 0.01);
        let res = df_bb(&prev, &curr, &batch, &r_prev, &opts());
        assert!(res.initially_affected > 0);
        assert!(res.initially_affected <= curr.num_vertices());
    }

    #[test]
    fn crash_stalls_the_run() {
        let (prev, curr, batch, r_prev) = updated(47, 0.01);
        let o = opts()
            .with_stall_timeout(std::time::Duration::from_millis(100))
            .with_faults(FaultPlan::with_crashes(1, 50, 5));
        let res = df_bb(&prev, &curr, &batch, &r_prev, &o);
        assert_eq!(res.status, RunStatus::Stalled, "BB cannot survive a crash");
    }

    #[test]
    fn empty_batch_is_noop() {
        let (prev, _, _, r_prev) = updated(49, 0.01);
        let res = df_bb(&prev, &prev, &BatchUpdate::new(), &r_prev, &opts());
        assert_eq!(res.status, RunStatus::Converged);
        assert_eq!(res.vertices_processed, 0);
        assert_eq!(res.ranks, r_prev);
    }
}
