//! Shared engine for the four lock-free variants (Algorithms 2, 4, 6, 8).
//!
//! The lock-free algorithms share this skeleton (§3.3.2, §4.3):
//!
//! ```text
//! parallel (top-level block, no barriers anywhere):
//!     [phase 1: initial marking with helping — dynamic variants]
//!     for round in 0..MAX_ITERATIONS:
//!         while chunk = claim(round):          # dynamic sched, nowait
//!             for v in chunk [filter]:
//!                 r = kernel(R, v); Δr = |r − R[v]|; R[v] = r   # in place
//!                 [Frontier: Δr > τf ⇒ mark out-neighbors, RC[v'] = 1]
//!                 if Δr ≤ τ: RC[v] = 0
//!         if RC[v] = 0 ∀v: break               # per-thread check
//! ```
//!
//! Threads never wait: the per-round chunk cursors let a fast thread
//! proceed to round *i+1* while a slow thread is still in round *i*
//! (OpenMP `nowait` semantics), and the shared `RC` flag vector carries
//! each vertex's convergence status between threads. A crashed thread's
//! claimed-but-unprocessed vertices keep `RC = 1`, so surviving threads
//! re-process them in their next round — the fault-tolerance argument of
//! §4.4.
//!
//! **Lock-freedom:** the only shared-state operations on this path are
//! atomic loads, stores, and `fetch_add` — every one of them completes in
//! a bounded number of steps regardless of what other threads do, so
//! system-wide progress is guaranteed as long as one thread keeps
//! running.

use crate::config::{ConvergenceMode, PagerankOptions};
use crate::kernel::{rank_of_from_atomic_with, TeleportBase};
use crate::rank::{AtomicRanks, FlagOps};
use crate::result::{PagerankResult, RunStatus};
use lfpr_graph::NeighborRuns;
use lfpr_sched::chunks::ChunkCursor;
use lfpr_sched::fault::ThreadFaults;
use lfpr_sched::rounds::RoundCursors;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Which vertices each round processes (mirrors `bb_common::BbMode`).
/// Generic over the flag representation so one-shot runs ([`crate::rank::Flags`])
/// and reusable session workspaces ([`crate::rank::EpochFlags`]) share
/// the engine.
pub(crate) enum LfMode<'a, VA: FlagOps> {
    /// Every vertex (StaticLF, NDLF).
    All,
    /// Only `VA`-marked vertices; the set is fixed by phase 1 (DTLF).
    Affected { va: &'a VA },
    /// `VA`-marked vertices with incremental frontier expansion (DFLF).
    Frontier { va: &'a VA, tau_f: f64 },
}

/// Number of convergence flags a vector must have for `n` vertices in
/// `mode` (per-vertex: `n`; per-chunk: one per scheduling chunk).
pub(crate) fn rc_flags_len(n: usize, mode: ConvergenceMode, chunk: usize) -> usize {
    match mode {
        ConvergenceMode::PerVertex => n,
        ConvergenceMode::PerChunk => n.div_ceil(chunk),
    }
}

/// Convergence-flag view: per-vertex (`RC[v]`) or per-chunk (the §4.3
/// alternative). Both are plain atomic flag vectors; this adapter maps a
/// vertex id onto the right flag index.
pub(crate) struct RcView<'a, RC: FlagOps> {
    flags: &'a RC,
    mode: ConvergenceMode,
    chunk: usize,
}

impl<'a, RC: FlagOps> RcView<'a, RC> {
    pub(crate) fn new(flags: &'a RC, mode: ConvergenceMode, chunk: usize) -> Self {
        RcView { flags, mode, chunk }
    }

    /// Mark vertex `v` as not-yet-converged (RC[v] ← 1).
    #[inline]
    pub(crate) fn set_vertex(&self, v: usize) {
        match self.mode {
            ConvergenceMode::PerVertex => self.flags.set(v),
            ConvergenceMode::PerChunk => self.flags.set(v / self.chunk),
        }
    }

    /// Clear vertex `v`'s convergence flag — valid only in per-vertex
    /// mode (per-chunk clearing happens at chunk granularity).
    #[inline]
    fn clear_vertex(&self, v: usize) {
        debug_assert!(matches!(self.mode, ConvergenceMode::PerVertex));
        self.flags.clear(v);
    }
}

/// Granularity of the sparse-batch active filter: one flag covers this
/// many consecutive vertex ids. Small enough that a localized affected
/// ball dirties few granules, large enough that flag-checking overhead
/// stays ≪ the skipped per-vertex scans.
pub(crate) const ACTIVE_GRANULE: usize = 64;

/// Sparse-batch accelerator: one flag per [`ACTIVE_GRANULE`]-vertex
/// granule, set when the granule contains *any* affected vertex. Rounds
/// walk claimed chunks granule-by-granule and skip clean granules
/// without touching their per-vertex flags, and the convergence check
/// filters through active granules before paying the authoritative full
/// `RC` scan — per-round cost drops from `O(n)` to
/// `O(n/granule + |active| · granule)`.
///
/// Value-neutral by construction: a skipped vertex is one the unfiltered
/// engine would have `continue`d over (not `VA`-marked) and processing
/// order is unchanged, so ranks are bit-identical to an unfiltered run
/// at one thread. Every marking path sets the granule flag **before**
/// the vertex flags; a stale-clear granule flag can therefore only
/// delay processing by a round (the marker's `RC` bit keeps termination
/// blocked via the authoritative scan), never lose it. Requires
/// per-vertex convergence flags — the session enforces that.
pub(crate) struct ActiveChunks<'a, F: FlagOps> {
    flags: &'a F,
    granule: usize,
    n: usize,
}

impl<'a, F: FlagOps> ActiveChunks<'a, F> {
    pub(crate) fn new(flags: &'a F, granule: usize, n: usize) -> Self {
        debug_assert!(granule > 0);
        ActiveChunks { flags, granule, n }
    }

    /// Mark the granule containing vertex `v` as active. Call **before**
    /// setting the vertex's `VA`/`RC` flags.
    #[inline]
    pub(crate) fn mark_vertex(&self, v: usize) {
        self.flags.set(v / self.granule);
    }

    /// The next maximal run of indices within `[pos, end)` that starts
    /// at `pos`-or-later in an active granule. Clean granules in between
    /// cost one flag load each.
    #[inline]
    fn next_active_segment(&self, mut pos: usize, end: usize) -> Option<(usize, usize)> {
        while pos < end {
            let g = pos / self.granule;
            if self.flags.get(g) {
                let hi = ((g + 1) * self.granule).min(end);
                return Some((pos, hi));
            }
            pos = (g + 1) * self.granule;
        }
        None
    }

    /// Fast convergence filter: scan only active granules' `RC` ranges.
    /// `false` is exact (a set flag was seen); `true` means "maybe
    /// clear" and must be confirmed by the authoritative full scan.
    fn rc_maybe_clear<RC: FlagOps>(&self, rc: &RC) -> bool {
        let num = self.n.div_ceil(self.granule);
        for g in 0..num {
            if !self.flags.get(g) {
                continue;
            }
            let lo = g * self.granule;
            let hi = (lo + self.granule).min(self.n);
            for v in lo..hi {
                if rc.get_sync(v) {
                    return false;
                }
            }
        }
        true
    }
}

/// Phase-1 closure: initial affected marking with helping (DT/DF lock-
/// free variants). Returns `false` if the thread crashed mid-phase.
pub(crate) type Phase1Fn<'a> = dyn Fn(usize, &mut ThreadFaults) -> bool + Sync + 'a;

/// The helping loop of DFLF's initial-marking phase (Alg. 2 lines 5-16):
/// threads drain the batch-edge cursor; a thread that finishes re-scans
/// the `C` flags and processes any source vertex another (possibly
/// stalled) thread left unchecked. Marking is idempotent, so racing
/// helpers are harmless (§4.4).
pub(crate) fn helping_mark_phase(
    edges: &[(u32, u32)],
    cursor: &ChunkCursor,
    checked: &impl FlagOps,
    chunk: usize,
    mark_source: &(impl Fn(u32) + Sync),
    faults: &mut ThreadFaults,
) -> bool {
    // Pass 1: cooperative dynamic scheduling over the batch.
    while let Some(range) = cursor.next_chunk(chunk) {
        for &(u, _) in &edges[range] {
            if !checked.get(u as usize) {
                mark_source(u);
                checked.set(u as usize);
            }
            if faults.tick() {
                return false;
            }
        }
    }
    // Pass 2 (helping): verify every batch source is checked; process
    // leftovers from stalled/crashed peers ourselves. One extra pass
    // suffices because we process everything we find unchecked.
    loop {
        let mut all_checked = true;
        for &(u, _) in edges {
            if !checked.get(u as usize) {
                all_checked = false;
                mark_source(u);
                checked.set(u as usize);
            }
            if faults.tick() {
                return false;
            }
        }
        if all_checked {
            return true;
        }
    }
}

/// What [`run_lf_engine_on`] measures — everything in a
/// [`PagerankResult`] except the materialized rank vector, so reusable
/// workspaces can skip the terminal `ranks.to_vec()`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EngineStats {
    pub iterations: usize,
    pub runtime: Duration,
    pub status: RunStatus,
    pub vertices_processed: u64,
    pub threads_crashed: usize,
}

/// Run the lock-free engine over a pre-initialized shared rank vector
/// and convergence flags, allocating the round cursors per run and
/// materializing the final ranks (the one-shot kernel path). The caller
/// owns initialization:
/// * `ranks` — 1/n (static) or previous ranks (dynamic),
/// * `rc` — all ones for All mode; zeros + marking for Affected/Frontier.
pub(crate) fn run_lf_engine<G: NeighborRuns, RC: FlagOps, VA: FlagOps>(
    g: &G,
    ranks: &AtomicRanks,
    rc: &RC,
    mode: LfMode<'_, VA>,
    opts: &PagerankOptions,
    phase1: Option<&Phase1Fn<'_>>,
) -> PagerankResult {
    let rounds = RoundCursors::new(opts.vertex_plan(g), opts.max_iterations);
    let s = run_lf_engine_on::<G, RC, VA, RC>(g, ranks, rc, mode, opts, phase1, &rounds, None);
    PagerankResult {
        ranks: ranks.to_vec(),
        iterations: s.iterations,
        runtime: s.runtime,
        total_wait: Duration::ZERO, // lock-free: no barriers
        max_wait: Duration::ZERO,
        status: s.status,
        vertices_processed: s.vertices_processed,
        initially_affected: 0, // variants overwrite for dynamic runs
        threads_crashed: s.threads_crashed,
    }
}

/// The lock-free engine proper, running over caller-owned round cursors
/// (reset between runs by a persistent session) and returning stats
/// only — the final ranks live in `ranks`, which the session exposes by
/// reference instead of cloning out.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_lf_engine_on<G: NeighborRuns, RC: FlagOps, VA: FlagOps, AC: FlagOps>(
    g: &G,
    ranks: &AtomicRanks,
    rc: &RC,
    mode: LfMode<'_, VA>,
    opts: &PagerankOptions,
    phase1: Option<&Phase1Fn<'_>>,
    rounds: &RoundCursors,
    active: Option<&ActiveChunks<'_, AC>>,
) -> EngineStats {
    debug_assert!(opts.validate().is_ok());
    // The filter only makes sense when unaffected vertices are skipped.
    let active = match mode {
        LfMode::All => None,
        _ => active,
    };
    let nt = opts.num_threads;
    let processed = AtomicU64::new(0);
    let max_round = AtomicUsize::new(0);
    let crashed_count = AtomicUsize::new(0);
    let converged = AtomicBool::new(false);
    let rc_view = RcView::new(rc, opts.convergence, opts.chunk_size);
    let per_chunk = matches!(opts.convergence, ConvergenceMode::PerChunk);
    // Teleport term precomputed once per run; `Uniform` yields the same
    // `(1.0 - alpha) / n` constant the kernels historically inlined.
    let base = TeleportBase::new(&opts.teleport, g.num_vertices(), opts.alpha);

    let t0 = Instant::now();
    opts.schedule.executor.run(nt, |t| {
        let mut faults = opts.faults.thread_faults(t, nt);
        let mut local_processed = 0u64;

        // Phase 1: initial marking with helping (dynamic variants only).
        if let Some(p1) = phase1 {
            if !p1(t, &mut faults) {
                crashed_count.fetch_add(1, Ordering::Relaxed);
                processed.fetch_add(local_processed, Ordering::Relaxed);
                return;
            }
        }

        // Phase 2: incremental marking, processing, and convergence
        // detection — no barriers anywhere.
        'rounds: for round in 0..opts.max_iterations {
            while let Some(range) = rounds.next_chunk(round) {
                // Valid in per-chunk mode because vertex_plan pins the
                // plan to Fixed(chunk_size) there (flag alignment).
                let chunk_idx = range.start / opts.chunk_size;
                let mut chunk_converged = true;
                // With an active filter, walk the chunk granule-by-
                // granule, skipping granules with no affected vertices
                // (their per-vertex flags would all read clear anyway).
                let mut pos = range.start;
                while pos < range.end {
                    let (seg_lo, seg_hi) = match active {
                        Some(a) => match a.next_active_segment(pos, range.end) {
                            Some(seg) => seg,
                            None => break,
                        },
                        None => (pos, range.end),
                    };
                    pos = seg_hi;
                    for v in seg_lo..seg_hi {
                        let vid = v as u32;
                        match &mode {
                            LfMode::All => {}
                            LfMode::Affected { va } | LfMode::Frontier { va, .. } => {
                                if !va.get(v) {
                                    continue; // unaffected ⇒ trivially converged
                                }
                            }
                        }
                        let r = rank_of_from_atomic_with(g, ranks, vid, opts.alpha, &base);
                        let dr = (r - ranks.get(v)).abs();
                        ranks.set(v, r); // in-place, visible to all threads
                        if let LfMode::Frontier { va, tau_f } = &mode {
                            // Alg. 2 lines 25-27: expand the frontier.
                            //
                            // Deviation from line 28 (RC[v'] ← 1): setting RC
                            // for every newly marked vertex makes each
                            // frontier ring block the all-clear check for one
                            // more round, so the run terminates only when
                            // every first-processing Δr is ≤ τf — i.e. it
                            // expands ring-by-ring to the graph boundary and
                            // over-converges 1000× past τ, contradicting the
                            // paper's own measured error (~5e-10) and
                            // runtimes. We extend VA only; sub-τ wavelets
                            // reaching new vertices are absorbed (that is the
                            // DF approximation, same as DFBB terminating on
                            // ΔR ≤ τ while VA still grows), while genuine
                            // > τ waves keep RC alive through the Δr > τ
                            // re-arm below and are never lost.
                            if dr > *tau_f {
                                for &vp in g.out(vid) {
                                    if let Some(a) = active {
                                        a.mark_vertex(vp as usize);
                                    }
                                    va.set(vp as usize);
                                }
                            }
                        }
                        if per_chunk {
                            if dr > opts.tolerance {
                                chunk_converged = false;
                            }
                        } else if dr <= opts.tolerance {
                            // Alg. 2 line 29: RC[v] ← 0.
                            rc_view.clear_vertex(v);
                        } else {
                            // Re-arm: the pseudocode only ever clears RC, but
                            // a cleared flag must be re-set when a later
                            // round's Δr exceeds τ again (neighbor updates
                            // arriving asynchronously) — otherwise threads
                            // can terminate while ranks are still moving and
                            // the error blows past the paper's ~5e-10 band.
                            // RC[v] = 1 means "not yet converged" (§4.3), so
                            // this is the definition, made explicit.
                            rc_view.set_vertex(v);
                        }
                        local_processed += 1;
                        if faults.tick() {
                            crashed_count.fetch_add(1, Ordering::Relaxed);
                            processed.fetch_add(local_processed, Ordering::Relaxed);
                            max_round.fetch_max(round, Ordering::Relaxed);
                            return; // crash-stop: clean exit, memory intact
                        }
                    }
                }
                if per_chunk {
                    // §4.3 per-chunk alternative: one flag per chunk.
                    if chunk_converged {
                        rc.clear(chunk_idx);
                    } else {
                        rc.set(chunk_idx);
                    }
                }
            }
            max_round.fetch_max(round + 1, Ordering::Relaxed);
            // Alg. 2 line 31: per-thread convergence check over RC. Each
            // thread decides from its own observation only — exiting on
            // *another* thread's observation would let a thread skip the
            // repair round after an in-flight update re-armed a flag.
            // With an active-chunk filter, the cheap active-only scan
            // rejects non-converged rounds without paying the O(n) walk;
            // the authoritative full scan still gates actual exit.
            let maybe_clear = active.is_none_or(|a| a.rc_maybe_clear(rc));
            if maybe_clear && rc.all_clear() {
                converged.store(true, Ordering::SeqCst);
                break 'rounds;
            }
        }
        processed.fetch_add(local_processed, Ordering::Relaxed);
    });
    let runtime = t0.elapsed();

    let threads_crashed = crashed_count.load(Ordering::Relaxed);
    let status = if converged.load(Ordering::SeqCst) {
        RunStatus::Converged
    } else if threads_crashed >= nt {
        // Everyone crashed before convergence: nobody finished the work.
        RunStatus::Stalled
    } else {
        RunStatus::MaxIterations
    };
    EngineStats {
        iterations: max_round.load(Ordering::Relaxed),
        runtime,
        status,
        vertices_processed: processed.load(Ordering::Relaxed),
        threads_crashed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::linf_diff;
    use crate::rank::Flags;
    use crate::reference::reference_default;
    use lfpr_graph::Snapshot;
    use lfpr_sched::fault::FaultPlan;

    fn ring(n: usize) -> Snapshot {
        // Irregular ring (see bb_common::tests::ring): a regular graph
        // would converge in one iteration from the uniform start.
        let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, v)).collect();
        for v in 0..n as u32 {
            edges.push((v, (v + 1) % n as u32));
            if v % 3 == 0 {
                edges.push((v, (v + 3) % n as u32));
            }
            if v % 5 == 0 && v != 0 {
                edges.push((v, 0));
            }
        }
        Snapshot::from_edges(n, &edges)
    }

    fn opts() -> PagerankOptions {
        PagerankOptions::default()
            .with_threads(4)
            .with_chunk_size(8)
    }

    #[test]
    fn all_mode_matches_reference() {
        let g = ring(64);
        let ranks = AtomicRanks::uniform(64, 1.0 / 64.0);
        let rc = Flags::new(64, 1);
        let res = run_lf_engine(&g, &ranks, &rc, LfMode::<Flags>::All, &opts(), None);
        assert_eq!(res.status, RunStatus::Converged);
        let reference = reference_default(&g);
        assert!(
            linf_diff(&res.ranks, &reference) < 1e-8,
            "err = {}",
            linf_diff(&res.ranks, &reference)
        );
        assert_eq!(res.total_wait, std::time::Duration::ZERO);
    }

    #[test]
    fn per_chunk_convergence_matches_reference() {
        let g = ring(64);
        let o = opts().with_convergence(ConvergenceMode::PerChunk);
        let ranks = AtomicRanks::uniform(64, 1.0 / 64.0);
        let rc = Flags::new(rc_flags_len(64, o.convergence, o.chunk_size), 1);
        let res = run_lf_engine(&g, &ranks, &rc, LfMode::<Flags>::All, &o, None);
        assert_eq!(res.status, RunStatus::Converged);
        let reference = reference_default(&g);
        assert!(linf_diff(&res.ranks, &reference) < 1e-8);
    }

    #[test]
    fn survives_thread_crashes() {
        // Large enough that the run outlives thread spawn latency — the
        // crash-flagged threads must actually claim work before the
        // survivors finish, otherwise the crash never fires.
        let n = 20_000;
        let g = ring(n);
        let o = PagerankOptions::default()
            .with_threads(4)
            .with_chunk_size(256)
            .with_faults(FaultPlan::with_crashes(2, 50, 7));
        let ranks = AtomicRanks::uniform(n, 1.0 / n as f64);
        let rc = Flags::new(n, 1);
        let res = run_lf_engine(&g, &ranks, &rc, LfMode::<Flags>::All, &o, None);
        assert_eq!(
            res.status,
            RunStatus::Converged,
            "LF must finish despite crashes"
        );
        assert_eq!(res.threads_crashed, 2);
        let reference = reference_default(&g);
        assert!(linf_diff(&res.ranks, &reference) < 1e-8);
    }

    #[test]
    fn all_threads_crashing_reports_stalled() {
        let g = ring(128);
        let o = opts().with_faults(FaultPlan::with_crashes(4, 5, 9));
        let ranks = AtomicRanks::uniform(128, 1.0 / 128.0);
        let rc = Flags::new(128, 1);
        let res = run_lf_engine(&g, &ranks, &rc, LfMode::<Flags>::All, &o, None);
        assert_eq!(res.status, RunStatus::Stalled);
        assert_eq!(res.threads_crashed, 4);
    }

    #[test]
    fn helping_mark_phase_completes_leftovers() {
        // Simulate a stalled peer: the cursor is pre-drained so the
        // "cooperative" pass sees nothing, but `checked` has holes — the
        // helping pass must fill them.
        let edges: Vec<(u32, u32)> = vec![(0, 1), (2, 3), (4, 5)];
        let cursor = ChunkCursor::new(edges.len());
        while cursor.next_chunk(1).is_some() {}
        let checked = Flags::new(6, 0);
        checked.set(2); // one source already done by the "stalled" peer
        let marked = Flags::new(6, 0);
        let mut faults = FaultPlan::none().thread_faults(0, 1);
        let ok = helping_mark_phase(
            &edges,
            &cursor,
            &checked,
            2,
            &|u| marked.set(u as usize),
            &mut faults,
        );
        assert!(ok);
        assert!(checked.get(0) && checked.get(2) && checked.get(4));
        assert!(marked.get(0) && marked.get(4));
        assert!(
            !marked.get(2),
            "already-checked source must not be re-marked"
        );
    }

    #[test]
    fn all_schedules_match_reference() {
        use lfpr_sched::{ChunkPolicy, ExecMode, Schedule};
        let g = ring(512);
        let reference = reference_default(&g);
        for policy in [
            ChunkPolicy::Fixed(32),
            ChunkPolicy::Guided { min: 8 },
            ChunkPolicy::DegreeWeighted { chunk: 32 },
        ] {
            for executor in [ExecMode::Spawn, ExecMode::Pool] {
                let o = opts().with_schedule(Schedule { policy, executor });
                let ranks = AtomicRanks::uniform(512, 1.0 / 512.0);
                let rc = Flags::new(512, 1);
                let res = run_lf_engine(&g, &ranks, &rc, LfMode::<Flags>::All, &o, None);
                assert_eq!(res.status, RunStatus::Converged, "{policy} {executor}");
                let err = linf_diff(&res.ranks, &reference);
                assert!(err < 1e-8, "{policy} {executor}: err = {err}");
            }
        }
    }

    #[test]
    fn pooled_guided_survives_thread_crashes() {
        use lfpr_sched::{ChunkPolicy, Schedule};
        // The wait-free claim + helping story must hold unchanged on the
        // persistent pool with irregular chunks.
        let n = 20_000;
        let g = ring(n);
        let o = PagerankOptions::default()
            .with_threads(4)
            .with_schedule(Schedule::pooled(ChunkPolicy::Guided { min: 64 }))
            .with_faults(FaultPlan::with_crashes(2, 50, 7));
        let ranks = AtomicRanks::uniform(n, 1.0 / n as f64);
        let rc = Flags::new(n, 1);
        let res = run_lf_engine(&g, &ranks, &rc, LfMode::<Flags>::All, &o, None);
        assert_eq!(res.status, RunStatus::Converged);
        assert_eq!(res.threads_crashed, 2);
        assert!(linf_diff(&res.ranks, &reference_default(&g)) < 1e-8);
    }

    #[test]
    fn affected_mode_with_empty_marking_converges_immediately() {
        let g = ring(32);
        let init = reference_default(&g);
        let ranks = AtomicRanks::from_slice(&init);
        let rc = Flags::new(32, 0);
        let va = Flags::new(32, 0);
        let res = run_lf_engine(&g, &ranks, &rc, LfMode::Affected { va: &va }, &opts(), None);
        assert_eq!(res.status, RunStatus::Converged);
        assert_eq!(res.vertices_processed, 0);
        assert_eq!(res.ranks, init);
    }
}
