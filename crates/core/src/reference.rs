//! Sequential reference PageRank for error measurement.
//!
//! §5.1.5: *"we measure the error/accuracy of a given approach by
//! measuring the L∞-norm of the PageRanks produced with respect to
//! PageRanks obtained from a reference barrier-based Static PageRank run
//! on the updated graph with a very low tolerance of τ = 10⁻¹⁰⁰, limited
//! to 500 iterations."* A tolerance of 1e-100 is far below f64
//! resolution, so it effectively means "iterate until the f64 fixpoint
//! or 500 iterations" — which is exactly what this function does.

use crate::config::Teleport;
use crate::kernel::{rank_of_from_slice, rank_of_from_slice_with, TeleportBase};
use crate::norm::linf_diff;
use lfpr_graph::NeighborRuns;

/// Run the reference power iteration: synchronous (Jacobi) updates, up to
/// `max_iterations`, stopping early only at the exact f64 fixpoint.
pub fn reference_pagerank<G: NeighborRuns>(g: &G, alpha: f64, max_iterations: usize) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut r = vec![1.0 / n as f64; n];
    let mut r_new = vec![0.0; n];
    for _ in 0..max_iterations {
        for v in 0..n as u32 {
            r_new[v as usize] = rank_of_from_slice(g, &r, v, alpha);
        }
        let delta = linf_diff(&r, &r_new);
        std::mem::swap(&mut r, &mut r_new);
        if delta == 0.0 {
            break; // exact f64 fixpoint — cannot improve further
        }
    }
    r
}

/// [`reference_pagerank`] with an explicit restart distribution — the
/// oracle for personalized-PageRank runs. With [`Teleport::Uniform`]
/// it returns exactly what [`reference_pagerank`] does.
pub fn reference_pagerank_with<G: NeighborRuns>(
    g: &G,
    alpha: f64,
    max_iterations: usize,
    teleport: &Teleport,
) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = TeleportBase::new(teleport, n, alpha);
    let mut r = vec![1.0 / n as f64; n];
    let mut r_new = vec![0.0; n];
    for _ in 0..max_iterations {
        for v in 0..n as u32 {
            r_new[v as usize] = rank_of_from_slice_with(g, &r, v, alpha, &base);
        }
        let delta = linf_diff(&r, &r_new);
        std::mem::swap(&mut r, &mut r_new);
        if delta == 0.0 {
            break; // exact f64 fixpoint — cannot improve further
        }
    }
    r
}

/// Reference run with the paper's configuration (α = 0.85, 500 iters).
pub fn reference_default<G: NeighborRuns>(g: &G) -> Vec<f64> {
    reference_pagerank(g, 0.85, 500)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfpr_graph::Snapshot;

    fn with_loops(n: usize, edges: &[(u32, u32)]) -> Snapshot {
        let mut all: Vec<(u32, u32)> = (0..n as u32).map(|v| (v, v)).collect();
        all.extend_from_slice(edges);
        Snapshot::from_edges(n, &all)
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = with_loops(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let r = reference_default(&g);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = with_loops(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = reference_default(&g);
        for &x in &r {
            assert!((x - 0.25).abs() < 1e-12, "rank {x}");
        }
    }

    #[test]
    fn hub_ranks_higher() {
        // Everyone points at vertex 0.
        let g = with_loops(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let r = reference_default(&g);
        for v in 1..5 {
            assert!(r[0] > r[v], "hub rank {} vs {}", r[0], r[v]);
        }
    }

    #[test]
    fn satisfies_fixpoint_equation() {
        let g = with_loops(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 2)]);
        let r = reference_default(&g);
        for v in 0..6u32 {
            let rhs = rank_of_from_slice(&g, &r, v, 0.85);
            assert!(
                (r[v as usize] - rhs).abs() < 1e-12,
                "vertex {v}: {} vs {rhs}",
                r[v as usize]
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = Snapshot::from_edges(0, &[]);
        assert!(reference_default(&g).is_empty());
    }

    #[test]
    fn with_uniform_teleport_matches_plain_reference_bitwise() {
        let g = with_loops(8, &[(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 0)]);
        let plain = reference_default(&g);
        let with = reference_pagerank_with(&g, 0.85, 500, &Teleport::Uniform);
        assert_eq!(plain.len(), with.len());
        for (a, b) in plain.iter().zip(&with) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn personalized_reference_concentrates_near_sources() {
        // Directed cycle: PPR from vertex 0 must decay with distance.
        let g = with_loops(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let t = Teleport::personalized([(0, 1.0)]).unwrap();
        let r = reference_pagerank_with(&g, 0.85, 500, &t);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        assert!(r[0] > r[1] && r[1] > r[2] && r[2] > r[3], "{r:?}");
    }

    #[test]
    fn deterministic() {
        let g = with_loops(8, &[(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 0)]);
        assert_eq!(reference_default(&g), reference_default(&g));
    }
}
