//! L∞-norm utilities (the paper's convergence and error metric, §5.1.2,
//! §5.1.5).

/// L∞ norm of the difference between two equal-length vectors.
pub fn linf_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// L∞ norm of the difference over an index sub-range (used by the
/// chunked parallel reduction in the barrier-based variants).
pub fn linf_diff_range(a: &[f64], b: &[f64], range: std::ops::Range<usize>) -> f64 {
    a[range.clone()]
        .iter()
        .zip(&b[range])
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Sum of a rank vector (≈ 1.0 at any PageRank fixpoint when dead ends
/// have been eliminated).
pub fn rank_sum(r: &[f64]) -> f64 {
    r.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linf_basic() {
        assert_eq!(linf_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_eq!(linf_diff(&[], &[]), 0.0);
        assert_eq!(linf_diff(&[1.0, -3.0], &[1.0, 3.0]), 6.0);
    }

    #[test]
    fn linf_range_matches_full() {
        let a = [0.1, 0.9, 0.5, 0.7];
        let b = [0.0, 1.0, 0.5, 0.0];
        let full = linf_diff(&a, &b);
        let split = linf_diff_range(&a, &b, 0..2).max(linf_diff_range(&a, &b, 2..4));
        assert_eq!(full, split);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn linf_length_mismatch_panics() {
        linf_diff(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn rank_sum_basic() {
        assert!((rank_sum(&[0.25; 4]) - 1.0).abs() < 1e-15);
    }
}
