//! NDLF — lock-free Naive-dynamic PageRank (Algorithm 6, §3.5.1).
//!
//! The naive-dynamic strategy applied to our improved lock-free
//! PageRank: warm-start the shared in-place rank vector from the
//! previous snapshot's ranks and run the lock-free iteration over all
//! vertices with the `RC` convergence-flag vector. This is the paper's
//! headline comparison baseline — DFLF is reported 4.6× faster than
//! NDLF on average.
//!
//! `RC` is initialized to all-ones (see the note in
//! [`crate::static_lf`] on the pseudocode's initialization typo).

use crate::config::PagerankOptions;
use crate::lf_common::{rc_flags_len, run_lf_engine, LfMode};
use crate::rank::{AtomicRanks, Flags};
use crate::result::PagerankResult;
use lfpr_graph::NeighborRuns;

/// Update PageRank on `curr`, warm-starting from `prev_ranks`, lock-free.
pub fn nd_lf<G: NeighborRuns>(
    curr: &G,
    prev_ranks: &[f64],
    opts: &PagerankOptions,
) -> PagerankResult {
    assert_eq!(
        prev_ranks.len(),
        curr.num_vertices(),
        "previous rank vector must cover every vertex"
    );
    let n = curr.num_vertices();
    let ranks = AtomicRanks::from_slice(prev_ranks);
    let rc = Flags::new(rc_flags_len(n, opts.convergence, opts.chunk_size), 1);
    run_lf_engine(curr, &ranks, &rc, LfMode::<Flags>::All, opts, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::linf_diff;
    use crate::reference::reference_default;
    use crate::result::RunStatus;
    use crate::static_lf::static_lf;
    use lfpr_graph::generators::erdos_renyi;
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::BatchSpec;
    use lfpr_graph::Snapshot;
    use lfpr_sched::fault::FaultPlan;

    fn opts() -> PagerankOptions {
        PagerankOptions::default()
            .with_threads(4)
            .with_chunk_size(32)
    }

    fn updated_pair() -> (Snapshot, Snapshot, Vec<f64>) {
        let mut g = erdos_renyi(250, 1800, 17);
        add_self_loops(&mut g);
        let prev = g.snapshot();
        let r_prev = static_lf(&prev, &opts()).ranks;
        let batch = BatchSpec::mixed(0.02, 5).generate(&g);
        g.apply_batch(&batch).unwrap();
        (prev, g.snapshot(), r_prev)
    }

    #[test]
    fn warm_start_matches_reference_after_update() {
        let (_, curr, r_prev) = updated_pair();
        let res = nd_lf(&curr, &r_prev, &opts());
        assert_eq!(res.status, RunStatus::Converged);
        let err = linf_diff(&res.ranks, &reference_default(&curr));
        assert!(err < 1e-8, "err = {err}");
    }

    #[test]
    fn converges_under_crashes() {
        let (_, curr, r_prev) = updated_pair();
        // Warm-started runs on a small graph can finish before a flagged
        // thread even spawns, so the crash count is bounded, not exact.
        let o = opts().with_faults(FaultPlan::with_crashes(2, 10, 23));
        let res = nd_lf(&curr, &r_prev, &o);
        assert_eq!(res.status, RunStatus::Converged);
        assert!(res.threads_crashed <= 2);
        assert!(linf_diff(&res.ranks, &reference_default(&curr)) < 1e-8);
    }

    #[test]
    fn no_barrier_wait() {
        let (_, curr, r_prev) = updated_pair();
        let res = nd_lf(&curr, &r_prev, &opts());
        assert_eq!(res.total_wait, std::time::Duration::ZERO);
    }
}
