//! Vertex additions and removals — the paper's Future Directions (§6).
//!
//! *"For future research, we plan to extend the algorithm to handle
//! vertex additions and deletions by scaling existing vertex ranks
//! before computation."* This module implements that extension:
//!
//! * **Addition**: the vertex set grows from `old_n` to `new_n`. Each
//!   new vertex starts at the teleport floor `(1−α)/new_n`; existing
//!   ranks are scaled by `(1 − added_mass)` so total mass stays 1. The
//!   scaled vector is a valid warm start for any dynamic variant, with
//!   the new vertices' incident edges as the batch.
//! * **Removal**: the removed vertices' mass is redistributed uniformly
//!   (they are isolated first — their incident-edge deletions form the
//!   batch — and their residual rank is the teleport share they will
//!   retain as isolated self-loop vertices).
//!
//! The key invariant either way: the warm-start vector still sums to 1,
//! so the fixpoint iteration starts from a proper distribution.

use crate::config::{PagerankOptions, Teleport};
use crate::df_lf::df_lf;
use crate::kernel::TeleportBase;
use crate::result::PagerankResult;
use lfpr_graph::{BatchUpdate, NeighborRuns};

/// Scale an existing rank vector for a vertex-set growth from
/// `ranks.len()` to `new_n` (§6). New vertices get the teleport floor
/// `(1−α)/new_n`; old ranks are scaled so the vector sums to 1.
pub fn scale_ranks_for_growth(ranks: &[f64], new_n: usize, alpha: f64) -> Vec<f64> {
    let old_n = ranks.len();
    assert!(new_n >= old_n, "growth only; use scale_ranks_for_removal");
    if new_n == old_n {
        return ranks.to_vec();
    }
    let added = new_n - old_n;
    let floor = (1.0 - alpha) / new_n as f64;
    let added_mass = floor * added as f64;
    let scale = (1.0 - added_mass).max(0.0);
    let mut out = Vec::with_capacity(new_n);
    out.extend(ranks.iter().map(|r| r * scale));
    out.extend(std::iter::repeat_n(floor, added));
    out
}

/// [`scale_ranks_for_growth`] with an explicit restart distribution.
/// Each new vertex starts at **its own** teleport floor `(1−α)·t(v)` —
/// zero for non-sources under a personalized restart — and existing
/// ranks are scaled by `(1 − added_mass)` so the vector still sums
/// to 1. The [`Teleport::Uniform`] arm delegates to the uniform
/// implementation and is bit-identical to it.
pub fn scale_ranks_for_growth_with(
    ranks: &[f64],
    new_n: usize,
    alpha: f64,
    teleport: &Teleport,
) -> Vec<f64> {
    if teleport.is_uniform() {
        return scale_ranks_for_growth(ranks, new_n, alpha);
    }
    let old_n = ranks.len();
    assert!(new_n >= old_n, "growth only; use scale_ranks_for_removal");
    if new_n == old_n {
        return ranks.to_vec();
    }
    let base = TeleportBase::new(teleport, new_n, alpha);
    let added_mass: f64 = (old_n..new_n).map(|v| base.at(v as u32)).sum();
    let scale = (1.0 - added_mass).max(0.0);
    let mut out = Vec::with_capacity(new_n);
    out.extend(ranks.iter().map(|r| r * scale));
    out.extend((old_n..new_n).map(|v| base.at(v as u32)));
    out
}

/// Scale a rank vector after isolating `removed` vertices (they stay in
/// the id space as self-loop-only vertices). Their rank above the
/// teleport floor is released and redistributed proportionally to the
/// surviving vertices.
pub fn scale_ranks_for_removal(ranks: &[f64], removed: &[u32], alpha: f64) -> Vec<f64> {
    let n = ranks.len();
    let floor = (1.0 - alpha) / n as f64;
    let mut out = ranks.to_vec();
    let mut released = 0.0;
    for &v in removed {
        let r = out[v as usize];
        released += (r - floor).max(0.0);
        out[v as usize] = r.min(floor);
    }
    let surviving_mass: f64 = out.iter().sum::<f64>() - removed.len() as f64 * floor;
    if surviving_mass > 0.0 && released > 0.0 {
        let scale = 1.0 + released / surviving_mass;
        let removed_set: std::collections::HashSet<u32> = removed.iter().copied().collect();
        for (v, r) in out.iter_mut().enumerate() {
            if !removed_set.contains(&(v as u32)) {
                *r *= scale;
            }
        }
    }
    out
}

/// [`scale_ranks_for_removal`] with an explicit restart distribution:
/// the floor each removed vertex keeps is its own `(1−α)·t(v)`. The
/// [`Teleport::Uniform`] arm delegates to the uniform implementation
/// and is bit-identical to it.
pub fn scale_ranks_for_removal_with(
    ranks: &[f64],
    removed: &[u32],
    alpha: f64,
    teleport: &Teleport,
) -> Vec<f64> {
    if teleport.is_uniform() {
        return scale_ranks_for_removal(ranks, removed, alpha);
    }
    let n = ranks.len();
    let base = TeleportBase::new(teleport, n, alpha);
    let mut out = ranks.to_vec();
    let mut released = 0.0;
    let mut removed_floor_mass = 0.0;
    for &v in removed {
        let floor = base.at(v);
        let r = out[v as usize];
        released += (r - floor).max(0.0);
        out[v as usize] = r.min(floor);
        removed_floor_mass += out[v as usize];
    }
    let surviving_mass: f64 = out.iter().sum::<f64>() - removed_floor_mass;
    if surviving_mass > 0.0 && released > 0.0 {
        let scale = 1.0 + released / surviving_mass;
        let removed_set: std::collections::HashSet<u32> = removed.iter().copied().collect();
        for (v, r) in out.iter_mut().enumerate() {
            if !removed_set.contains(&(v as u32)) {
                *r *= scale;
            }
        }
    }
    out
}

/// DFLF with vertex growth: `prev` has fewer vertices than `curr`; the
/// previous ranks are scaled per §6 and the batch (which must contain
/// the new vertices' incident edges) drives the frontier. Respects
/// `opts.teleport` for both the scaling floors and the kernel.
pub fn df_lf_with_growth<P: NeighborRuns, C: NeighborRuns>(
    prev_padded: &P,
    curr: &C,
    batch: &BatchUpdate,
    prev_ranks: &[f64],
    opts: &PagerankOptions,
) -> PagerankResult {
    let scaled =
        scale_ranks_for_growth_with(prev_ranks, curr.num_vertices(), opts.alpha, &opts.teleport);
    df_lf(prev_padded, curr, batch, &scaled, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::norm::linf_diff;
    use crate::reference::reference_default;
    use crate::result::RunStatus;
    use lfpr_graph::selfloops::add_self_loops;
    use lfpr_graph::DynGraph;

    #[test]
    fn growth_scaling_preserves_mass() {
        let ranks = vec![0.5, 0.3, 0.2];
        let scaled = scale_ranks_for_growth(&ranks, 5, 0.85);
        assert_eq!(scaled.len(), 5);
        let sum: f64 = scaled.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum = {sum}");
        // New vertices start at the teleport floor.
        assert!((scaled[3] - 0.15 / 5.0).abs() < 1e-12);
        // Relative order of old ranks preserved.
        assert!(scaled[0] > scaled[1] && scaled[1] > scaled[2]);
    }

    #[test]
    fn growth_noop_when_same_size() {
        let ranks = vec![0.6, 0.4];
        assert_eq!(scale_ranks_for_growth(&ranks, 2, 0.85), ranks);
    }

    #[test]
    #[should_panic(expected = "growth only")]
    fn growth_rejects_shrink() {
        scale_ranks_for_growth(&[0.5, 0.5], 1, 0.85);
    }

    #[test]
    fn removal_scaling_preserves_mass() {
        let ranks = vec![0.4, 0.3, 0.2, 0.1];
        let scaled = scale_ranks_for_removal(&ranks, &[0], 0.85);
        let sum: f64 = scaled.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum = {sum}");
        // Removed vertex dropped to the floor; others gained.
        assert!(scaled[0] <= 0.15 / 4.0 + 1e-15);
        assert!(scaled[1] > 0.3);
    }

    #[test]
    fn teleport_aware_scaling_uniform_is_bit_identical() {
        let ranks = vec![0.5, 0.3, 0.2];
        let plain = scale_ranks_for_growth(&ranks, 5, 0.85);
        let with = scale_ranks_for_growth_with(&ranks, 5, 0.85, &Teleport::Uniform);
        for (a, b) in plain.iter().zip(&with) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let plain = scale_ranks_for_removal(&[0.4, 0.3, 0.2, 0.1], &[0], 0.85);
        let with =
            scale_ranks_for_removal_with(&[0.4, 0.3, 0.2, 0.1], &[0], 0.85, &Teleport::Uniform);
        for (a, b) in plain.iter().zip(&with) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn personalized_scaling_preserves_mass_and_zero_floors() {
        let t = Teleport::personalized([(0, 1.0)]).unwrap();
        let ranks = vec![0.5, 0.3, 0.2];
        // Growth: newcomers are non-sources, so they start at 0 mass.
        let grown = scale_ranks_for_growth_with(&ranks, 5, 0.85, &t);
        assert_eq!(grown.len(), 5);
        assert_eq!(grown[3], 0.0);
        assert_eq!(grown[4], 0.0);
        let sum: f64 = grown.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum = {sum}");
        // Removal of a non-source: its whole rank is released.
        let removed = scale_ranks_for_removal_with(&[0.4, 0.3, 0.2, 0.1], &[2], 0.85, &t);
        assert_eq!(removed[2], 0.0);
        let sum: f64 = removed.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum = {sum}");
    }

    #[test]
    fn end_to_end_vertex_growth() {
        // 30-vertex graph grows to 34; new vertices wire into the core.
        let mut g = lfpr_graph::generators::erdos_renyi(30, 150, 21);
        add_self_loops(&mut g);
        let prev_ranks = reference_default(&g.snapshot());

        g.grow(34);
        let mut batch = BatchUpdate::new();
        for v in 30u32..34 {
            // Self-loop (dead-end elimination) plus links to/from core.
            for (a, b) in [(v, v), (v, v % 7), (v % 11, v)] {
                if g.insert_edge_if_absent(a, b).unwrap() {
                    batch.insertions.push((a, b));
                }
            }
        }
        // prev snapshot padded to the new id space (no edges for new ids).
        let mut prev_padded = DynGraph::new(34);
        for (u, v) in lfpr_graph::GraphBuilder::new(30)
            .edges(
                lfpr_graph::generators::erdos_renyi(30, 150, 21)
                    .edges()
                    .collect::<Vec<_>>(),
            )
            .build_dyn()
            .unwrap()
            .edges()
        {
            prev_padded.insert_edge(u, v).unwrap();
        }
        for v in 0..30u32 {
            let _ = prev_padded.insert_edge_if_absent(v, v);
        }
        let prev_snap = prev_padded.snapshot();
        let curr = g.snapshot();

        let opts = PagerankOptions::default()
            .with_threads(2)
            .with_chunk_size(8);
        let res = df_lf_with_growth(&prev_snap, &curr, &batch, &prev_ranks, &opts);
        assert_eq!(res.status, RunStatus::Converged);
        let reference = reference_default(&curr);
        let err = linf_diff(&res.ranks, &reference);
        assert!(err < 1e-7, "err = {err:.2e}");
    }

    #[test]
    fn end_to_end_vertex_removal() {
        let mut g = lfpr_graph::generators::erdos_renyi(40, 250, 23);
        add_self_loops(&mut g);
        let prev = g.snapshot();
        let prev_ranks = reference_default(&prev);

        // Isolate vertex 5 (keep its self-loop so it is not a dead end).
        let removed_edges: Vec<_> = g
            .isolate_vertex(5)
            .into_iter()
            .filter(|&(u, v)| u != v)
            .collect();
        g.insert_edge(5, 5).unwrap();
        let mut batch = BatchUpdate::delete_only(removed_edges);
        batch.deletions.retain(|&(u, v)| !(u == 5 && v == 5));
        let curr = g.snapshot();

        let scaled = scale_ranks_for_removal(&prev_ranks, &[5], 0.85);
        let opts = PagerankOptions::default()
            .with_threads(2)
            .with_chunk_size(8);
        let res = crate::df_lf::df_lf(&prev, &curr, &batch, &scaled, &opts);
        assert_eq!(res.status, RunStatus::Converged);
        let reference = reference_default(&curr);
        assert!(linf_diff(&res.ranks, &reference) < 1e-7);
    }
}
